//! Concurrent load benchmark of the `svtd` service plane.
//!
//! Boots an in-process multi-tenant server (designs `builtin` + `c432`,
//! both pre-warmed), then drives it the way production traffic would:
//! eight keep-alive reader clients hammering
//! `GET /designs/c432/timing` while one writer client streams batched
//! ECOs at the `builtin` design — reads and writes on *different*
//! designs, so the per-design `RwLock` split is what is actually being
//! measured. Every response is checked (status 200, parseable body);
//! per-request wall latencies aggregate into p50/p99 through the
//! shared [`svt_obs::Histogram`] quantile estimator — the same
//! log2-bucket interpolation the dashboard's sampler-derived series
//! use, so bench numbers and live telemetry agree on methodology.
//!
//! Appends `serve_rps` / `serve_p50_ms` / `serve_p99_ms` to
//! `BENCH_history.jsonl` at the repo root (gated by
//! `scripts/bench_compare.sh`: p99 like every warm-path latency, rps
//! with the inverse rule — a throughput *drop* fails) and writes the
//! full summary to `target/artifacts/bench_serve.json` for CI upload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use svt_bench::repo_root;
use svt_eco::EcoEdit;
use svt_serve::http::HttpClient;
use svt_serve::server::{DesignSpec, Server, ServerOptions, ServiceState};
use svt_serve::smoke::pick_smoke_edit;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 250;
const READ_PATH: &str = "/designs/c432/timing";

fn main() {
    let designs = [DesignSpec::Builtin, DesignSpec::Iscas("c432".into())];
    let options = ServerOptions {
        // Long-lived bench connections must not trip the per-connection
        // request cap mid-measurement.
        keep_alive_max_requests: 100_000,
        ..ServerOptions::default()
    };
    let workers = options.workers;
    let queue_capacity = options.queue_capacity;
    let state = ServiceState::new(&designs, options).expect("service state");
    eprintln!("bench_serve: warming builtin + c432 ...");
    let warm_start = Instant::now();
    for design in &designs {
        state.warm(design.name()).expect("warm design");
    }
    eprintln!(
        "bench_serve: warm in {:.2}s",
        warm_start.elapsed().as_secs_f64()
    );
    let server = Server::spawn("127.0.0.1:0", state).expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // The writer alternates a two-edit batch that always returns the
    // design to its initial state, so it stays valid indefinitely.
    let smoke_edit = pick_smoke_edit(
        svt_serve::server::warm_session(&DesignSpec::Builtin)
            .expect("mirror")
            .netlist(),
    )
    .expect("builtin has an INVX1");
    let EcoEdit::ResizeCell { instance, .. } = &smoke_edit else {
        unreachable!("pick_smoke_edit only resizes");
    };
    let batch_body = format!(
        "[{{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"INVX2\"}},\
          {{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"INVX1\"}}]"
    );

    let stop_writer = AtomicBool::new(false);
    let bench_start = Instant::now();
    let (latencies, eco_batches) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut client = HttpClient::connect(&addr).expect("writer connect");
            let mut batches = 0u64;
            while !stop_writer.load(Ordering::Relaxed) {
                let (status, body) = client
                    .send("POST", "/designs/builtin/eco", &batch_body)
                    .expect("writer request");
                assert_eq!(status, 200, "eco batch rejected: {body}");
                batches += 1;
            }
            batches
        });
        let readers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = HttpClient::connect(&addr).expect("reader connect");
                    let mut latencies_ns = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let t = Instant::now();
                        let (status, body) =
                            client.send("GET", READ_PATH, "").expect("reader request");
                        latencies_ns.push(t.elapsed().as_nanos() as u64);
                        assert_eq!(status, 200, "timing read rejected: {body}");
                        assert!(
                            body.contains("\"testcase\":\"c432\""),
                            "wrong design: {body}"
                        );
                    }
                    latencies_ns
                })
            })
            .collect();
        let mut all = Vec::with_capacity(CLIENTS * REQUESTS_PER_CLIENT);
        for reader in readers {
            all.extend(reader.join().expect("reader thread"));
        }
        stop_writer.store(true, Ordering::Relaxed);
        (all, writer.join().expect("writer thread"))
    });
    let elapsed = bench_start.elapsed();
    server.shutdown();

    let hist = svt_obs::Histogram::default();
    for ns in &latencies {
        hist.record(*ns);
    }
    let total_reads = latencies.len();
    let serve_rps = total_reads as f64 / elapsed.as_secs_f64();
    let serve_p50_ms = hist.quantile(0.5) / 1e6;
    let serve_p99_ms = hist.quantile(0.99) / 1e6;
    let mean_ms = latencies.iter().sum::<u64>() as f64 / total_reads as f64 / 1e6;

    println!("--- bench_serve: {CLIENTS} readers + 1 ECO writer ---");
    println!("reads                 {total_reads:>9} ({READ_PATH})");
    println!("eco batches           {eco_batches:>9} (atomic two-edit batches on builtin)");
    println!("wall time             {:>9.2} s", elapsed.as_secs_f64());
    println!("read throughput       {serve_rps:>9.0} req/s");
    println!("read latency p50      {serve_p50_ms:>9.3} ms");
    println!("read latency p99      {serve_p99_ms:>9.3} ms");
    println!("read latency mean     {mean_ms:>9.3} ms");

    assert!(
        eco_batches > 0,
        "writer must land at least one batch while readers run"
    );

    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"unix_ts\": {unix_ts}, \"threads_available\": {threads_available}, \
         \"serve_clients\": {CLIENTS}, \"serve_rps\": {serve_rps:.0}, \
         \"serve_p50_ms\": {serve_p50_ms:.3}, \"serve_p99_ms\": {serve_p99_ms:.3}}}\n"
    );
    let history = repo_root().join("BENCH_history.jsonl");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .expect("open BENCH_history.jsonl");
    std::io::Write::write_all(&mut log, history_line.as_bytes())
        .expect("append BENCH_history.jsonl");
    println!("appended serve numbers to BENCH_history.jsonl");

    // Full summary for the CI artifact.
    let artifact_dir = repo_root().join("target").join("artifacts");
    std::fs::create_dir_all(&artifact_dir).expect("create target/artifacts");
    let artifact = format!(
        "{{\n  \"unix_ts\": {unix_ts},\n  \"threads_available\": {threads_available},\n  \
         \"workers\": {workers},\n  \"queue_capacity\": {queue_capacity},\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"read_path\": \"{READ_PATH}\",\n  \"reads\": {total_reads},\n  \
         \"eco_batches\": {eco_batches},\n  \"wall_seconds\": {:.3},\n  \
         \"serve_rps\": {serve_rps:.0},\n  \"serve_p50_ms\": {serve_p50_ms:.3},\n  \
         \"serve_p99_ms\": {serve_p99_ms:.3},\n  \"mean_ms\": {mean_ms:.3}\n}}\n",
        elapsed.as_secs_f64()
    );
    let artifact_path = artifact_dir.join("bench_serve.json");
    std::fs::write(&artifact_path, artifact).expect("write bench_serve.json");
    println!("wrote {}", artifact_path.display());
}
