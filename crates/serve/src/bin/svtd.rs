//! `svtd` — the svt pipeline daemon.
//!
//! Server mode (default): registers every `--design`, warms the first
//! one eagerly (the rest warm lazily, or via `POST /designs/{name}/warm`),
//! arms the pool watchdog, switches allocation attribution on, and
//! serves the multi-tenant service plane until `SIGTERM` / `SIGINT` /
//! `POST /shutdown`, each of which drains gracefully — in-flight
//! requests finish, new work is refused with `503`:
//!
//! ```text
//! svtd [--addr HOST:PORT] [--design builtin|c432|...]...
//!      [--workers N] [--queue-depth N]
//!      [--keep-alive-requests N] [--idle-timeout-ms N] [--watchdog-ms N]
//!      [--access-log PATH] [--access-log-rotate N] [--slow-ms N]
//!      [--post-mortem PATH] [--snapshot PATH]
//!      [--sample-ms N] [--slo route=PATH,p99_ms=N,err_pct=N,window=N]...
//! ```
//!
//! `--snapshot PATH` enables millisecond warm starts: the daemon tries
//! to restore the expanded-library stack from `PATH` (validated by
//! magic, version, checksum, and build fingerprint — any failure is a
//! logged cold rebuild, counted on `snap_restore_fallback_total`), and
//! after a cold warm-up writes `PATH` so the *next* boot restores. The
//! wire format is specified in `docs/SNAPSHOT_FORMAT.md`;
//! `POST /snapshot/save` re-captures on demand.
//!
//! `--access-log` writes one structured JSONL line per request
//! (rotating at 10 MiB, keeping `--access-log-rotate` generations);
//! `--slow-ms` arms the flight recorder — requests at or above the
//! threshold are captured as capsules served at `GET /debug/requests`
//! (`--slow-ms 0` captures everything); `--post-mortem` configures
//! where a watchdog stall, a handler panic, an SLO breach, or the
//! final drain dumps every capsule plus a metrics snapshot.
//!
//! The daemon always runs the long-horizon observability plane: a
//! sampler thread scrapes the metric registry every `--sample-ms`
//! (default 1000) into the embedded tiered time-series store behind
//! `GET /query` and `GET /dashboard`, and the continuous profiler
//! aggregates every span into the flame graph at
//! `GET /debug/profile?format=collapsed|json|svg`. `--slo` declares
//! burn-rate objectives evaluated from those rings each tick; a breach
//! degrades `/healthz` to 503 and triggers the post-mortem dump.
//!
//! Smoke mode: a pure-Rust client that runs the CI smoke sequence
//! against an already-running fresh daemon and exits non-zero on the
//! first failed check. `--smoke-deep` adds the backpressure (requires a
//! daemon booted with `--workers 1 --queue-depth 1`) and
//! graceful-shutdown checks; the daemon exits afterwards:
//!
//! `--smoke-recorder` adds the flight-recorder walk (requires a daemon
//! booted with `--slow-ms 0` so every smoke request leaves a capsule):
//!
//! `--smoke-obs` adds the long-horizon observability walk (dashboard,
//! profiler formats, `/query` tier population); `--smoke-slo` runs the
//! deliberate SLO-breach scenario *instead of* the regular walk
//! (requires a daemon booted with an unmeetable `--slo`):
//!
//! ```text
//! svtd --smoke HOST:PORT [--design NAME]... [--smoke-deep] [--smoke-recorder]
//!      [--smoke-obs] [--smoke-slo]
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use svt_obs::alloc::CountingAlloc;
use svt_serve::server::{DesignSpec, Server, ServerOptions, ServiceState};
use svt_serve::smoke::{run_smoke_full, run_smoke_slo, SmokeOptions};

// Attribute every allocation in the daemon to the innermost active
// span; the hook is inert until `alloc::set_active(true)` below.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

const DEFAULT_ADDR: &str = "127.0.0.1:9290";
const DEFAULT_WATCHDOG_MS: u64 = 30_000;

const DEFAULT_SAMPLE_MS: u64 = 1_000;

const USAGE: &str =
    "usage: svtd [--addr HOST:PORT] [--design builtin|c432|c880|c1355|c1908|c3540]... \
[--workers N] [--queue-depth N] [--keep-alive-requests N] [--idle-timeout-ms N] [--watchdog-ms N] \
[--access-log PATH] [--access-log-rotate N] [--slow-ms N] [--post-mortem PATH] [--snapshot PATH] \
[--sample-ms N] [--slo route=PATH,p99_ms=N,err_pct=N,window=N]... \
[--smoke HOST:PORT [--smoke-deep] [--smoke-recorder] [--smoke-obs] [--smoke-slo]]";

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Routes `SIGTERM`/`SIGINT` into a flag the main loop polls, so a
    /// `kill` drains the plane instead of dropping in-flight requests.
    /// `std` links libc, so the raw `signal(2)` binding needs no new
    /// dependency.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub fn received() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

struct Args {
    addr: String,
    designs: Vec<DesignSpec>,
    options: ServerOptions,
    watchdog_ms: u64,
    sample_ms: u64,
    post_mortem: Option<String>,
    snapshot: Option<String>,
    smoke: Option<String>,
    smoke_deep: bool,
    smoke_recorder: bool,
    smoke_obs: bool,
    smoke_slo: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: DEFAULT_ADDR.to_string(),
        designs: Vec::new(),
        options: ServerOptions::default(),
        watchdog_ms: DEFAULT_WATCHDOG_MS,
        sample_ms: DEFAULT_SAMPLE_MS,
        post_mortem: None,
        snapshot: None,
        smoke: None,
        smoke_deep: false,
        smoke_recorder: false,
        smoke_obs: false,
        smoke_slo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        let number = |name: &str, raw: &str| {
            raw.parse::<u64>()
                .map_err(|_| format!("{name}: `{raw}` is not a number"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--design" => args.designs.push(DesignSpec::parse(&value("--design")?)?),
            "--workers" => {
                args.options.workers = number("--workers", &value("--workers")?)?.max(1) as usize;
            }
            "--queue-depth" => {
                args.options.queue_capacity =
                    number("--queue-depth", &value("--queue-depth")?)?.max(1) as usize;
            }
            "--keep-alive-requests" => {
                args.options.keep_alive_max_requests =
                    number("--keep-alive-requests", &value("--keep-alive-requests")?)?.max(1)
                        as usize;
            }
            "--idle-timeout-ms" => {
                args.options.idle_timeout = Duration::from_millis(
                    number("--idle-timeout-ms", &value("--idle-timeout-ms")?)?.max(1),
                );
            }
            "--watchdog-ms" => {
                args.watchdog_ms = number("--watchdog-ms", &value("--watchdog-ms")?)?;
            }
            "--access-log" => {
                args.options.access_log_path = Some(value("--access-log")?);
            }
            "--access-log-rotate" => {
                args.options.access_log_rotate =
                    number("--access-log-rotate", &value("--access-log-rotate")?)?.max(1) as usize;
            }
            "--slow-ms" => {
                args.options.slow_ms = Some(number("--slow-ms", &value("--slow-ms")?)?);
            }
            "--sample-ms" => {
                args.sample_ms = number("--sample-ms", &value("--sample-ms")?)?.max(10);
            }
            "--slo" => {
                args.options
                    .slo_specs
                    .push(svt_serve::slo::SloSpec::parse(&value("--slo")?)?);
            }
            "--post-mortem" => args.post_mortem = Some(value("--post-mortem")?),
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--smoke" => args.smoke = Some(value("--smoke")?),
            "--smoke-deep" => args.smoke_deep = true,
            "--smoke-recorder" => args.smoke_recorder = true,
            "--smoke-obs" => args.smoke_obs = true,
            "--smoke-slo" => args.smoke_slo = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.designs.is_empty() {
        args.designs.push(DesignSpec::Builtin);
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(target) = &args.smoke {
        // The SLO breach scenario is its own sequence: it drives the
        // daemon into degradation, which would fail every healthz check
        // in the regular walk.
        if args.smoke_slo {
            return match run_smoke_slo(target) {
                Ok(summary) => {
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("smoke FAILED: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        let opts = SmokeOptions {
            designs: args.designs.clone(),
            backpressure: args.smoke_deep,
            shutdown: args.smoke_deep,
            recorder: args.smoke_recorder,
            observability: args.smoke_obs,
        };
        return match run_smoke_full(target, &opts) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // A daemon wants the live timeline on by default so /timeline.json
    // has content; an explicit SVT_TRACE still wins.
    if std::env::var_os("SVT_TRACE").is_none() {
        svt_obs::set_mode(svt_obs::TraceMode::Chrome);
    }
    svt_obs::alloc::set_active(true);
    // The daemon keeps the continuous profiler on so /debug/profile
    // always has stacks; an explicit SVT_PROFILE=0 still wins.
    if std::env::var_os(svt_obs::profile::PROFILE_ENV).is_none() {
        svt_obs::profile::set_enabled(true);
    }
    if args.watchdog_ms > 0 {
        svt_exec::watchdog::arm(Duration::from_millis(args.watchdog_ms));
    }
    // Arm the black box before serving: stalls, handler panics, and the
    // final drain all dump here once a path is configured.
    if let Some(path) = &args.post_mortem {
        svt_obs::recorder::set_post_mortem_path(path);
    }
    sig::install();
    // The snapshot path must be configured before anything warms the
    // process-wide stack.
    svt_serve::server::configure_snapshot(args.snapshot.clone());

    let state = match ServiceState::new(&args.designs, args.options.clone()) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("svtd: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Pay the default design's sign-off before announcing readiness;
    // the other designs stay cold until asked for.
    let warm_start = Instant::now();
    eprintln!("svtd: warming design `{}` ...", args.designs[0].name());
    if let Err(e) = state.warm(args.designs[0].name()) {
        eprintln!("svtd: warm-up failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "svtd: warm in {:.2}s ({} designs registered, {} workers, queue {})",
        warm_start.elapsed().as_secs_f64(),
        args.designs.len(),
        args.options.workers,
        args.options.queue_capacity
    );
    let snapshot = svt_serve::server::snapshot_status();
    match snapshot.mode {
        "restored" => eprintln!(
            "svtd: stack restored from snapshot in {:.1}ms ({} bytes)",
            snapshot.restore_ms, snapshot.size_bytes
        ),
        // A configured path with a cold boot (first run, stale
        // fingerprint, corruption): save now so the next boot is warm.
        "cold" => match svt_serve::server::save_snapshot() {
            Ok((path, size)) => eprintln!("svtd: snapshot saved to {path} ({size} bytes)"),
            Err(e) => eprintln!("svtd: snapshot save failed: {e}"),
        },
        _ => {}
    }

    let server = match Server::spawn(&args.addr, state) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("svtd: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Long-horizon observability: one sampler thread scrapes the
    // registry into the tiered time-series store every tick, refreshing
    // the pull-style gauges first and evaluating the SLO burn rates
    // from the rings it just wrote.
    let sampler_state = server.state().clone();
    let sampler = svt_obs::tsdb::Sampler::spawn(
        svt_obs::tsdb::global(),
        Duration::from_millis(args.sample_ms),
        vec![
            Box::new(svt_obs::alloc::publish_gauges),
            Box::new(|| {
                let _ = svt_obs::rss::publish_gauges();
            }),
            Box::new(svt_exec::watchdog::publish_status_gauges),
            Box::new(move || {
                sampler_state
                    .slo()
                    .tick(svt_obs::tsdb::global(), svt_obs::tsdb::unix_ms());
            }),
        ],
    );
    if !server.state().slo().is_empty() {
        for spec in server.state().slo().specs() {
            eprintln!(
                "svtd: SLO armed: route {} p99<={}ms budget {}% window {}s",
                spec.route, spec.p99_ms, spec.err_pct, spec.window_s
            );
        }
    }

    // The one line scripts wait for before curling the endpoints.
    println!("svtd: listening on http://{}", server.addr());

    // Serve until a drain is requested over HTTP or by signal, then
    // shut down gracefully: every accepted request is answered first.
    while !server.state().draining() && !sig::received() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("svtd: draining ...");
    sampler.stop();
    server.shutdown();
    if let Some(path) = svt_obs::recorder::post_mortem("drain") {
        eprintln!("svtd: post-mortem written to {path}");
    }
    eprintln!("svtd: drained, exiting");
    ExitCode::SUCCESS
}
