//! `svtd` — the svt pipeline daemon.
//!
//! Server mode (default): warms the pipeline once, arms the pool
//! watchdog, switches allocation attribution on, and serves the five
//! service-plane endpoints until killed:
//!
//! ```text
//! svtd [--addr HOST:PORT] [--design builtin|c432|...] [--watchdog-ms N]
//! ```
//!
//! Smoke mode: a pure-Rust client that runs the CI smoke sequence
//! against an already-running fresh daemon and exits non-zero on the
//! first failed check:
//!
//! ```text
//! svtd --smoke HOST:PORT [--design NAME]
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use svt_obs::alloc::CountingAlloc;
use svt_serve::server::{DesignSpec, Server, ServiceState};
use svt_serve::smoke::run_smoke;

// Attribute every allocation in the daemon to the innermost active
// span; the hook is inert until `alloc::set_active(true)` below.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

const DEFAULT_ADDR: &str = "127.0.0.1:9290";
const DEFAULT_WATCHDOG_MS: u64 = 30_000;

const USAGE: &str = "usage: svtd [--addr HOST:PORT] [--design builtin|c432|c880|c1355|c1908|c3540] [--watchdog-ms N] [--smoke HOST:PORT]";

struct Args {
    addr: String,
    design: DesignSpec,
    watchdog_ms: u64,
    smoke: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: DEFAULT_ADDR.to_string(),
        design: DesignSpec::Builtin,
        watchdog_ms: DEFAULT_WATCHDOG_MS,
        smoke: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--design" => args.design = DesignSpec::parse(&value("--design")?)?,
            "--watchdog-ms" => {
                let raw = value("--watchdog-ms")?;
                args.watchdog_ms = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--watchdog-ms: `{raw}` is not a number"))?;
            }
            "--smoke" => args.smoke = Some(value("--smoke")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(target) = &args.smoke {
        return match run_smoke(target, &args.design) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // A daemon wants the live timeline on by default so /timeline.json
    // has content; an explicit SVT_TRACE still wins.
    if std::env::var_os("SVT_TRACE").is_none() {
        svt_obs::set_mode(svt_obs::TraceMode::Chrome);
    }
    svt_obs::alloc::set_active(true);
    if args.watchdog_ms > 0 {
        svt_exec::watchdog::arm(Duration::from_millis(args.watchdog_ms));
    }

    let warm_start = Instant::now();
    eprintln!("svtd: warming design `{}` ...", args.design.name());
    let state = match ServiceState::new(&args.design) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("svtd: warm-up failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("svtd: warm in {:.2}s", warm_start.elapsed().as_secs_f64());

    let server = match Server::spawn(&args.addr, state) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("svtd: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The one line scripts wait for before curling the endpoints.
    println!("svtd: listening on http://{}", server.addr());
    server.join();
    ExitCode::SUCCESS
}
