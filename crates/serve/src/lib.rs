//! Live service plane for the svt pipeline.
//!
//! Everything upstream of this crate runs batch: expand the library,
//! sign off, print a table, exit. `svt-serve` keeps that state *warm*
//! inside a long-lived daemon (`svtd`) and exposes it over a
//! dependency-free HTTP/1.1 server. The daemon is **multi-tenant**: it
//! holds many designs in a [`registry::SessionRegistry`], each behind
//! its own `RwLock`, so ECO traffic on one design never blocks timing
//! reads on another. Connections are served by a fixed pool of
//! persistent handler threads ([`svt_exec::service::ServicePool`])
//! behind a bounded accept queue — saturation answers `429` +
//! `Retry-After` instead of buffering unboundedly — and keep-alive is
//! the default, with pipelining, a per-connection request cap, and an
//! idle timeout.
//!
//! | Endpoint          | Serves |
//! |-------------------|--------|
//! | `GET /healthz`    | readiness, per-design warmth, queue depth, and the pool watchdog verdict (`503` when stalled) |
//! | `GET /metrics`    | Prometheus exposition of the global registry (labeled families, build info), plus per-interval `_delta`/`_rate` series keyed per scraper identity (`?scraper=NAME` or peer IP, bounded LRU) |
//! | `GET /snapshot.json` | the full aggregate [`svt_obs::Snapshot`] as JSON |
//! | `GET /timeline.json` | the live per-thread event rings as a Chrome `trace_event` document |
//! | `GET /designs`    | every registered design with warmth and edit count |
//! | `GET /designs/{name}` | one design's status |
//! | `POST /designs/{name}/warm` | eager warm-up (lazy otherwise) |
//! | `GET /designs/{name}/timing` | the design's multi-corner sign-off summary (read lock — never waits on other designs) |
//! | `POST /designs/{name}/eco` | one typed [`svt_eco::EcoEdit`] *or* a JSON array applied atomically as a batch |
//! | `POST /eco`       | same, against the default (first registered) design |
//! | `GET /debug/requests` | the flight recorder's retained slow-request capsules (index JSON) |
//! | `GET /debug/requests/{trace_id}` | one capsule: identity, latency, queue wait, alloc delta, timeline slice |
//! | `GET /debug/requests/{trace_id}/trace.json` | the capsule's window as a per-request Chrome trace, every event tagged with the trace id |
//! | `POST /snapshot/save` | capture the warm stack into the `--snapshot` file (`409` when no path is configured) |
//! | `POST /shutdown`  | graceful drain: in-flight requests finish, new work gets `503` |
//!
//! Every request runs under a fresh [`svt_obs::RequestContext`] and is
//! measured into labeled metric families; `--access-log` adds one
//! structured JSONL line per request ([`access_log`]), and `--slow-ms`
//! arms the flight recorder behind the `/debug/requests` surface.
//!
//! The HTTP layer is hand-rolled ([`http`]) because the build
//! environment is offline and the workspace vendors its few external
//! stand-ins; the incremental [`http::RequestParser`] is
//! property-fuzzed in `tests/http_props.rs`. The [`smoke`] module is
//! the CI gate: a pure-Rust client that validates every endpoint with
//! the workspace's own parsers, replays ECO edits through a local
//! [`svt_eco::EcoSession`] to prove the served slack deltas bit-exact,
//! and exercises the 429 backpressure and graceful-shutdown paths.
#![warn(missing_docs)]

pub mod access_log;
pub mod http;
pub mod registry;
pub mod server;
pub mod slo;
pub mod smoke;

pub use access_log::{AccessEntry, AccessLog};
pub use http::{
    http_request, HttpClient, HttpResponse, ParseError, Request, RequestParser, Response,
};
pub use registry::{DesignEntry, RegistryError, SessionRegistry, SlotStatus};
pub use server::{
    configure_snapshot, parse_eco_request, parse_edit, render_batch_report, render_delta_report,
    render_timing, route, route_with_peer, save_snapshot, snapshot_info_prometheus,
    snapshot_status, warm_session, DesignSpec, EcoRequest, Server, ServerOptions, ServiceState,
    SnapshotStatus, BUILTIN_NETLIST, SCRAPE_LRU_CAPACITY,
};
pub use slo::{SloEngine, SloSpec, SloStatus};
pub use smoke::{pick_smoke_edit, run_smoke};
