//! Live service plane for the svt pipeline.
//!
//! Everything upstream of this crate runs batch: expand the library,
//! sign off, print a table, exit. `svt-serve` keeps that state *warm*
//! inside a long-lived daemon (`svtd`) and exposes it over a
//! dependency-free HTTP/1.1 server:
//!
//! | Endpoint          | Serves |
//! |-------------------|--------|
//! | `GET /healthz`    | readiness, design identity, and the pool watchdog verdict (`503` when stalled) |
//! | `GET /metrics`    | Prometheus exposition of the global registry, plus per-interval `_delta`/`_rate` series between scrapes |
//! | `GET /snapshot.json` | the full aggregate [`svt_obs::Snapshot`] as JSON |
//! | `GET /timeline.json` | the live per-thread event rings as a Chrome `trace_event` document |
//! | `POST /eco`       | a typed [`svt_eco::EcoEdit`]; responds with the incremental [`svt_eco::DeltaReport`] |
//!
//! The HTTP layer is hand-rolled ([`http`]) because the build
//! environment is offline and the workspace vendors its few external
//! stand-ins; one request per connection with `Content-Length` framing
//! is all the plane needs. The [`smoke`] module is the CI gate: a
//! pure-Rust client that validates every endpoint with the workspace's
//! own parsers and replays the ECO edit through a local
//! [`svt_eco::EcoSession`] to prove the served slack deltas bit-exact.
#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod smoke;

pub use http::{http_request, Request, Response};
pub use server::{
    parse_edit, render_delta_report, route, warm_session, DesignSpec, Server, ServiceState,
    BUILTIN_NETLIST,
};
pub use smoke::{pick_smoke_edit, run_smoke};
