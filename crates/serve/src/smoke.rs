//! The end-to-end smoke sequence used by CI and `svtd --smoke`.
//!
//! A pure-Rust client (no `curl`) walks every endpoint of a freshly
//! started daemon and validates each response with the workspace's own
//! parsers: the Prometheus exposition must survive
//! [`svt_obs::parse_prometheus`], the snapshot and ECO responses the
//! shared [`svt_obs::json`] parser, and the timeline
//! [`svt_obs::chrome::validate_chrome_trace`]. The ECO checks are
//! *differential*: the client rebuilds the daemon's design locally,
//! applies the identical edits through [`EcoSession::apply`] directly,
//! and requires the served bodies — single edit *and* atomic batch — to
//! match bit-for-bit.
//!
//! [`run_smoke_full`] layers the multi-tenant and fault checks on top:
//! second-design warm-up and isolation, rejected-input status codes,
//! the flight-recorder walk (`/debug/requests` index → capsule →
//! Chrome-trace export with every span tagged by the request's trace
//! id; the daemon must run with `--slow-ms 0` so every smoke request
//! leaves a capsule), slow-loris saturation answered with `429` +
//! `Retry-After` (the daemon must run with `--workers 1
//! --queue-depth 1` for that check to be deterministic), and the
//! graceful drain on `POST /shutdown`.
//!
//! [`EcoSession::apply`]: svt_eco::EcoSession::apply

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use svt_eco::{EcoEdit, EcoSession};
use svt_netlist::MappedNetlist;
use svt_obs::json::JsonValue;

use crate::http::{http_request, HttpClient};
use crate::server::{render_batch_report, render_delta_report, warm_session, DesignSpec};

/// The deterministic edit the smoke check posts: resize the first
/// `INVX1` instance (netlist order) to `INVX2`. Both the client and any
/// observer can reproduce it from the design alone.
///
/// # Errors
///
/// Returns a message when the design has no `INVX1` instance.
pub fn pick_smoke_edit(netlist: &MappedNetlist) -> Result<EcoEdit, String> {
    let instance = netlist
        .instances()
        .iter()
        .find(|i| i.cell == "INVX1")
        .map(|i| i.name.clone())
        .ok_or("design has no INVX1 instance to resize")?;
    Ok(EcoEdit::ResizeCell {
        instance,
        new_cell: "INVX2".into(),
    })
}

/// What [`run_smoke_full`] exercises beyond the core sequence.
pub struct SmokeOptions {
    /// Every design the daemon was booted with, default first. The core
    /// differential runs on the first; the rest get warm-up and
    /// isolation checks.
    pub designs: Vec<DesignSpec>,
    /// Exercise the bounded-queue `429` path with slow-loris
    /// connections. Only deterministic against a daemon running
    /// `--workers 1 --queue-depth 1`.
    pub backpressure: bool,
    /// Finish with `POST /shutdown` and verify the drain. The daemon
    /// exits afterwards, so this must be the last check.
    pub shutdown: bool,
    /// Walk the flight-recorder surface: `/debug/requests` must retain
    /// capsules whose per-request Chrome traces validate and carry the
    /// capsule's trace id on every span event. Requires a daemon booted
    /// with `--slow-ms 0` so every smoke request is captured.
    pub recorder: bool,
    /// Walk the long-horizon observability surface: `/dashboard`,
    /// `/debug/profile` in all three formats, and `/query` answering
    /// with points in at least two downsample tiers. Requires a daemon
    /// with a running sampler and the continuous profiler on (`svtd`
    /// arms both by default).
    pub observability: bool,
}

fn get(addr: &str, path: &str) -> Result<String, String> {
    let (status, body) = http_request(addr, "GET", path, "")?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}, body: {body}"));
    }
    Ok(body)
}

fn expect_status(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    want: u16,
) -> Result<(), String> {
    let (status, response) = http_request(addr, method, path, body)?;
    if status != want {
        return Err(format!(
            "{method} {path}: status {status}, want {want}; body: {response}"
        ));
    }
    Ok(())
}

fn render_edit(edit: &EcoEdit) -> String {
    match edit {
        EcoEdit::ResizeCell { instance, new_cell } => format!(
            "{{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"{new_cell}\"}}"
        ),
        EcoEdit::SwapCell { instance, new_cell } => format!(
            "{{\"type\":\"swap_cell\",\"instance\":\"{instance}\",\"new_cell\":\"{new_cell}\"}}"
        ),
        EcoEdit::AdjustSpacing { instance, dx_nm } => format!(
            "{{\"type\":\"adjust_spacing\",\"instance\":\"{instance}\",\"dx_nm\":{dx_nm:?}}}"
        ),
        EcoEdit::MoveInstance {
            instance,
            row,
            x_nm,
        } => format!(
            "{{\"type\":\"move_instance\",\"instance\":\"{instance}\",\"row\":{row},\"x_nm\":{x_nm:?}}}"
        ),
    }
}

/// Runs the full smoke sequence against `addr` (`host:port`).
///
/// Assumes the daemon was started fresh on `spec` with no edits applied
/// — the differential mirror replays from the initial sign-off. Returns
/// a human-readable pass summary.
///
/// # Errors
///
/// Returns the first failed check with enough context to debug it.
pub fn run_smoke(addr: &str, spec: &DesignSpec) -> Result<String, String> {
    run_smoke_core(addr, spec).map(|(summary, _mirror)| summary)
}

fn run_smoke_core(addr: &str, spec: &DesignSpec) -> Result<(String, EcoSession<'static>), String> {
    let mut summary = String::new();

    // 1. Readiness, design identity, and the watchdog verdict.
    let health = get(addr, "/healthz")?;
    let health = JsonValue::parse(&health).map_err(|e| format!("/healthz not JSON: {e}"))?;
    let status = health.get("status").and_then(JsonValue::as_str);
    if status != Some("ok") {
        return Err(format!("/healthz status is {status:?}, want ok"));
    }
    let design = health.get("design").and_then(JsonValue::as_str);
    if design != Some(spec.name()) {
        return Err(format!(
            "/healthz design is {design:?}, want {:?} — is the daemon running a different design?",
            spec.name()
        ));
    }
    if health
        .get("watchdog")
        .and_then(|w| w.get("healthy"))
        .and_then(JsonValue::as_bool)
        != Some(true)
    {
        return Err("watchdog reports unhealthy on a fresh daemon".to_string());
    }
    summary.push_str("healthz: ok\n");

    // 2. First scrape: must parse with the workspace's own parser and
    // carry the service-plane counters.
    let scrape = get(addr, "/metrics")?;
    let samples = svt_obs::parse_prometheus(&scrape).map_err(|e| format!("/metrics: {e}"))?;
    if samples.is_empty() {
        return Err("/metrics exposition is empty".to_string());
    }
    if !samples.iter().any(|s| s.name == "svt_serve_requests_total") {
        return Err("svt_serve_requests_total missing from /metrics".to_string());
    }
    summary.push_str(&format!("metrics: {} samples\n", samples.len()));

    // 3. Aggregate snapshot parses as JSON.
    let snapshot = get(addr, "/snapshot.json")?;
    JsonValue::parse(&snapshot).map_err(|e| format!("/snapshot.json not JSON: {e}"))?;
    summary.push_str("snapshot.json: ok\n");

    // 4. Live timeline is a well-formed Chrome trace.
    let trace = get(addr, "/timeline.json")?;
    let stats = svt_obs::chrome::validate_chrome_trace(&trace)
        .map_err(|e| format!("/timeline.json: {e}"))?;
    summary.push_str(&format!(
        "timeline.json: {} events on {} threads\n",
        stats.events.len(),
        stats.tids.len()
    ));

    // 5. Differential ECO: served deltas must equal a direct
    // EcoSession::apply on an identically constructed session, bit for
    // bit.
    let mut mirror = warm_session(spec)?;
    let edit = pick_smoke_edit(mirror.netlist())?;
    let body = render_edit(&edit);
    let (status, served) = http_request(addr, "POST", "/eco", &body)?;
    if status != 200 {
        return Err(format!("POST /eco: status {status}, body: {served}"));
    }
    let expected_report = mirror
        .apply(&edit)
        .map_err(|e| format!("mirror apply: {e}"))?;
    let expected = render_delta_report(&expected_report);
    let served_json = JsonValue::parse(&served).map_err(|e| format!("/eco not JSON: {e}"))?;
    let deltas = served_json
        .get("endpoint_deltas")
        .and_then(JsonValue::as_array)
        .ok_or("eco response missing endpoint_deltas")?;
    if deltas.len() != expected_report.endpoint_deltas.len() {
        return Err(format!(
            "served {} endpoint deltas, direct apply produced {}",
            deltas.len(),
            expected_report.endpoint_deltas.len()
        ));
    }
    for (served_delta, want) in deltas.iter().zip(&expected_report.endpoint_deltas) {
        for (field, want_ns) in [
            ("arrival_before_ns", want.arrival_before_ns),
            ("arrival_after_ns", want.arrival_after_ns),
        ] {
            let got = served_delta
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("delta missing {field}"))?;
            if got.to_bits() != want_ns.to_bits() {
                return Err(format!(
                    "{}/{} {field}: served {got:?} != direct {want_ns:?} (bit-exact check)",
                    want.endpoint, want.corner
                ));
            }
        }
    }
    if served != expected {
        return Err(format!(
            "eco response body diverges from the direct render:\n served: {served}\n direct: {expected}"
        ));
    }
    summary.push_str(&format!(
        "eco: {} endpoint deltas bit-identical to direct apply\n",
        deltas.len()
    ));

    // 6. Batched ECO: a JSON array applies atomically and renders the
    // merged batch report bit-identically to a local replay. The batch
    // resizes the smoke instance back and forth, so it is always valid
    // after step 5.
    let EcoEdit::ResizeCell { instance, .. } = &edit else {
        unreachable!("pick_smoke_edit only resizes");
    };
    let batch = [
        EcoEdit::ResizeCell {
            instance: instance.clone(),
            new_cell: "INVX1".into(),
        },
        EcoEdit::ResizeCell {
            instance: instance.clone(),
            new_cell: "INVX2".into(),
        },
    ];
    let body = format!(
        "[{}]",
        batch.iter().map(render_edit).collect::<Vec<_>>().join(",")
    );
    let (status, served) = http_request(addr, "POST", "/eco", &body)?;
    if status != 200 {
        return Err(format!(
            "POST /eco (batch): status {status}, body: {served}"
        ));
    }
    let mut reports = Vec::new();
    for edit in &batch {
        reports.push(
            mirror
                .apply(edit)
                .map_err(|e| format!("mirror batch apply: {e}"))?,
        );
    }
    let expected = render_batch_report(&reports);
    if served != expected {
        return Err(format!(
            "batched eco response diverges from the direct render:\n served: {served}\n direct: {expected}"
        ));
    }
    summary.push_str(&format!(
        "eco batch: {} edits applied atomically, bit-identical to direct apply\n",
        batch.len()
    ));

    // 7. Second scrape: the per-interval delta/rate series appear now
    // that a previous scrape exists.
    let scrape = get(addr, "/metrics")?;
    let samples =
        svt_obs::parse_prometheus(&scrape).map_err(|e| format!("second /metrics: {e}"))?;
    for series in ["svt_scrape_interval_seconds", "svt_serve_requests_delta"] {
        if !samples.iter().any(|s| s.name == series) {
            return Err(format!("{series} missing from second scrape"));
        }
    }
    summary.push_str("metrics deltas: ok\n");
    summary.push_str("smoke: PASS");
    Ok((summary, mirror))
}

fn check_designs(addr: &str, opts: &SmokeOptions) -> Result<String, String> {
    let mut summary = String::new();
    let listing = get(addr, "/designs")?;
    let listing = JsonValue::parse(&listing).map_err(|e| format!("/designs not JSON: {e}"))?;
    let listed = listing
        .get("designs")
        .and_then(JsonValue::as_array)
        .ok_or("/designs missing designs array")?;
    if listed.len() != opts.designs.len() {
        return Err(format!(
            "/designs lists {} designs, daemon was booted with {}",
            listed.len(),
            opts.designs.len()
        ));
    }
    for (entry, spec) in listed.iter().zip(&opts.designs) {
        let name = entry.get("name").and_then(JsonValue::as_str);
        if name != Some(spec.name()) {
            return Err(format!(
                "/designs order: got {name:?}, want {:?} (registration order)",
                spec.name()
            ));
        }
    }
    summary.push_str(&format!("designs: {} listed in order\n", listed.len()));

    // Warm every secondary design eagerly and read its timing under the
    // per-design read lock; the default design's edit counter must be
    // untouched by traffic on the others (isolation).
    for spec in &opts.designs[1..] {
        let name = spec.name();
        let (status, body) = http_request(addr, "POST", &format!("/designs/{name}/warm"), "")?;
        if status != 200 {
            return Err(format!(
                "POST /designs/{name}/warm: status {status}: {body}"
            ));
        }
        let timing = get(addr, &format!("/designs/{name}/timing"))?;
        let timing = JsonValue::parse(&timing).map_err(|e| format!("{name} timing: {e}"))?;
        let gates = timing.get("gates").and_then(JsonValue::as_u64).unwrap_or(0);
        if gates == 0 {
            return Err(format!("/designs/{name}/timing reports 0 gates"));
        }
        if timing
            .get("edits_applied")
            .and_then(JsonValue::as_u64)
            .unwrap_or(u64::MAX)
            != 0
        {
            return Err(format!("freshly warmed `{name}` reports prior edits"));
        }
        summary.push_str(&format!("design {name}: warm, {gates} gates\n"));
    }
    let default = get(addr, &format!("/designs/{}", opts.designs[0].name()))?;
    let default = JsonValue::parse(&default).map_err(|e| format!("default design: {e}"))?;
    if default.get("edits_applied").and_then(JsonValue::as_u64) != Some(3) {
        return Err(format!(
            "default design should hold exactly the 3 smoke edits, got {:?}",
            default.get("edits_applied").and_then(JsonValue::as_u64)
        ));
    }
    summary.push_str("isolation: default design edit count untouched by other designs\n");

    // Rejected inputs answer with typed client errors, not 500s.
    expect_status(addr, "GET", "/designs/nope", "", 404)?;
    expect_status(addr, "DELETE", "/healthz", "", 405)?;
    expect_status(addr, "POST", "/eco", "not json", 400)?;
    expect_status(addr, "POST", "/eco", "[]", 400)?;
    expect_status(addr, "GET", "/nope", "", 404)?;
    summary.push_str("error paths: 404/405/400 as specified\n");
    Ok(summary)
}

/// Opens a connection and sends a deliberately unfinished request head,
/// pinning whichever handler/queue slot accepts it.
fn slow_loris(addr: &str) -> Result<TcpStream, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("loris connect: {e}"))?;
    stream
        .write_all(b"POST /eco HTTP/1.1\r\n")
        .map_err(|e| format!("loris write: {e}"))?;
    Ok(stream)
}

fn check_backpressure(addr: &str) -> Result<String, String> {
    // With one worker and a queue of one, two pinned connections leave
    // no capacity; the next connection must be turned away immediately
    // with 429 + Retry-After. Scheduling decides which loris lands
    // where, so keep adding loris connections (bounded) until the probe
    // sees the rejection.
    let mut lorises = vec![slow_loris(addr)?, slow_loris(addr)?];
    for _attempt in 0..40 {
        let probe = (|| -> Result<Option<String>, String> {
            let mut client = HttpClient::connect(addr)?;
            client.set_read_timeout(Duration::from_millis(500))?;
            let response = client.send_full("GET", "/healthz", "")?;
            if response.status != 429 {
                return Ok(None);
            }
            let retry_after = response
                .header("retry-after")
                .ok_or("429 without Retry-After header")?;
            retry_after
                .parse::<u64>()
                .map_err(|_| format!("Retry-After `{retry_after}` is not seconds"))?;
            Ok(Some(retry_after.to_string()))
        })();
        match probe {
            Ok(Some(retry_after)) => {
                let summary = format!(
                    "backpressure: saturated queue answered 429 with Retry-After: {retry_after}\n"
                );
                drop(lorises);
                // Recovery: with the loris connections gone the plane
                // must serve normally again within the idle timeout.
                for _ in 0..100 {
                    if let Ok((200, _)) = http_request(addr, "GET", "/healthz", "") {
                        return Ok(summary + "backpressure recovery: healthz 200 after release\n");
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                return Err(
                    "plane did not recover within 10s of releasing the loris connections"
                        .to_string(),
                );
            }
            Ok(None) | Err(_) => {
                if lorises.len() < 6 {
                    lorises.push(slow_loris(addr)?);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(
        "never saw a 429 despite saturating workers and queue (is the daemon running \
         --workers 1 --queue-depth 1?)"
            .to_string(),
    )
}

fn check_flight_recorder(addr: &str) -> Result<String, String> {
    let index = get(addr, "/debug/requests")?;
    let index = JsonValue::parse(&index).map_err(|e| format!("/debug/requests not JSON: {e}"))?;
    let count = index
        .get("count")
        .and_then(JsonValue::as_u64)
        .ok_or("/debug/requests missing count")?;
    let capsules = index
        .get("capsules")
        .and_then(JsonValue::as_array)
        .ok_or("/debug/requests missing capsules array")?;
    if count == 0 || capsules.is_empty() {
        return Err(
            "flight recorder retained no capsules (is the daemon running --slow-ms 0?)".to_string(),
        );
    }
    // Prefer an ECO capsule — the paper's hot path — else take the
    // newest of whatever the smoke traffic left behind.
    let capsule = capsules
        .iter()
        .rev()
        .find(|c| {
            c.get("route")
                .and_then(JsonValue::as_str)
                .is_some_and(|r| r.ends_with("/eco") || r == "/eco")
        })
        .unwrap_or_else(|| capsules.last().expect("non-empty capsules"));
    let trace_id = capsule
        .get("trace_id")
        .and_then(JsonValue::as_u64)
        .ok_or("capsule summary missing trace_id")?;
    let route = capsule
        .get("route")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_string();

    let body = get(addr, &format!("/debug/requests/{trace_id}"))?;
    let full = JsonValue::parse(&body).map_err(|e| format!("capsule {trace_id} not JSON: {e}"))?;
    if full.get("trace_id").and_then(JsonValue::as_u64) != Some(trace_id) {
        return Err(format!("capsule {trace_id} echoes a different trace id"));
    }
    if full
        .get("latency_ns")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
        == 0
    {
        return Err(format!("capsule {trace_id} has zero latency"));
    }

    let trace = get(addr, &format!("/debug/requests/{trace_id}/trace.json"))?;
    let stats = svt_obs::chrome::validate_chrome_trace(&trace)
        .map_err(|e| format!("capsule {trace_id} trace.json: {e}"))?;
    let span_events: Vec<_> = stats
        .events
        .iter()
        .filter(|e| matches!(e.ph.as_str(), "B" | "E" | "i"))
        .collect();
    if span_events.is_empty() {
        return Err(format!(
            "capsule {trace_id} trace has no span events (is the daemon in Chrome trace mode?)"
        ));
    }
    if let Some(stray) = span_events.iter().find(|e| e.trace_id != Some(trace_id)) {
        return Err(format!(
            "capsule {trace_id} trace event `{}` tagged {:?}, want {trace_id}",
            stray.name, stray.trace_id
        ));
    }
    Ok(format!(
        "flight recorder: {count} capsules; capsule {trace_id} ({route}) trace validates, \
         {} events all tagged with the trace id\n",
        span_events.len()
    ))
}

fn check_observability(addr: &str) -> Result<String, String> {
    // Dashboard: a standalone HTML document with inline SVG sparklines,
    // no scripts or external assets to fetch.
    let dash = get(addr, "/dashboard")?;
    if !dash.starts_with("<!DOCTYPE html") || !dash.contains("long-horizon observability") {
        return Err("GET /dashboard is not the expected HTML document".to_string());
    }
    // Continuous profiler, all three formats. The smoke traffic above
    // guarantees serve.request stacks exist.
    let collapsed = get(addr, "/debug/profile?format=collapsed")?;
    if !collapsed.contains("serve.request") {
        return Err(format!(
            "collapsed profile has no serve.request stack:\n{collapsed}"
        ));
    }
    let json = get(addr, "/debug/profile?format=json")?;
    let doc = JsonValue::parse(&json).map_err(|e| format!("profile json: {e}"))?;
    let stacks = doc
        .get("stacks")
        .and_then(JsonValue::as_array)
        .ok_or("profile json missing stacks array")?;
    if stacks.is_empty() {
        return Err("profile json has zero stacks".to_string());
    }
    let svg = get(addr, "/debug/profile?format=svg")?;
    if !svg.starts_with("<svg") || !svg.contains("serve.request") {
        return Err("flame SVG is empty or missing the serve.request frame".to_string());
    }
    expect_status(addr, "GET", "/debug/profile?format=nope", "", 400)?;

    // TSDB: the sampler must have filled at least two downsample tiers
    // for the headline request counter (parallel ingest populates every
    // tier on each tick, so this converges within one sample interval).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, body) =
            http_request(addr, "GET", "/query?metric=serve.requests&range=600", "")?;
        if status == 200 {
            let doc = JsonValue::parse(&body).map_err(|e| format!("/query: {e}"))?;
            let tiers = doc
                .get("tiers")
                .and_then(JsonValue::as_array)
                .ok_or("/query response missing tiers")?;
            let populated = tiers
                .iter()
                .filter(|t| t.get("points").and_then(JsonValue::as_u64).unwrap_or(0) > 0)
                .count();
            let points = doc
                .get("points")
                .and_then(JsonValue::as_array)
                .map_or(0, <[JsonValue]>::len);
            if populated >= 2 && points >= 1 {
                expect_status(addr, "GET", "/query?metric=no.such.series", "", 404)?;
                expect_status(addr, "GET", "/query", "", 400)?;
                return Ok(format!(
                    "observability: dashboard ok; profile {} stacks in 3 formats; \
                     /query serves {points} points across {populated} populated tiers\n",
                    stacks.len()
                ));
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "sampler never populated two tiers for serve.requests within 20s \
                 (is the daemon running with a sampler? last /query: {status})"
            ));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// The SLO breach scenario, run as its own smoke mode
/// (`svtd --smoke HOST:PORT --smoke-slo`) against a daemon booted with
/// a deliberately unmeetable objective (e.g.
/// `--slo route=*,p99_ms=0.001,err_pct=1,window=12`) and a fast
/// sampler. Hammers the plane until the burn-rate engine flips
/// `/healthz` to degraded/503, then verifies the `svt_slo_*`
/// exposition reports the breach.
///
/// # Errors
///
/// Returns the first failed check, or a timeout when no breach is
/// observed within 30 s.
pub fn run_smoke_slo(addr: &str) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        // Sustained traffic: every request violates the tiny latency
        // bound, so the budget burns at both windows.
        for _ in 0..20 {
            let _ = http_request(addr, "GET", "/designs", "");
        }
        let (status, body) = http_request(addr, "GET", "/healthz", "")?;
        let doc = JsonValue::parse(&body).map_err(|e| format!("/healthz: {e}"))?;
        let slo = doc
            .get("slo")
            .and_then(JsonValue::as_array)
            .ok_or("healthz has no slo block (was the daemon booted with --slo?)")?;
        let breached = slo
            .iter()
            .any(|s| s.get("breached").and_then(JsonValue::as_bool) == Some(true));
        if breached {
            if status != 503 {
                return Err(format!(
                    "SLO breached but /healthz answered {status}, want 503: {body}"
                ));
            }
            if doc.get("status").and_then(JsonValue::as_str) != Some("degraded") {
                return Err(format!("breached /healthz status is not degraded: {body}"));
            }
            let (m_status, metrics) = http_request(addr, "GET", "/metrics", "")?;
            if m_status != 200 {
                return Err(format!(
                    "/metrics must stay 200 during a breach: {m_status}"
                ));
            }
            for needle in [
                "svt_slo_breached",
                "svt_slo_burn_rate",
                "svt_slo_breaches_total",
            ] {
                if !metrics.contains(needle) {
                    return Err(format!("{needle} missing from /metrics during breach"));
                }
            }
            return Ok(
                "slo: deliberate breach degraded /healthz to 503 and exposed svt_slo_* families\n\
                 smoke: PASS"
                    .to_string(),
            );
        }
        if Instant::now() >= deadline {
            return Err(format!("no SLO breach within 30s — burn rates: {body}"));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn check_shutdown(addr: &str) -> Result<String, String> {
    let (status, body) = http_request(addr, "POST", "/shutdown", "")?;
    if status != 200 || !body.contains("draining") {
        return Err(format!("POST /shutdown: status {status}, body: {body}"));
    }
    // New work is refused while the drain completes: either a 503 or a
    // refused/reset connection once the listener is gone.
    match http_request(addr, "GET", "/healthz", "") {
        Ok((503, _)) | Err(_) => {}
        Ok((status, body)) => {
            return Err(format!(
                "post-shutdown request got {status} ({body}), want 503 or refusal"
            ))
        }
    }
    Ok("shutdown: drain acknowledged, new work refused\n".to_string())
}

/// Runs [`run_smoke`] plus the multi-tenant, error-path, backpressure,
/// and graceful-shutdown checks selected in `opts`.
///
/// # Errors
///
/// Returns the first failed check with enough context to debug it.
///
/// # Panics
///
/// Panics if `opts.designs` is empty.
pub fn run_smoke_full(addr: &str, opts: &SmokeOptions) -> Result<String, String> {
    assert!(
        !opts.designs.is_empty(),
        "smoke needs the daemon's design list"
    );
    let (mut summary, _mirror) = run_smoke_core(addr, &opts.designs[0])?;
    summary.truncate(summary.len() - "smoke: PASS".len());
    summary.push_str(&check_designs(addr, opts)?);
    if opts.recorder {
        summary.push_str(&check_flight_recorder(addr)?);
    }
    if opts.observability {
        summary.push_str(&check_observability(addr)?);
    }
    if opts.backpressure {
        summary.push_str(&check_backpressure(addr)?);
    }
    if opts.shutdown {
        summary.push_str(&check_shutdown(addr)?);
    }
    summary.push_str("smoke: PASS");
    Ok(summary)
}
