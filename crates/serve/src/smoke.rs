//! The end-to-end smoke sequence used by CI and `svtd --smoke`.
//!
//! A pure-Rust client (no `curl`) walks every endpoint of a freshly
//! started daemon and validates each response with the workspace's own
//! parsers: the Prometheus exposition must survive
//! [`svt_obs::parse_prometheus`], the snapshot and ECO responses the
//! shared [`svt_obs::json`] parser, and the timeline
//! [`svt_obs::chrome::validate_chrome_trace`]. The ECO check is
//! *differential*: the client rebuilds the daemon's design locally,
//! applies the identical edit through [`EcoSession::apply`] directly,
//! and requires the served slack deltas to match bit-for-bit.
//!
//! [`EcoSession::apply`]: svt_eco::EcoSession::apply

use svt_eco::EcoEdit;
use svt_netlist::MappedNetlist;
use svt_obs::json::JsonValue;

use crate::http::http_request;
use crate::server::{render_delta_report, warm_session, DesignSpec};

/// The deterministic edit the smoke check posts: resize the first
/// `INVX1` instance (netlist order) to `INVX2`. Both the client and any
/// observer can reproduce it from the design alone.
///
/// # Errors
///
/// Returns a message when the design has no `INVX1` instance.
pub fn pick_smoke_edit(netlist: &MappedNetlist) -> Result<EcoEdit, String> {
    let instance = netlist
        .instances()
        .iter()
        .find(|i| i.cell == "INVX1")
        .map(|i| i.name.clone())
        .ok_or("design has no INVX1 instance to resize")?;
    Ok(EcoEdit::ResizeCell {
        instance,
        new_cell: "INVX2".into(),
    })
}

fn get(addr: &str, path: &str) -> Result<String, String> {
    let (status, body) = http_request(addr, "GET", path, "")?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}, body: {body}"));
    }
    Ok(body)
}

/// Runs the full smoke sequence against `addr` (`host:port`).
///
/// Assumes the daemon was started fresh on `spec` with no edits applied
/// — the differential mirror replays from the initial sign-off. Returns
/// a human-readable pass summary.
///
/// # Errors
///
/// Returns the first failed check with enough context to debug it.
pub fn run_smoke(addr: &str, spec: &DesignSpec) -> Result<String, String> {
    let mut summary = String::new();

    // 1. Readiness, design identity, and the watchdog verdict.
    let health = get(addr, "/healthz")?;
    let health = JsonValue::parse(&health).map_err(|e| format!("/healthz not JSON: {e}"))?;
    let status = health.get("status").and_then(JsonValue::as_str);
    if status != Some("ok") {
        return Err(format!("/healthz status is {status:?}, want ok"));
    }
    let design = health.get("design").and_then(JsonValue::as_str);
    if design != Some(spec.name()) {
        return Err(format!(
            "/healthz design is {design:?}, want {:?} — is the daemon running a different design?",
            spec.name()
        ));
    }
    if health
        .get("watchdog")
        .and_then(|w| w.get("healthy"))
        .and_then(JsonValue::as_bool)
        != Some(true)
    {
        return Err("watchdog reports unhealthy on a fresh daemon".to_string());
    }
    summary.push_str("healthz: ok\n");

    // 2. First scrape: must parse with the workspace's own parser and
    // carry the service-plane counters.
    let scrape = get(addr, "/metrics")?;
    let samples = svt_obs::parse_prometheus(&scrape).map_err(|e| format!("/metrics: {e}"))?;
    if samples.is_empty() {
        return Err("/metrics exposition is empty".to_string());
    }
    if !samples.iter().any(|s| s.name == "svt_serve_requests_total") {
        return Err("svt_serve_requests_total missing from /metrics".to_string());
    }
    summary.push_str(&format!("metrics: {} samples\n", samples.len()));

    // 3. Aggregate snapshot parses as JSON.
    let snapshot = get(addr, "/snapshot.json")?;
    JsonValue::parse(&snapshot).map_err(|e| format!("/snapshot.json not JSON: {e}"))?;
    summary.push_str("snapshot.json: ok\n");

    // 4. Live timeline is a well-formed Chrome trace.
    let trace = get(addr, "/timeline.json")?;
    let stats = svt_obs::chrome::validate_chrome_trace(&trace)
        .map_err(|e| format!("/timeline.json: {e}"))?;
    summary.push_str(&format!(
        "timeline.json: {} events on {} threads\n",
        stats.events.len(),
        stats.tids.len()
    ));

    // 5. Differential ECO: served deltas must equal a direct
    // EcoSession::apply on an identically constructed session, bit for
    // bit.
    let mut mirror = warm_session(spec)?;
    let edit = pick_smoke_edit(mirror.netlist())?;
    let body = match &edit {
        EcoEdit::ResizeCell { instance, new_cell } => format!(
            "{{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"{new_cell}\"}}"
        ),
        _ => unreachable!("pick_smoke_edit only resizes"),
    };
    let (status, served) = http_request(addr, "POST", "/eco", &body)?;
    if status != 200 {
        return Err(format!("POST /eco: status {status}, body: {served}"));
    }
    let expected_report = mirror
        .apply(&edit)
        .map_err(|e| format!("mirror apply: {e}"))?;
    let expected = render_delta_report(&expected_report);
    let served_json = JsonValue::parse(&served).map_err(|e| format!("/eco not JSON: {e}"))?;
    let deltas = served_json
        .get("endpoint_deltas")
        .and_then(JsonValue::as_array)
        .ok_or("eco response missing endpoint_deltas")?;
    if deltas.len() != expected_report.endpoint_deltas.len() {
        return Err(format!(
            "served {} endpoint deltas, direct apply produced {}",
            deltas.len(),
            expected_report.endpoint_deltas.len()
        ));
    }
    for (served_delta, want) in deltas.iter().zip(&expected_report.endpoint_deltas) {
        for (field, want_ns) in [
            ("arrival_before_ns", want.arrival_before_ns),
            ("arrival_after_ns", want.arrival_after_ns),
        ] {
            let got = served_delta
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("delta missing {field}"))?;
            if got.to_bits() != want_ns.to_bits() {
                return Err(format!(
                    "{}/{} {field}: served {got:?} != direct {want_ns:?} (bit-exact check)",
                    want.endpoint, want.corner
                ));
            }
        }
    }
    if served != expected {
        return Err(format!(
            "eco response body diverges from the direct render:\n served: {served}\n direct: {expected}"
        ));
    }
    summary.push_str(&format!(
        "eco: {} endpoint deltas bit-identical to direct apply\n",
        deltas.len()
    ));

    // 6. Second scrape: the per-interval delta/rate series appear now
    // that a previous scrape exists.
    let scrape = get(addr, "/metrics")?;
    let samples =
        svt_obs::parse_prometheus(&scrape).map_err(|e| format!("second /metrics: {e}"))?;
    for series in ["svt_scrape_interval_seconds", "svt_serve_requests_delta"] {
        if !samples.iter().any(|s| s.name == series) {
            return Err(format!("{series} missing from second scrape"));
        }
    }
    summary.push_str("metrics deltas: ok\n");
    summary.push_str("smoke: PASS");
    Ok(summary)
}
