//! Structured JSONL access log with size-based rotation.
//!
//! One line per served request, written as the handler finishes. Each
//! line is a self-contained JSON object carrying the request's trace
//! id, route class, design, status, latency, queue wait, and the
//! process-wide allocation delta over the request window — enough to
//! join a log line against its `/debug/requests/{trace_id}` capsule or
//! a `/metrics` series without any other context.
//!
//! Rotation is size-based: when a write would push the current file
//! past [`AccessLog::max_bytes`], existing generations shift up
//! (`<path>.1` → `<path>.2`, …), the file is renamed to `<path>.1`,
//! and a fresh file is opened at `<path>`. The number of retained
//! generations is configurable (`--access-log-rotate N`, default 1),
//! so a chatty daemon is bounded at roughly
//! `(generations + 1) * max_bytes` on disk.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::{Mutex, PoisonError};

use svt_obs::json::escape_json;

/// Default rotation threshold: 10 MiB per generation.
pub const DEFAULT_MAX_BYTES: u64 = 10 * 1024 * 1024;

/// Default number of rotated generations kept on disk.
pub const DEFAULT_GENERATIONS: usize = 1;

/// One access-log line, pre-serialization. All durations are
/// microseconds — coarse enough to stay compact, fine enough to rank
/// slow requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEntry {
    /// Milliseconds since the Unix epoch at response time.
    pub ts_ms: u64,
    /// The request's process-unique trace id.
    pub trace_id: u64,
    /// HTTP method.
    pub method: String,
    /// Concrete request path as sent.
    pub path: String,
    /// Route class template (e.g. `/designs/{name}/eco`).
    pub route: String,
    /// Design the request targeted, `-` when none.
    pub design: String,
    /// Response status code.
    pub status: u16,
    /// Wall time spent serving the request, microseconds.
    pub latency_us: u64,
    /// Time the connection's pool task waited for a worker, microseconds.
    pub queue_wait_us: u64,
    /// Bytes allocated process-wide during the request window.
    pub alloc_bytes: u64,
    /// Response body size, bytes.
    pub bytes_out: u64,
}

/// Renders one entry as its JSONL line (no trailing newline).
#[must_use]
pub fn render_entry(e: &AccessEntry) -> String {
    format!(
        "{{\"ts_ms\":{},\"trace_id\":{},\"method\":\"{}\",\"path\":\"{}\",\"route\":\"{}\",\
         \"design\":\"{}\",\"status\":{},\"latency_us\":{},\"queue_wait_us\":{},\
         \"alloc_bytes\":{},\"bytes_out\":{}}}",
        e.ts_ms,
        e.trace_id,
        escape_json(&e.method),
        escape_json(&e.path),
        escape_json(&e.route),
        escape_json(&e.design),
        e.status,
        e.latency_us,
        e.queue_wait_us,
        e.alloc_bytes,
        e.bytes_out
    )
}

struct LogFile {
    file: File,
    written: u64,
}

/// The rotating JSONL writer shared by every handler thread. One short
/// mutex hold per request — the write itself is a single buffered
/// `write_all` of an already-rendered line.
pub struct AccessLog {
    path: String,
    max_bytes: u64,
    generations: usize,
    inner: Mutex<LogFile>,
}

impl AccessLog {
    /// Opens (appending) or creates the log at `path`, keeping
    /// [`DEFAULT_GENERATIONS`] rotated generation(s).
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be opened.
    pub fn open(path: &str, max_bytes: u64) -> Result<AccessLog, String> {
        AccessLog::open_with_generations(path, max_bytes, DEFAULT_GENERATIONS)
    }

    /// Opens (appending) or creates the log at `path`, keeping up to
    /// `generations` rotated files (`<path>.1` … `<path>.N`).
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be opened.
    pub fn open_with_generations(
        path: &str,
        max_bytes: u64,
        generations: usize,
    ) -> Result<AccessLog, String> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open access log `{path}`: {e}"))?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(AccessLog {
            path: path.to_string(),
            max_bytes: max_bytes.max(1),
            generations: generations.max(1),
            inner: Mutex::new(LogFile { file, written }),
        })
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Rotation threshold, bytes.
    #[must_use]
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Number of rotated generations kept beside the live file.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Appends one entry as a JSONL line, rotating first when the line
    /// would push the current generation past the threshold. Write
    /// failures increment `serve.access_log_errors` instead of
    /// propagating — a full disk must not take the service plane down.
    pub fn log(&self, entry: &AccessEntry) {
        let mut line = render_entry(entry);
        line.push('\n');
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.written > 0 && inner.written + line.len() as u64 > self.max_bytes {
            // Shift older generations up (`.N-1` → `.N`, the oldest
            // falls off), then move the live file to `.1`.
            for gen in (1..self.generations).rev() {
                let from = format!("{}.{gen}", self.path);
                let to = format!("{}.{}", self.path, gen + 1);
                let _ = std::fs::rename(&from, &to);
            }
            let rotated = format!("{}.1", self.path);
            let reopened = std::fs::rename(&self.path, &rotated)
                .map_err(|e| format!("rotate `{}`: {e}", self.path))
                .and_then(|()| {
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&self.path)
                        .map_err(|e| format!("reopen `{}`: {e}", self.path))
                });
            match reopened {
                Ok(file) => {
                    inner.file = file;
                    inner.written = 0;
                    svt_obs::counter!("serve.access_log_rotations").incr();
                }
                Err(e) => {
                    svt_obs::counter!("serve.access_log_errors").incr();
                    eprintln!("svtd: access log rotation failed: {e}");
                }
            }
        }
        match inner.file.write_all(line.as_bytes()) {
            Ok(()) => {
                inner.written += line.len() as u64;
                svt_obs::counter!("serve.access_log_lines").incr();
            }
            Err(e) => {
                svt_obs::counter!("serve.access_log_errors").incr();
                eprintln!("svtd: access log write failed: {e}");
            }
        }
    }
}

/// Milliseconds since the Unix epoch, for [`AccessEntry::ts_ms`].
#[must_use]
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_obs::json::JsonValue;

    fn entry(trace_id: u64) -> AccessEntry {
        AccessEntry {
            ts_ms: 1_700_000_000_000,
            trace_id,
            method: "POST".into(),
            path: "/designs/builtin/eco".into(),
            route: "/designs/{name}/eco".into(),
            design: "builtin".into(),
            status: 200,
            latency_us: 5_100,
            queue_wait_us: 40,
            alloc_bytes: 4096,
            bytes_out: 512,
        }
    }

    fn temp_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("svt_access_{tag}_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .to_string()
    }

    #[test]
    fn lines_are_one_parseable_json_object_each() {
        let path = temp_path("lines");
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path, DEFAULT_MAX_BYTES).expect("open");
        log.log(&entry(7));
        log.log(&entry(8));
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, want_id) in lines.iter().zip([7u64, 8]) {
            let doc = JsonValue::parse(line).expect("line parses");
            assert_eq!(
                doc.get("trace_id").and_then(JsonValue::as_u64),
                Some(want_id)
            );
            assert_eq!(
                doc.get("route").and_then(JsonValue::as_str),
                Some("/designs/{name}/eco")
            );
            assert_eq!(
                doc.get("latency_us").and_then(JsonValue::as_u64),
                Some(5_100)
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_renames_the_full_generation_and_keeps_writing() {
        let path = temp_path("rotate");
        let rotated = format!("{path}.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        let line_len = render_entry(&entry(1)).len() as u64 + 1;
        // Threshold of two lines: the third write rotates first.
        let log = AccessLog::open(&path, 2 * line_len).expect("open");
        log.log(&entry(1));
        log.log(&entry(2));
        log.log(&entry(3));
        let old = std::fs::read_to_string(&rotated).expect("rotated generation exists");
        assert_eq!(old.lines().count(), 2, "full generation moved aside");
        let new = std::fs::read_to_string(&path).expect("fresh generation exists");
        assert_eq!(new.lines().count(), 1, "writing continued after rotation");
        assert!(new.contains("\"trace_id\":3"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn rotation_keeps_the_configured_generation_count() {
        let path = temp_path("gens");
        let gens: Vec<String> = (1..=4).map(|g| format!("{path}.{g}")).collect();
        let _ = std::fs::remove_file(&path);
        for g in &gens {
            let _ = std::fs::remove_file(g);
        }
        let line_len = render_entry(&entry(1)).len() as u64 + 1;
        // One line per generation: every second write rotates.
        let log = AccessLog::open_with_generations(&path, line_len, 3).expect("open");
        assert_eq!(log.generations(), 3);
        for id in 1..=5 {
            log.log(&entry(id));
        }
        // Writes 1..=5 with rotation on 2,3,4,5: live file holds 5,
        // .1 holds 4, .2 holds 3, .3 holds 2; line 1 fell off.
        let live = std::fs::read_to_string(&path).expect("live file");
        assert!(live.contains("\"trace_id\":5"));
        for (g, want_id) in [(1u32, 4u64), (2, 3), (3, 2)] {
            let body = std::fs::read_to_string(format!("{path}.{g}"))
                .unwrap_or_else(|e| panic!("generation .{g}: {e}"));
            assert!(
                body.contains(&format!("\"trace_id\":{want_id}")),
                "generation .{g} holds line {want_id}, got: {body}"
            );
        }
        assert!(
            !std::path::Path::new(&format!("{path}.4")).exists(),
            "oldest generation beyond the cap is dropped"
        );
        let _ = std::fs::remove_file(&path);
        for g in &gens {
            let _ = std::fs::remove_file(g);
        }
    }

    #[test]
    fn reopening_an_existing_log_appends() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let log = AccessLog::open(&path, DEFAULT_MAX_BYTES).expect("open");
            log.log(&entry(1));
        }
        let log = AccessLog::open(&path, DEFAULT_MAX_BYTES).expect("reopen");
        log.log(&entry(2));
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body.lines().count(), 2, "reopen appends, not truncates");
        let _ = std::fs::remove_file(&path);
    }
}
