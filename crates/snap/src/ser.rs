use std::collections::BTreeMap;

/// A type that can write itself into a [`Serializer`].
///
/// Implementations append a fixed, self-describing-by-position byte
/// sequence — the decoder reads fields back in the same order, so the
/// pair of impls *is* the schema (and `docs/SNAPSHOT_FORMAT.md` is its
/// written form).
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Serializer);
}

/// Encodes `value` as a standalone byte vector.
///
/// # Examples
///
/// ```
/// let bytes = svt_snap::to_bytes(&7u32);
/// assert_eq!(bytes, [7, 0, 0, 0], "u32 is 4 bytes little-endian");
/// ```
#[must_use]
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Serializer::new();
    value.serialize(&mut out);
    out.into_bytes()
}

/// A byte-oriented little-endian encoder.
///
/// All multi-byte integers are little-endian; `f64` is stored as its
/// IEEE-754 bit pattern ([`f64::to_bits`]), so every float — including
/// `-0.0`, subnormals, infinities, and NaN payloads — round-trips
/// bit-exactly. Lengths are `u64`.
///
/// # Examples
///
/// ```
/// use svt_snap::Serializer;
///
/// let mut out = Serializer::new();
/// out.write_u16(0x1234);
/// out.write_f64(1.5);
/// assert_eq!(out.len(), 2 + 8);
/// assert_eq!(&out.into_bytes()[..2], &[0x34, 0x12]);
/// ```
#[derive(Debug, Default)]
pub struct Serializer {
    buf: Vec<u8>,
}

impl Serializer {
    /// An empty serializer.
    #[must_use]
    pub fn new() -> Serializer {
        Serializer::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the serializer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its exact IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a collection length as a `u64`.
    pub fn write_len(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Writes raw bytes with **no** length prefix (container internals;
    /// typed encodings use [`Serializer::write_str`] or `Vec<u8>`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

impl Serialize for u8 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u8(*self);
    }
}

impl Serialize for u16 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u16(*self);
    }
}

impl Serialize for u32 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u32(*self);
    }
}

impl Serialize for u64 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u64(*self);
    }
}

impl Serialize for i64 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_i64(*self);
    }
}

impl Serialize for usize {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u64(*self as u64);
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Serializer) {
        out.write_f64(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u8(u8::from(*self));
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Serializer) {
        out.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Serializer) {
        out.write_str(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Serializer) {
        match self {
            None => out.write_u8(0),
            Some(v) => {
                out.write_u8(1);
                v.serialize(out);
            }
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Serializer) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.len());
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut Serializer) {
        // Fixed-arity: the length is part of the type, so no prefix.
        for item in self {
            item.serialize(out);
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut Serializer) {
        self.0.serialize(out);
        self.1.serialize(out);
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, out: &mut Serializer) {
        self.0.serialize(out);
        self.1.serialize(out);
        self.2.serialize(out);
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self, out: &mut Serializer) {
        self.0.serialize(out);
        self.1.serialize(out);
        self.2.serialize(out);
        self.3.serialize(out);
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize, E: Serialize> Serialize
    for (A, B, C, D, E)
{
    fn serialize(&self, out: &mut Serializer) {
        self.0.serialize(out);
        self.1.serialize(out);
        self.2.serialize(out);
        self.3.serialize(out);
        self.4.serialize(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Serializer) {
        (*self).serialize(out);
    }
}
