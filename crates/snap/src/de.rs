use std::collections::BTreeMap;

use crate::error::SnapError;

/// A type that can read itself back from a [`Deserializer`].
///
/// The field order must mirror the type's [`crate::Serialize`] impl
/// exactly — the encoding carries no field names or tags.
pub trait Deserialize: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the input ends mid-value, or
    /// [`SnapError::Malformed`] when the bytes decode to an invalid
    /// value (bad enum tag, non-UTF-8 string, failed invariant).
    fn deserialize(input: &mut Deserializer<'_>) -> Result<Self, SnapError>;
}

/// Decodes a `T` from `bytes`, requiring the whole input be consumed.
///
/// # Errors
///
/// Propagates the value's decode error, or [`SnapError::TrailingBytes`]
/// if input remains after the value.
///
/// # Examples
///
/// ```
/// let n: u32 = svt_snap::from_bytes(&[7, 0, 0, 0])?;
/// assert_eq!(n, 7);
/// assert!(svt_snap::from_bytes::<u32>(&[7, 0, 0]).is_err(), "truncated");
/// assert!(svt_snap::from_bytes::<u32>(&[7, 0, 0, 0, 9]).is_err(), "trailing");
/// # Ok::<(), svt_snap::SnapError>(())
/// ```
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut input = Deserializer::new(bytes);
    let value = T::deserialize(&mut input)?;
    input.finish()?;
    Ok(value)
}

/// A bounds-checked little-endian decoder over a byte slice.
///
/// Every read validates that enough input remains and returns
/// [`SnapError::Truncated`] otherwise — a truncated or corrupted file can
/// never panic or read out of bounds.
#[derive(Debug)]
pub struct Deserializer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Deserializer<'a> {
    /// A decoder over `bytes`, positioned at the start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Deserializer<'a> {
        Deserializer { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when input remains.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than `n` bytes remain.
    pub fn read_exact(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.read_exact(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 2 bytes remain.
    pub fn read_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.read_exact(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 4 bytes remain.
    pub fn read_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.read_exact(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn read_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.read_exact(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn read_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.read_u64()? as i64)
    }

    /// Reads an `f64` from its exact IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn read_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a collection length and sanity-bounds it against the
    /// remaining input (each element encodes to at least one byte), so a
    /// corrupted length can never drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the length field is cut short or
    /// claims more elements than bytes remain.
    pub fn read_len(&mut self) -> Result<usize, SnapError> {
        let n = self.read_u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Malformed {
            what: format!("length {n} exceeds the address space"),
        })?;
        if n > self.remaining() {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] on short input, [`SnapError::Malformed`]
    /// on invalid UTF-8.
    pub fn read_str(&mut self) -> Result<String, SnapError> {
        let n = self.read_len()?;
        let bytes = self.read_exact(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed {
            what: "string is not valid UTF-8".into(),
        })
    }
}

impl Deserialize for u8 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<u8, SnapError> {
        input.read_u8()
    }
}

impl Deserialize for u16 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<u16, SnapError> {
        input.read_u16()
    }
}

impl Deserialize for u32 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<u32, SnapError> {
        input.read_u32()
    }
}

impl Deserialize for u64 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<u64, SnapError> {
        input.read_u64()
    }
}

impl Deserialize for i64 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<i64, SnapError> {
        input.read_i64()
    }
}

impl Deserialize for usize {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<usize, SnapError> {
        let n = input.read_u64()?;
        usize::try_from(n).map_err(|_| SnapError::Malformed {
            what: format!("usize {n} exceeds the address space"),
        })
    }
}

impl Deserialize for f64 {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<f64, SnapError> {
        input.read_f64()
    }
}

impl Deserialize for bool {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<bool, SnapError> {
        match input.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Malformed {
                what: format!("bool tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

impl Deserialize for String {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<String, SnapError> {
        input.read_str()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<Option<T>, SnapError> {
        match input.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            other => Err(SnapError::Malformed {
                what: format!("option tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<Vec<T>, SnapError> {
        let n = input.read_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::deserialize(input)?);
        }
        Ok(out)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<[T; N], SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(input)?);
        }
        out.try_into().map_err(|_| SnapError::Malformed {
            what: format!("array of {N} failed to materialize"),
        })
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<BTreeMap<K, V>, SnapError> {
        let n = input.read_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<(A, B), SnapError> {
        Ok((A::deserialize(input)?, B::deserialize(input)?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<(A, B, C), SnapError> {
        Ok((
            A::deserialize(input)?,
            B::deserialize(input)?,
            C::deserialize(input)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<(A, B, C, D), SnapError> {
        Ok((
            A::deserialize(input)?,
            B::deserialize(input)?,
            C::deserialize(input)?,
            D::deserialize(input)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize, E: Deserialize> Deserialize
    for (A, B, C, D, E)
{
    fn deserialize(input: &mut Deserializer<'_>) -> Result<(A, B, C, D, E), SnapError> {
        Ok((
            A::deserialize(input)?,
            B::deserialize(input)?,
            C::deserialize(input)?,
            D::deserialize(input)?,
            E::deserialize(input)?,
        ))
    }
}
