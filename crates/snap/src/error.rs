use std::fmt;

/// Everything that can go wrong reading (or writing) a snapshot.
///
/// Each variant carries enough context to log a useful message, and
/// [`SnapError::reason`] collapses the variant to a stable label used by
/// the `snap.restore_fallback{reason}` counter family, so operators can
/// see *why* a daemon fell back to a cold rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the failed read needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// Decoding finished with input left over.
    TrailingBytes {
        /// Unconsumed byte count.
        count: usize,
    },
    /// The file does not start with [`crate::MAGIC`].
    BadMagic {
        /// The eight bytes found instead.
        found: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Highest version this build reads ([`crate::FORMAT_VERSION`]).
        supported: u32,
    },
    /// The file was produced by an engine whose identity hashes differ
    /// from the running build's — its tables cannot be trusted.
    FingerprintMismatch {
        /// Fingerprint the running build expects.
        expected: u64,
        /// Fingerprint stamped in the file.
        found: u64,
    },
    /// The payload checksum does not match the header — the file was
    /// corrupted after it was written.
    ChecksumMismatch {
        /// Checksum stamped in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// Structurally well-formed bytes that decode to an invalid value
    /// (e.g. a lookup table with a non-increasing axis).
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// A section the reader requires is absent.
    MissingSection {
        /// The missing section's name.
        name: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// Path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl SnapError {
    /// Stable, low-cardinality label of the failure class — the `reason`
    /// value of the `snap.restore_fallback{reason}` counter family.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            SnapError::Truncated { .. } => "truncated",
            SnapError::TrailingBytes { .. } => "trailing_bytes",
            SnapError::BadMagic { .. } => "bad_magic",
            SnapError::UnsupportedVersion { .. } => "version",
            SnapError::FingerprintMismatch { .. } => "fingerprint",
            SnapError::ChecksumMismatch { .. } => "checksum",
            SnapError::Malformed { .. } => "malformed",
            SnapError::MissingSection { .. } => "missing_section",
            SnapError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} left"
                )
            }
            SnapError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last field")
            }
            SnapError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (not an svt snapshot)")
            }
            SnapError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format v{found} is newer than the supported v{supported}"
                )
            }
            SnapError::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "build fingerprint {found:#018x} does not match the running engine's {expected:#018x}"
                )
            }
            SnapError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "payload checksum {found:#018x} does not match the header's {expected:#018x}"
                )
            }
            SnapError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapError::MissingSection { name } => write!(f, "section `{name}` is missing"),
            SnapError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for SnapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_are_stable_and_distinct() {
        let errors = [
            SnapError::Truncated {
                needed: 8,
                remaining: 0,
            },
            SnapError::TrailingBytes { count: 3 },
            SnapError::BadMagic { found: [0; 8] },
            SnapError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            SnapError::FingerprintMismatch {
                expected: 1,
                found: 2,
            },
            SnapError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
            SnapError::Malformed { what: "x".into() },
            SnapError::MissingSection { name: "fem".into() },
            SnapError::Io {
                path: "/tmp/x".into(),
                message: "denied".into(),
            },
        ];
        let reasons: Vec<&str> = errors.iter().map(SnapError::reason).collect();
        let mut unique = reasons.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), reasons.len(), "labels must be distinct");
        for (e, r) in errors.iter().zip(&reasons) {
            assert!(!r.is_empty());
            assert!(!e.to_string().is_empty());
        }
    }
}
