use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::de::{Deserialize, Deserializer};
use crate::error::SnapError;
use crate::ser::{Serialize, Serializer};

/// First eight bytes of every svt snapshot file.
pub const MAGIC: [u8; 8] = *b"SVTSNAP\0";

/// Highest snapshot format version this build writes and reads. Files
/// stamped with a *lower* version remain readable (additive evolution:
/// readers skip unknown sections); files stamped with a higher version
/// are rejected with [`SnapError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size in bytes: magic (8) + version (4) + section count
/// (4) + fingerprint (8) + payload length (8) + checksum (8).
pub const HEADER_LEN: usize = 40;

/// The FNV-1a 64-bit hash — the snapshot payload checksum.
///
/// Chosen for being trivially reimplementable (two constants, one loop)
/// by a foreign reader; the checksum guards against corruption, not
/// adversaries.
///
/// # Examples
///
/// ```
/// // The well-known FNV-1a test vectors.
/// assert_eq!(svt_snap::fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(svt_snap::fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds a snapshot file: named, typed sections behind a fingerprinted
/// and checksummed header.
///
/// # Examples
///
/// ```
/// use svt_snap::{SnapshotReader, SnapshotWriter};
///
/// let mut writer = SnapshotWriter::new(0xfeed);
/// writer.section("spacings", &vec![200.0f64, 400.0, 700.0]);
/// let bytes = writer.to_bytes();
///
/// let reader = SnapshotReader::from_bytes(&bytes)?;
/// reader.expect_fingerprint(0xfeed)?;
/// let spacings: Vec<f64> = reader.section("spacings")?;
/// assert_eq!(spacings, [200.0, 400.0, 700.0]);
/// # Ok::<(), svt_snap::SnapError>(())
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    fingerprint: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// A writer stamped with the given build fingerprint.
    #[must_use]
    pub fn new(fingerprint: u64) -> SnapshotWriter {
        SnapshotWriter {
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Appends a section holding one serialized value. Section names
    /// must be unique; order is preserved.
    pub fn section<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        let mut body = Serializer::new();
        value.serialize(&mut body);
        self.raw_section(name, body.into_bytes());
    }

    /// Appends a section of pre-encoded bytes.
    pub fn raw_section(&mut self, name: &str, body: Vec<u8>) {
        self.sections.push((name.to_string(), body));
    }

    /// Number of sections added so far.
    #[must_use]
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Encodes the whole snapshot: header, then each section as
    /// `name-length (u32) · name · body-length (u64) · body`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Serializer::new();
        for (name, body) in &self.sections {
            payload.write_u32(u32::try_from(name.len()).expect("section name fits u32"));
            payload.write_bytes(name.as_bytes());
            payload.write_u64(body.len() as u64);
            payload.write_bytes(body);
        }
        let payload = payload.into_bytes();

        let mut out = Serializer::new();
        out.write_bytes(&MAGIC);
        out.write_u32(FORMAT_VERSION);
        out.write_u32(u32::try_from(self.sections.len()).expect("section count fits u32"));
        out.write_u64(self.fingerprint);
        out.write_u64(payload.len() as u64);
        out.write_u64(fnv1a64(&payload));
        out.write_bytes(&payload);
        out.into_bytes()
    }

    /// Writes the snapshot atomically (`path.tmp` + rename), returning
    /// the byte size written. A reader can never observe a half-written
    /// file.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on any filesystem failure.
    pub fn write_file(&self, path: &Path) -> Result<u64, SnapError> {
        let bytes = self.to_bytes();
        let io_err = |message: String| SnapError::Io {
            path: path.display().to_string(),
            message,
        };
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err(e.to_string()))?;
            file.write_all(&bytes).map_err(|e| io_err(e.to_string()))?;
            file.sync_all().map_err(|e| io_err(e.to_string()))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err(e.to_string()))?;
        Ok(bytes.len() as u64)
    }
}

/// Parses and validates a snapshot, exposing its sections for typed
/// decoding.
///
/// Validation order (each failure is a distinct [`SnapError`] so the
/// fallback counter can attribute it): header length → magic → version →
/// payload length → checksum → section directory. The build fingerprint
/// is *not* checked here — call [`SnapshotReader::expect_fingerprint`]
/// with the running engine's value.
#[derive(Debug)]
pub struct SnapshotReader {
    version: u32,
    fingerprint: u64,
    /// `(name, start, end)` into `payload`.
    index: Vec<(String, usize, usize)>,
    payload: Vec<u8>,
}

impl SnapshotReader {
    /// Parses `bytes` as a snapshot file.
    ///
    /// # Errors
    ///
    /// Any of [`SnapError::Truncated`], [`SnapError::BadMagic`],
    /// [`SnapError::UnsupportedVersion`], [`SnapError::TrailingBytes`],
    /// [`SnapError::ChecksumMismatch`], or [`SnapError::Malformed`] for
    /// a corrupt section directory.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotReader, SnapError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapError::Truncated {
                needed: HEADER_LEN,
                remaining: bytes.len(),
            });
        }
        let mut header = Deserializer::new(&bytes[..HEADER_LEN]);
        let magic: [u8; 8] = header
            .read_exact(8)?
            .try_into()
            .expect("read_exact returned 8 bytes");
        if magic != MAGIC {
            return Err(SnapError::BadMagic { found: magic });
        }
        let version = header.read_u32()?;
        if version > FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let section_count = header.read_u32()?;
        let fingerprint = header.read_u64()?;
        let payload_len =
            usize::try_from(header.read_u64()?).map_err(|_| SnapError::Malformed {
                what: "payload length exceeds the address space".into(),
            })?;
        let checksum = header.read_u64()?;

        let actual = bytes.len() - HEADER_LEN;
        if actual < payload_len {
            return Err(SnapError::Truncated {
                needed: payload_len,
                remaining: actual,
            });
        }
        if actual > payload_len {
            return Err(SnapError::TrailingBytes {
                count: actual - payload_len,
            });
        }
        let payload = &bytes[HEADER_LEN..];
        let found = fnv1a64(payload);
        if found != checksum {
            return Err(SnapError::ChecksumMismatch {
                expected: checksum,
                found,
            });
        }

        let mut dir = Deserializer::new(payload);
        let mut index = Vec::with_capacity(section_count as usize);
        for _ in 0..section_count {
            let name_len = dir.read_u32()? as usize;
            let name = std::str::from_utf8(dir.read_exact(name_len)?)
                .map_err(|_| SnapError::Malformed {
                    what: "section name is not valid UTF-8".into(),
                })?
                .to_string();
            let body_len = usize::try_from(dir.read_u64()?).map_err(|_| SnapError::Malformed {
                what: format!("section `{name}` length exceeds the address space"),
            })?;
            let start = payload.len() - dir.remaining();
            dir.read_exact(body_len)?;
            index.push((name, start, start + body_len));
        }
        dir.finish()?;

        Ok(SnapshotReader {
            version,
            fingerprint,
            index,
            payload: payload.to_vec(),
        })
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on filesystem failures, else any
    /// [`SnapshotReader::from_bytes`] error.
    pub fn read_file(path: &Path) -> Result<SnapshotReader, SnapError> {
        let bytes = fs::read(path).map_err(|e| SnapError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        SnapshotReader::from_bytes(&bytes)
    }

    /// Format version stamped in the file.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Build fingerprint stamped in the file.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total payload size in bytes (excluding the header).
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.index.iter().map(|(name, _, _)| name.as_str())
    }

    /// Whether a section is present.
    #[must_use]
    pub fn has_section(&self, name: &str) -> bool {
        self.index.iter().any(|(n, _, _)| n == name)
    }

    /// Validates the stamped fingerprint against the running engine's.
    ///
    /// # Errors
    ///
    /// [`SnapError::FingerprintMismatch`] when they differ — the file was
    /// written by a different engine configuration and must be rebuilt.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<(), SnapError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(SnapError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// Decodes a section as a `T`, requiring the section body be fully
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::MissingSection`] when absent, else the value's
    /// decode error.
    pub fn section<T: Deserialize>(&self, name: &str) -> Result<T, SnapError> {
        let (_, start, end) = self
            .index
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| SnapError::MissingSection {
                name: name.to_string(),
            })?;
        let mut input = Deserializer::new(&self.payload[*start..*end]);
        let value = T::deserialize(&mut input)?;
        input.finish()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_exactly_as_documented() {
        let mut w = SnapshotWriter::new(0x1122_3344_5566_7788);
        w.section("a", &1u8);
        let bytes = w.to_bytes();
        assert_eq!(&bytes[0..8], b"SVTSNAP\0");
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes(), "version");
        assert_eq!(&bytes[12..16], &1u32.to_le_bytes(), "section count");
        assert_eq!(
            &bytes[16..24],
            &0x1122_3344_5566_7788u64.to_le_bytes(),
            "fingerprint"
        );
        let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        assert_eq!(payload_len as usize, bytes.len() - HEADER_LEN);
        let checksum = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        assert_eq!(checksum, fnv1a64(&bytes[HEADER_LEN..]));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = SnapshotWriter::new(7).to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN);
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.fingerprint(), 7);
        assert_eq!(r.section_names().count(), 0);
        assert!(matches!(
            r.section::<u8>("absent"),
            Err(SnapError::MissingSection { name }) if name == "absent"
        ));
    }

    #[test]
    fn sections_are_independent_and_ordered() {
        let mut w = SnapshotWriter::new(0);
        w.section("first", &vec![1u64, 2, 3]);
        w.section("second", &String::from("hello"));
        assert_eq!(w.section_count(), 2);
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        let names: Vec<&str> = r.section_names().collect();
        assert_eq!(names, ["first", "second"]);
        assert_eq!(r.section::<Vec<u64>>("first").unwrap(), [1, 2, 3]);
        assert_eq!(r.section::<String>("second").unwrap(), "hello");
        assert!(r.has_section("first") && !r.has_section("third"));
        // Reading a section with the wrong type fails cleanly (here: the
        // string's bytes don't fill a whole number of u64 words).
        assert!(r.section::<Vec<u64>>("second").is_err());
    }
}
