//! Versioned binary snapshots for the svt pipeline.
//!
//! The warm-path speedups of the expansion and FEM caches exist only
//! within one process; this crate is the persistence layer that carries
//! them across process boundaries. It is deliberately `std`-only and
//! knows nothing about the domain types it transports — the domain
//! crates implement [`Serialize`]/[`Deserialize`] for their own types
//! and `svt-core` assembles them into a [`SnapshotWriter`] container.
//!
//! Three layers, documented byte-for-byte in `docs/SNAPSHOT_FORMAT.md`:
//!
//! * [`Serializer`] / [`Deserializer`] — a byte-oriented little-endian
//!   encoder/decoder pair. Floats round-trip **bit-exactly** (stored as
//!   [`f64::to_bits`], never formatted), the same guarantee the `/eco`
//!   JSON float path makes textually.
//! * [`Serialize`] / [`Deserialize`] — the trait pair implemented by
//!   every snapshotted type, with blanket impls for primitives, tuples,
//!   arrays, `String`, `Option`, `Vec`, and `BTreeMap`.
//! * [`SnapshotWriter`] / [`SnapshotReader`] — the versioned file
//!   container: magic, format version, build fingerprint, checksummed
//!   named sections. Every malformation maps to a typed [`SnapError`],
//!   so a caller can always fall back to a cold rebuild — corruption is
//!   a recoverable condition, never a crash.
//!
//! # Examples
//!
//! Round-trip a small struct through the trait pair:
//!
//! ```
//! use svt_snap::{Deserialize, Deserializer, Serialize, Serializer, SnapError};
//!
//! #[derive(Debug, PartialEq)]
//! struct Sample {
//!     name: String,
//!     values: Vec<f64>,
//! }
//!
//! impl Serialize for Sample {
//!     fn serialize(&self, out: &mut Serializer) {
//!         self.name.serialize(out);
//!         self.values.serialize(out);
//!     }
//! }
//!
//! impl Deserialize for Sample {
//!     fn deserialize(input: &mut Deserializer<'_>) -> Result<Sample, SnapError> {
//!         Ok(Sample {
//!             name: String::deserialize(input)?,
//!             values: Vec::deserialize(input)?,
//!         })
//!     }
//! }
//!
//! let sample = Sample { name: "c432".into(), values: vec![0.1, -0.0, f64::MIN_POSITIVE] };
//! let bytes = svt_snap::to_bytes(&sample);
//! let back: Sample = svt_snap::from_bytes(&bytes)?;
//! assert_eq!(back, sample);
//! // f64 round-trips are bit-exact, including -0.0 and subnormals.
//! assert_eq!(back.values[1].to_bits(), (-0.0f64).to_bits());
//! # Ok::<(), SnapError>(())
//! ```

mod container;
mod de;
mod error;
mod ser;

pub use container::{fnv1a64, SnapshotReader, SnapshotWriter, FORMAT_VERSION, HEADER_LEN, MAGIC};
pub use de::{from_bytes, Deserialize, Deserializer};
pub use error::SnapError;
pub use ser::{to_bytes, Serialize, Serializer};
