//! Corruption-robustness suite of the snapshot container: every way a
//! file can be damaged must map to a *typed* error (never a panic, never
//! a wrong value), because the restore path turns each error into a
//! logged cold-rebuild fallback.

use svt_snap::{
    from_bytes, to_bytes, SnapError, SnapshotReader, SnapshotWriter, FORMAT_VERSION, HEADER_LEN,
};

fn sample_snapshot() -> Vec<u8> {
    let mut w = SnapshotWriter::new(0xdead_beef_cafe_f00d);
    w.section(
        "floats",
        &vec![1.5f64, -0.0, f64::INFINITY, f64::MIN_POSITIVE],
    );
    w.section(
        "names",
        &vec![String::from("INVX1"), String::from("NAND2X1")],
    );
    w.to_bytes()
}

#[test]
fn pristine_file_parses_and_round_trips_bit_exactly() {
    let r = SnapshotReader::from_bytes(&sample_snapshot()).unwrap();
    r.expect_fingerprint(0xdead_beef_cafe_f00d).unwrap();
    let floats: Vec<f64> = r.section("floats").unwrap();
    assert_eq!(floats[0].to_bits(), 1.5f64.to_bits());
    assert_eq!(floats[1].to_bits(), (-0.0f64).to_bits());
    assert_eq!(floats[2].to_bits(), f64::INFINITY.to_bits());
    assert_eq!(floats[3].to_bits(), f64::MIN_POSITIVE.to_bits());
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = sample_snapshot();
    // Every strict prefix must fail with Truncated (short header or short
    // payload) — never panic, never parse.
    for cut in 0..bytes.len() {
        let err = SnapshotReader::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapError::Truncated { .. }),
            "prefix of {cut} bytes gave {err:?}"
        );
        assert_eq!(err.reason(), "truncated");
    }
}

#[test]
fn every_flipped_payload_byte_is_caught_by_the_checksum() {
    let bytes = sample_snapshot();
    for i in HEADER_LEN..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        let err = SnapshotReader::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(err, SnapError::ChecksumMismatch { .. }),
            "flipped payload byte {i} gave {err:?}"
        );
        assert_eq!(err.reason(), "checksum");
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = sample_snapshot();
    bytes[0] = b'X';
    let err = SnapshotReader::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapError::BadMagic { .. }));
    assert_eq!(err.reason(), "bad_magic");
    // A JSON file (the classic misconfiguration) is also BadMagic.
    let err = SnapshotReader::from_bytes(
        b"{\"status\": \"serving\", \"designs\": [\"builtin\", \"c432\"]}",
    )
    .unwrap_err();
    assert!(matches!(err, SnapError::BadMagic { .. }));
}

#[test]
fn future_version_is_rejected_with_both_versions_reported() {
    let mut bytes = sample_snapshot();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = SnapshotReader::from_bytes(&bytes).unwrap_err();
    assert_eq!(
        err,
        SnapError::UnsupportedVersion {
            found: FORMAT_VERSION + 1,
            supported: FORMAT_VERSION
        }
    );
    assert_eq!(err.reason(), "version");
}

#[test]
fn stale_fingerprint_is_rejected_only_by_the_explicit_gate() {
    let r = SnapshotReader::from_bytes(&sample_snapshot()).unwrap();
    // Parsing succeeds — the fingerprint gate is the caller's policy.
    let err = r.expect_fingerprint(0x1234).unwrap_err();
    assert_eq!(
        err,
        SnapError::FingerprintMismatch {
            expected: 0x1234,
            found: 0xdead_beef_cafe_f00d
        }
    );
    assert_eq!(err.reason(), "fingerprint");
}

#[test]
fn appended_garbage_is_rejected() {
    let mut bytes = sample_snapshot();
    bytes.extend_from_slice(b"garbage");
    let err = SnapshotReader::from_bytes(&bytes).unwrap_err();
    assert_eq!(err, SnapError::TrailingBytes { count: 7 });
    assert_eq!(err.reason(), "trailing_bytes");
}

#[test]
fn primitive_round_trips_are_bit_exact() {
    // Integer extremes.
    for v in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
        assert_eq!(from_bytes::<u64>(&to_bytes(&v)).unwrap(), v);
    }
    for v in [i64::MIN, -1, 0, i64::MAX] {
        assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
    }
    // Float bit patterns, including NaN payloads the value-equality
    // world cannot even compare.
    for bits in [
        0u64,
        (-0.0f64).to_bits(),
        f64::NAN.to_bits(),
        0x7ff8_0000_0000_0001, // NaN with a payload
        f64::MIN_POSITIVE.to_bits(),
        1u64, // smallest subnormal
        f64::MAX.to_bits(),
        f64::NEG_INFINITY.to_bits(),
    ] {
        let v = f64::from_bits(bits);
        let back = from_bytes::<f64>(&to_bytes(&v)).unwrap();
        assert_eq!(back.to_bits(), bits, "bits {bits:#x}");
    }
    // Containers.
    let nested: Vec<Option<(String, [u64; 3])>> = vec![
        None,
        Some(("ctx0121".into(), [1, 2, 3])),
        Some((String::new(), [0, 0, 0])),
    ];
    assert_eq!(
        from_bytes::<Vec<Option<(String, [u64; 3])>>>(&to_bytes(&nested)).unwrap(),
        nested
    );
    let map: std::collections::BTreeMap<String, Vec<f64>> =
        [("a".to_string(), vec![1.0, 2.0]), ("b".to_string(), vec![])]
            .into_iter()
            .collect();
    assert_eq!(
        from_bytes::<std::collections::BTreeMap<String, Vec<f64>>>(&to_bytes(&map)).unwrap(),
        map
    );
}

#[test]
fn corrupted_lengths_cannot_drive_huge_allocations() {
    // A Vec claiming u64::MAX elements must fail fast on the length
    // sanity bound, not attempt a with_capacity explosion.
    let mut bytes = u64::MAX.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0; 16]);
    let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
    assert!(matches!(
        err,
        SnapError::Truncated { .. } | SnapError::Malformed { .. }
    ));
}

#[test]
fn bad_tags_are_malformed() {
    assert!(matches!(
        from_bytes::<bool>(&[2]).unwrap_err(),
        SnapError::Malformed { .. }
    ));
    assert!(matches!(
        from_bytes::<Option<u8>>(&[7, 0]).unwrap_err(),
        SnapError::Malformed { .. }
    ));
    // Invalid UTF-8 in a string.
    let mut bytes = 2u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0xff, 0xfe]);
    assert!(matches!(
        from_bytes::<String>(&bytes).unwrap_err(),
        SnapError::Malformed { .. }
    ));
}

#[test]
fn file_round_trip_is_atomic_and_sized() {
    let dir = std::env::temp_dir().join(format!("svt_snap_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stack.svtsnap");
    let mut w = SnapshotWriter::new(42);
    w.section("payload", &vec![1u64; 1000]);
    let size = w.write_file(&path).unwrap();
    assert_eq!(size, std::fs::metadata(&path).unwrap().len());
    let r = SnapshotReader::read_file(&path).unwrap();
    assert_eq!(r.section::<Vec<u64>>("payload").unwrap(), vec![1u64; 1000]);
    // No .tmp residue after the atomic rename.
    assert!(!path.with_extension("tmp").exists());
    let err = SnapshotReader::read_file(&dir.join("absent.svtsnap")).unwrap_err();
    assert_eq!(err.reason(), "io");
    std::fs::remove_dir_all(&dir).ok();
}
