//! Differential test of the full Table-2 flow across execution
//! configurations.
//!
//! The pipeline's core contract: worker-thread count and trace mode are
//! *observability/performance* knobs, never *result* knobs. This test runs
//! the complete expand → map → place → sign-off flow under every
//! `SVT_THREADS` ∈ {1, 2, 8} × `SVT_TRACE` ∈ {off, summary, chrome}
//! combination, from a cold cache each time, and asserts that
//!
//! * every corner delay is bit-identical (`f64::to_bits`),
//! * every memo cache ends with the identical entry count,
//! * the sign-off audit trail renders to *byte-identical* text and JSON
//!   reports under every configuration, and
//! * the audit reconciles bit-for-bit with the sign-off comparison: the
//!   per-path corner arrivals max-reduce to exactly the circuit corner
//!   delays, and the audit's spread-reduction percentage equals the
//!   comparison's uncertainty reduction.
//!
//! The final (chrome-mode) iteration additionally emits the Chrome trace
//! and the audit reports to `target/artifacts/` so CI can upload them, and
//! schema-validates the trace (balanced begin/end per tid, monotonic
//! timestamps, one tid per pool worker).
//!
//! All environment mutation lives in this single `#[test]` because sibling
//! tests in one binary share the process environment.

use svt_core::{SignoffComparison, SignoffFlow, SignoffOptions};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_obs::audit::AuditTrail;
use svt_obs::chrome::validate_chrome_trace;
use svt_place::{place, PlacementOptions};
use svt_stdcell::{
    clear_expand_caches, expand_cache_stats, expand_library, ExpandOptions, Library,
};

/// Directory the chrome trace and audit reports land in for CI upload.
const ARTIFACT_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/artifacts");

/// The result fingerprint of one configuration: corner-delay bit patterns,
/// final memo-cache entry counts, and the rendered audit reports (byte
/// equality — the audit must not depend on scheduling).
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    corner_bits: [u64; 6],
    cd_entries: usize,
    transfer_entries: usize,
    pair_entries: usize,
    row_entries: usize,
    audit_text: String,
    audit_json: String,
}

fn run_flow_cold() -> (Fingerprint, SignoffComparison, AuditTrail) {
    // Cold start: every memo cache is emptied so each configuration does
    // the same work and must converge to the same final cache shape.
    svt_litho::clear_litho_caches();
    clear_expand_caches();

    let lib = Library::svt90();
    let sim = svt_litho::Process::nm90().simulator();
    let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).expect("expansion");
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &lib).expect("techmap");
    let placement = place(&mapped, &lib, &PlacementOptions::default()).expect("place");
    let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
    let (cmp, trail) = flow.run_audited(&mapped, &placement).expect("signoff");

    let rendered = svt_obs::audit::render_audit(&trail);
    let (pairs, rows) = expand_cache_stats();
    let fp = Fingerprint {
        corner_bits: [
            cmp.traditional.bc_ns.to_bits(),
            cmp.traditional.nom_ns.to_bits(),
            cmp.traditional.wc_ns.to_bits(),
            cmp.aware.bc_ns.to_bits(),
            cmp.aware.nom_ns.to_bits(),
            cmp.aware.wc_ns.to_bits(),
        ],
        cd_entries: svt_litho::cd_cache_stats().entries,
        transfer_entries: svt_litho::transfer_cache_stats().entries,
        pair_entries: pairs.entries,
        row_entries: rows.entries,
        audit_text: rendered.text,
        audit_json: rendered.json,
    };
    (fp, cmp, trail)
}

/// Max-reduction of one per-path corner column, replicating the circuit
/// delay fold (`fold(0.0, f64::max)` over arrival times).
fn path_max(trail: &AuditTrail, pick: impl Fn(&svt_obs::audit::PathAudit) -> f64) -> f64 {
    trail.paths.iter().map(pick).fold(0.0, f64::max)
}

/// The audit trail must explain the comparison *exactly*: same corner
/// delays bit-for-bit, per-path arrivals that max-reduce to them, and the
/// identical headline reduction percentage.
fn assert_audit_reconciles(cmp: &SignoffComparison, trail: &AuditTrail, label: &str) {
    let pairs = [
        ("traditional-bc", cmp.traditional.bc_ns),
        ("traditional-nom", cmp.traditional.nom_ns),
        ("traditional-wc", cmp.traditional.wc_ns),
        ("aware-bc", cmp.aware.bc_ns),
        ("aware-nom", cmp.aware.nom_ns),
        ("aware-wc", cmp.aware.wc_ns),
    ];
    for (corner, expected) in pairs {
        assert_eq!(
            trail.corner_delay(corner).to_bits(),
            expected.to_bits(),
            "{label}: audit corner `{corner}` must copy the sign-off value"
        );
    }

    assert!(!trail.paths.is_empty(), "{label}: audit lists timing paths");
    // Per-path derating commutes with the max-reduction (positive scale
    // factors preserve the argmax), so the path columns must reproduce the
    // circuit corner delays bit-for-bit — not approximately.
    type Pick = fn(&svt_obs::audit::PathAudit) -> f64;
    let columns: [(&str, f64, Pick); 4] = [
        ("traditional-bc", cmp.traditional.bc_ns, |p| p.trad_bc_ns),
        ("traditional-wc", cmp.traditional.wc_ns, |p| p.trad_wc_ns),
        ("aware-bc", cmp.aware.bc_ns, |p| p.aware_bc_ns),
        ("aware-wc", cmp.aware.wc_ns, |p| p.aware_wc_ns),
    ];
    for (corner, expected, pick) in columns {
        assert_eq!(
            path_max(trail, pick).to_bits(),
            expected.to_bits(),
            "{label}: per-path arrivals must max-reduce to the `{corner}` circuit delay"
        );
    }
    assert_eq!(
        trail.spread_reduction_pct().to_bits(),
        cmp.uncertainty_reduction_pct().to_bits(),
        "{label}: audit reduction % must equal the Table-2 headline number"
    );
    assert!(
        trail.circuit_spread_after_ns() < trail.circuit_spread_before_ns(),
        "{label}: variation-aware sign-off must shrink the corner spread"
    );

    assert!(
        !trail.instances.is_empty(),
        "{label}: audit explains per-instance trim decisions"
    );
    for inst in &trail.instances {
        assert!(
            ["smile", "frown", "self-compensated"].contains(&trail_label(inst)),
            "{label}: unknown arc label `{}` on {}",
            inst.trim.arc_label,
            inst.instance
        );
        assert!(
            inst.trim.bc_before_nm.is_finite() && inst.trim.wc_after_nm.is_finite(),
            "{label}: trim record of {} must be numeric",
            inst.instance
        );
    }
}

fn trail_label(inst: &svt_obs::audit::InstanceAudit) -> &str {
    inst.trim.arc_label.as_str()
}

#[test]
fn thread_count_and_trace_mode_never_change_results() {
    let restore_threads = std::env::var("SVT_THREADS").ok();
    let restore_trace = std::env::var("SVT_TRACE").ok();
    std::fs::create_dir_all(ARTIFACT_DIR).expect("artifact dir");
    let trace_path = format!("{ARTIFACT_DIR}/differential_trace.json");
    let chrome = format!("chrome:{trace_path}");

    let mut baseline: Option<(String, Fingerprint)> = None;
    let mut last: Option<(SignoffComparison, AuditTrail)> = None;
    for threads in ["1", "2", "8"] {
        for trace in ["off", "summary", chrome.as_str()] {
            std::env::set_var("SVT_THREADS", threads);
            std::env::set_var("SVT_TRACE", trace);
            svt_obs::reinit_from_env();

            let label = format!("SVT_THREADS={threads} SVT_TRACE={trace}");
            let (fp, cmp, trail) = run_flow_cold();
            // The sign-off flow exercises the pitch-pair, OPC-row, and
            // transfer-table caches (the CD memo serves only the
            // line-array/isolated paths, which this flow does not hit —
            // its count still participates in the equality check below).
            assert!(
                fp.pair_entries > 0 && fp.row_entries > 0 && fp.transfer_entries > 0,
                "{label}: the flow must have exercised the memo caches ({fp:?})"
            );
            assert_audit_reconciles(&cmp, &trail, &label);
            match &baseline {
                None => baseline = Some((label, fp)),
                Some((base_label, base)) => {
                    assert_eq!(
                        base, &fp,
                        "{label} diverged from baseline {base_label}: \
                         corner bits, cache entry counts, and audit report \
                         bytes must be invariant"
                    );
                }
            }
            last = Some((cmp, trail));
        }
    }

    // With tracing active the whole run was recorded: the summary must
    // show the sign-off spans and the pipeline caches.
    let summary = svt_obs::registry().snapshot().render_summary();
    for needle in [
        "core.signoff",
        "core.signoff.audit",
        "stdcell.expand",
        "litho.cd",
        "stdcell.pitch_pairs",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing `{needle}`:\n{summary}"
        );
    }

    // The final iteration ran in chrome mode with 8 workers: emit the
    // trace, schema-validate it, and check every pool worker shows up.
    assert_eq!(svt_obs::mode(), svt_obs::TraceMode::Chrome);
    svt_obs::emit_if_enabled().expect("chrome emission");
    let trace = std::fs::read_to_string(&trace_path).expect("trace artifact");
    let stats = validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("differential trace failed validation: {e}"));
    assert!(
        stats.tids_with_event("exec.pool.task") >= 8,
        "expected ≥8 worker tids with pool task events, got {:?}",
        stats.tids
    );
    assert!(
        stats.tids_with_event("core.signoff") >= 1,
        "sign-off span missing from the trace"
    );

    // Publish the audit reports next to the trace for CI artifact upload.
    let (_, trail) = last.expect("at least one configuration ran");
    let rendered = svt_obs::audit::render_audit(&trail);
    std::fs::write(format!("{ARTIFACT_DIR}/audit_c432.txt"), &rendered.text)
        .expect("audit text artifact");
    std::fs::write(format!("{ARTIFACT_DIR}/audit_c432.json"), &rendered.json)
        .expect("audit json artifact");

    match restore_threads {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
    match restore_trace {
        Some(v) => std::env::set_var("SVT_TRACE", v),
        None => std::env::remove_var("SVT_TRACE"),
    }
    svt_obs::reinit_from_env();
}
