//! Differential test of the full Table-2 flow across execution
//! configurations.
//!
//! The pipeline's core contract: worker-thread count and trace mode are
//! *observability/performance* knobs, never *result* knobs. This test runs
//! the complete expand → map → place → sign-off flow under every
//! `SVT_THREADS` ∈ {1, 2, 8} × `SVT_TRACE` ∈ {off, summary} combination,
//! from a cold cache each time, and asserts that
//!
//! * every corner delay is bit-identical (`f64::to_bits`), and
//! * every memo cache ends with the identical entry count.
//!
//! All environment mutation lives in this single `#[test]` because sibling
//! tests in one binary share the process environment.

use svt_core::{SignoffFlow, SignoffOptions};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{
    clear_expand_caches, expand_cache_stats, expand_library, ExpandOptions, Library,
};

/// The result fingerprint of one configuration: corner-delay bit patterns
/// and final memo-cache entry counts.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    corner_bits: [u64; 6],
    cd_entries: usize,
    transfer_entries: usize,
    pair_entries: usize,
    row_entries: usize,
}

fn run_flow_cold() -> Fingerprint {
    // Cold start: every memo cache is emptied so each configuration does
    // the same work and must converge to the same final cache shape.
    svt_litho::clear_litho_caches();
    clear_expand_caches();

    let lib = Library::svt90();
    let sim = svt_litho::Process::nm90().simulator();
    let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).expect("expansion");
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &lib).expect("techmap");
    let placement = place(&mapped, &lib, &PlacementOptions::default()).expect("place");
    let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
    let cmp = flow.run(&mapped, &placement).expect("signoff");

    let (pairs, rows) = expand_cache_stats();
    Fingerprint {
        corner_bits: [
            cmp.traditional.bc_ns.to_bits(),
            cmp.traditional.nom_ns.to_bits(),
            cmp.traditional.wc_ns.to_bits(),
            cmp.aware.bc_ns.to_bits(),
            cmp.aware.nom_ns.to_bits(),
            cmp.aware.wc_ns.to_bits(),
        ],
        cd_entries: svt_litho::cd_cache_stats().entries,
        transfer_entries: svt_litho::transfer_cache_stats().entries,
        pair_entries: pairs.entries,
        row_entries: rows.entries,
    }
}

#[test]
fn thread_count_and_trace_mode_never_change_results() {
    let restore_threads = std::env::var("SVT_THREADS").ok();
    let restore_trace = std::env::var("SVT_TRACE").ok();

    let mut baseline: Option<(String, Fingerprint)> = None;
    for threads in ["1", "2", "8"] {
        for trace in ["off", "summary"] {
            std::env::set_var("SVT_THREADS", threads);
            std::env::set_var("SVT_TRACE", trace);
            svt_obs::reinit_from_env();

            let label = format!("SVT_THREADS={threads} SVT_TRACE={trace}");
            let fp = run_flow_cold();
            // The sign-off flow exercises the pitch-pair, OPC-row, and
            // transfer-table caches (the CD memo serves only the
            // line-array/isolated paths, which this flow does not hit —
            // its count still participates in the equality check below).
            assert!(
                fp.pair_entries > 0 && fp.row_entries > 0 && fp.transfer_entries > 0,
                "{label}: the flow must have exercised the memo caches ({fp:?})"
            );
            match &baseline {
                None => baseline = Some((label, fp)),
                Some((base_label, base)) => {
                    assert_eq!(
                        base, &fp,
                        "{label} diverged from baseline {base_label}: \
                         corner bits and cache entry counts must be invariant"
                    );
                }
            }
        }
    }

    // With tracing active the whole run was recorded: the summary must
    // show the sign-off spans and the pipeline caches.
    let summary = svt_obs::registry().snapshot().render_summary();
    for needle in [
        "core.signoff",
        "stdcell.expand",
        "litho.cd",
        "stdcell.pitch_pairs",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing `{needle}`:\n{summary}"
        );
    }

    match restore_threads {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
    match restore_trace {
        Some(v) => std::env::set_var("SVT_TRACE", v),
        None => std::env::remove_var("SVT_TRACE"),
    }
    svt_obs::reinit_from_env();
}
