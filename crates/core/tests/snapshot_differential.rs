//! Differential proof that warm-start snapshots never change results.
//!
//! The persistence layer's core contract (see `docs/SNAPSHOT_FORMAT.md`):
//! a restored stack may only *skip* recomputation, never alter it. This
//! test builds the full c432 sign-off cold, captures the stack into an
//! `svt-snap` container, restores it into cleared caches, re-runs the
//! sign-off, and asserts
//!
//! * every corner delay matches the cold run bit-for-bit
//!   (`f64::to_bits`),
//! * the audit trail renders to byte-identical text and JSON,
//! * the container bytes themselves are identical across worker-thread
//!   counts (serialization is canonical: key-sorted caches, no map
//!   iteration order leaks), and
//! * the whole scenario holds for `SVT_THREADS` ∈ {1, default} — a
//!   snapshot written by a 1-thread build must restore bit-exactly into
//!   a default-thread server and vice versa.
//!
//! All environment mutation lives in this single `#[test]` because
//! sibling tests in one binary share the process environment.

use svt_core::snapshot::{stack_fingerprint, PipelineSnapshot};
use svt_core::{SignoffComparison, SignoffFlow, SignoffOptions};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile, MappedNetlist};
use svt_place::{place, Placement, PlacementOptions};
use svt_stdcell::{clear_expand_caches, expand_library, ExpandOptions, Library};

/// Corner bits plus rendered audit reports: byte equality here is the
/// "bit-identical sign-off" claim.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    corner_bits: [u64; 6],
    audit_text: String,
    audit_json: String,
}

fn fingerprint_of(cmp: &SignoffComparison, trail: &svt_obs::audit::AuditTrail) -> Fingerprint {
    let rendered = svt_obs::audit::render_audit(trail);
    Fingerprint {
        corner_bits: [
            cmp.traditional.bc_ns.to_bits(),
            cmp.traditional.nom_ns.to_bits(),
            cmp.traditional.wc_ns.to_bits(),
            cmp.aware.bc_ns.to_bits(),
            cmp.aware.nom_ns.to_bits(),
            cmp.aware.wc_ns.to_bits(),
        ],
        audit_text: rendered.text,
        audit_json: rendered.json,
    }
}

fn build_design(library: &Library) -> (MappedNetlist, Placement) {
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, library).expect("techmap");
    let placement = place(&mapped, library, &PlacementOptions::default()).expect("place");
    (mapped, placement)
}

#[test]
fn restored_signoff_is_bit_identical_across_thread_counts() {
    let restore_threads = std::env::var("SVT_THREADS").ok();
    let library = Library::svt90();
    let sim = svt_litho::Process::nm90().simulator();
    let options = ExpandOptions::fast();
    let fp = stack_fingerprint(&sim, &library, &options);
    let (mapped, placement) = build_design(&library);

    let mut baseline: Option<(String, Fingerprint, Vec<u8>)> = None;
    for threads in [Some("1"), None] {
        match threads {
            Some(v) => std::env::set_var("SVT_THREADS", v),
            None => std::env::remove_var("SVT_THREADS"),
        }
        let label = format!("SVT_THREADS={}", threads.unwrap_or("default"));

        // Cold build: cleared caches, fresh expansion, full sign-off.
        svt_litho::clear_litho_caches();
        clear_expand_caches();
        let expanded = expand_library(&library, &sim, &options).expect("expansion");
        let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
        let (cold_cmp, cold_trail) = flow.run_audited(&mapped, &placement).expect("cold signoff");
        let cold_fp = fingerprint_of(&cold_cmp, &cold_trail);

        // Capture, then restore into a process whose caches are empty
        // again — the snapshot alone must reconstitute the stack.
        let bytes = PipelineSnapshot::capture(&expanded, None, Some(&flow)).to_bytes(fp);
        drop(flow);
        clear_expand_caches();
        let restored = PipelineSnapshot::from_bytes(&bytes, fp).expect("restore");
        assert!(
            restored.preload_expand_caches() > 0,
            "{label}: no expand entries"
        );
        let warm_flow = SignoffFlow::new(&library, &restored.expanded, SignoffOptions::default());
        assert!(
            restored.preload_flow(&warm_flow) > 0,
            "{label}: no flow entries"
        );
        let (warm_cmp, warm_trail) = warm_flow
            .run_audited(&mapped, &placement)
            .expect("restored signoff");
        let warm_fp = fingerprint_of(&warm_cmp, &warm_trail);

        assert_eq!(
            cold_fp, warm_fp,
            "{label}: restored sign-off diverged from the cold rebuild"
        );

        // Cross-thread invariance: both the results AND the container
        // bytes must match the other configuration exactly.
        match &baseline {
            None => baseline = Some((label, cold_fp, bytes)),
            Some((base_label, base_fp, base_bytes)) => {
                assert_eq!(
                    base_fp, &cold_fp,
                    "{label} results diverged from {base_label}"
                );
                assert_eq!(
                    base_bytes, &bytes,
                    "{label} snapshot bytes diverged from {base_label}: \
                     serialization must be canonical"
                );
            }
        }
    }

    match restore_threads {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
}
