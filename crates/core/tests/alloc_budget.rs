//! Regression gate of the sign-off hot path's allocation budget.
//!
//! A warm sign-off (second `run()` on the same [`SignoffFlow`]) must stay
//! allocation-free to first order: every characterization is memoized,
//! the interned topology is verified rather than rebuilt, and the
//! analysis working set comes from pooled bump arenas. The seed measured
//! ~153k allocations / 9.7 MB per c432 sign-off; the arena/SoA refactor
//! targets < 10k, asserted here so `cargo test` catches a regression
//! without running the benches (`bench_compare.sh` gates the same number
//! across history).
//!
//! The test binary installs its own counting global allocator — the
//! `alloc-telemetry` hook is compiled in by default and costs one relaxed
//! load while inactive, so the cold run is unaffected.

use svt_core::{SignoffFlow, SignoffOptions};
use svt_litho::Process;
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{expand_library, ExpandOptions, Library};

#[global_allocator]
static ALLOC: svt_obs::alloc::CountingAlloc = svt_obs::alloc::CountingAlloc::system();

/// The ISSUE's hot-path ceiling for one warm c432 sign-off.
const WARM_SIGNOFF_ALLOC_CEILING: u64 = 10_000;

#[test]
fn warm_c432_signoff_stays_under_the_allocation_ceiling() {
    let lib = Library::svt90();
    let sim = Process::nm90().simulator();
    let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).unwrap();
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
    let mapped = technology_map(&netlist, &lib).unwrap();
    let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
    let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());

    // Cold run fills the flow's memoized state: characterized variants,
    // the interned topology, the scratch arenas.
    let cold = flow.run(&mapped, &placement).unwrap();

    svt_obs::alloc::reset();
    svt_obs::alloc::set_active(true);
    let warm = flow.run(&mapped, &placement).unwrap();
    svt_obs::alloc::set_active(false);
    let (count, bytes) = svt_obs::alloc::totals();

    // Warm must also be bit-identical to cold — the caches trade
    // allocations, never results.
    assert_eq!(cold, warm);
    assert!(
        count < WARM_SIGNOFF_ALLOC_CEILING,
        "warm c432 sign-off made {count} allocations ({bytes} bytes); \
         the hot-path budget is {WARM_SIGNOFF_ALLOC_CEILING}"
    );
}
