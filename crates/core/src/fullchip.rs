use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use svt_litho::{LithoError, LithoSimulator};
use svt_netlist::MappedNetlist;
use svt_opc::{CutlinePattern, ModelOpc, OpcLine, OpcOptions};
use svt_place::{DeviceSite, Placement};
use svt_stdcell::{Library, Region};

use crate::flow::FlowError;

/// One device after full-chip OPC sign-off simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrintedDevice {
    /// The placed device.
    pub site: DeviceSite,
    /// Printed device CD from the sign-off simulator, or `None` if the
    /// gate failed to print (catastrophic — should not happen post-OPC).
    pub printed_cd_nm: Option<f64>,
}

/// The outcome of full-chip OPC on a placed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullChipResult {
    /// Design name.
    pub design: String,
    /// All devices with their sign-off printed CDs.
    pub devices: Vec<PrintedDevice>,
    /// Wall-clock OPC + audit runtime.
    pub runtime: Duration,
    /// Number of row cutlines whose OPC converged within tolerance.
    pub converged_rows: usize,
    /// Total row cutlines corrected.
    pub total_rows: usize,
}

impl FullChipResult {
    /// Signed percent CD error per printed device versus the drawn target
    /// — the population of paper Fig. 7.
    #[must_use]
    pub fn percent_errors(&self, drawn_cd_nm: f64) -> Vec<f64> {
        self.devices
            .iter()
            .filter_map(|d| d.printed_cd_nm)
            .map(|cd| 100.0 * (cd - drawn_cd_nm) / drawn_cd_nm)
            .collect()
    }
}

/// Full-chip model-based OPC: every placed row cutline is corrected in its
/// true context ("OPC can be performed on the layout and lithography
/// simulations … for each device", paper §3.1) — the accurate but expensive
/// flow that Table 1 compares library-based OPC against.
#[derive(Debug, Clone)]
pub struct FullChipOpc<'a> {
    signoff: &'a LithoSimulator,
    opc: ModelOpc,
    window_margin_nm: f64,
}

impl<'a> FullChipOpc<'a> {
    /// Creates the flow with a production (degraded-model) OPC engine
    /// derived from the sign-off simulator.
    #[must_use]
    pub fn new(signoff: &'a LithoSimulator, opc_options: OpcOptions) -> FullChipOpc<'a> {
        FullChipOpc {
            signoff,
            opc: ModelOpc::with_production_model(signoff, opc_options),
            window_margin_nm: 1600.0,
        }
    }

    /// The OPC engine in use.
    #[must_use]
    pub fn opc(&self) -> &ModelOpc {
        &self.opc
    }

    /// Corrects and audits every row cutline of the placement.
    ///
    /// # Errors
    ///
    /// Propagates OPC and placement-query failures; see [`FlowError`].
    pub fn run(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
        library: &Library,
    ) -> Result<FullChipResult, FlowError> {
        let started = Instant::now();
        let sites = placement.device_sites(netlist, library)?;
        let mut devices = Vec::with_capacity(sites.len());
        let mut converged_rows = 0;
        let mut total_rows = 0;

        for row in placement.rows() {
            for region in [Region::P, Region::N] {
                // Sites of this cutline, left to right — the same order as
                // `row_poly_pattern`.
                let mut cut_sites: Vec<&DeviceSite> = sites
                    .iter()
                    .filter(|s| s.row == row.index && s.region == region)
                    .collect();
                if cut_sites.is_empty() {
                    continue;
                }
                cut_sites.sort_by(|a, b| a.span_abs.0.total_cmp(&b.span_abs.0));
                total_rows += 1;

                let x_lo = cut_sites[0].span_abs.0 - self.window_margin_nm;
                let x_hi = cut_sites[cut_sites.len() - 1].span_abs.1 + self.window_margin_nm;
                let mut pattern = CutlinePattern::new(x_lo, x_hi - x_lo);
                for s in &cut_sites {
                    let (lo, hi) = s.span_abs;
                    pattern.push(OpcLine::gate((lo + hi) / 2.0, hi - lo));
                }
                let report = self.opc.correct(&mut pattern)?;
                if report.converged {
                    converged_rows += 1;
                }

                // Sign-off audit of the corrected cutline.
                let chrome = pattern.chrome();
                let mask = svt_litho::MaskCutline::from_lines(
                    x_lo,
                    x_hi - x_lo,
                    self.signoff.config().grid_nm(),
                    &chrome,
                )
                .map_err(svt_opc::OpcError::from)?;
                let image = self.signoff.aerial_image(&mask, 0.0);
                for s in &cut_sites {
                    let center = (s.span_abs.0 + s.span_abs.1) / 2.0;
                    let printed =
                        svt_litho::measure_cd_at(&image, center, self.signoff.resist(), 1.0)
                            .and_then(|p| self.signoff.device_cd(p));
                    let printed_cd_nm = match printed {
                        Ok(cd) => Some(cd),
                        Err(LithoError::FeatureNotPrinted { .. }) => None,
                        Err(e) => return Err(svt_opc::OpcError::from(e).into()),
                    };
                    devices.push(PrintedDevice {
                        site: (*s).clone(),
                        printed_cd_nm,
                    });
                }
            }
        }

        Ok(FullChipResult {
            design: netlist.name().to_string(),
            devices,
            runtime: started.elapsed(),
            converged_rows,
            total_rows,
        })
    }
}

/// Library-based OPC at chip scale: each cell *master* is corrected once
/// in its dummy environment, the chip mask is assembled from the corrected
/// masters, and the assembled mask is audited with the sign-off simulator.
/// This is the fast flow of paper Table 1 — correction cost is per master,
/// not per instance.
#[derive(Debug, Clone)]
pub struct LibraryAssembledOpc<'a> {
    signoff: &'a LithoSimulator,
    library_opc: svt_opc::LibraryOpc,
    window_margin_nm: f64,
}

impl<'a> LibraryAssembledOpc<'a> {
    /// Creates the flow (production-model OPC, Fig. 3 dummy environment).
    #[must_use]
    pub fn new(signoff: &'a LithoSimulator, opc_options: OpcOptions) -> LibraryAssembledOpc<'a> {
        let opc = ModelOpc::with_production_model(signoff, opc_options);
        LibraryAssembledOpc {
            signoff,
            library_opc: svt_opc::LibraryOpc::new(opc, 150.0, 90.0),
            window_margin_nm: 1600.0,
        }
    }

    /// Corrects every master used by the netlist (the one-time library
    /// cost), returning the corrected mask widths per `(cell, region)` in
    /// row order, plus the wall-clock time spent.
    ///
    /// # Errors
    ///
    /// Propagates OPC failures.
    pub fn correct_masters(
        &self,
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<(MasterMasks, Duration), FlowError> {
        let started = Instant::now();
        let mut masks: MasterMasks = std::collections::BTreeMap::new();
        for inst in netlist.instances() {
            let Some(cell) = library.cell(&inst.cell) else {
                continue;
            };
            for region in [Region::P, Region::N] {
                let key = (cell.name().to_string(), region);
                if masks.contains_key(&key) {
                    continue;
                }
                let layout = cell.layout();
                let gates: Vec<(f64, f64)> = layout
                    .row_spans(region)
                    .iter()
                    .map(|&(_, (lo, hi))| ((lo + hi) / 2.0, hi - lo))
                    .collect();
                let corrected = self
                    .library_opc
                    .correct_cell(&gates, 0.0, layout.width_nm())?;
                masks.insert(key, corrected.gates.iter().map(|g| g.mask_width).collect());
            }
        }
        Ok((masks, started.elapsed()))
    }

    /// Assembles the chip mask from corrected masters and audits every
    /// device with the sign-off simulator.
    ///
    /// # Errors
    ///
    /// Propagates placement-query and simulation failures.
    pub fn run(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
        library: &Library,
        masks: &MasterMasks,
    ) -> Result<FullChipResult, FlowError> {
        let started = Instant::now();
        let sites = placement.device_sites(netlist, library)?;
        let mut devices = Vec::with_capacity(sites.len());
        let mut total_rows = 0;

        for row in placement.rows() {
            for region in [Region::P, Region::N] {
                let mut cut_sites: Vec<&DeviceSite> = sites
                    .iter()
                    .filter(|s| s.row == row.index && s.region == region)
                    .collect();
                if cut_sites.is_empty() {
                    continue;
                }
                cut_sites.sort_by(|a, b| a.span_abs.0.total_cmp(&b.span_abs.0));
                total_rows += 1;

                let x_lo = cut_sites[0].span_abs.0 - self.window_margin_nm;
                let x_hi = cut_sites[cut_sites.len() - 1].span_abs.1 + self.window_margin_nm;
                // Chrome lines from the corrected master widths, centered
                // on the drawn device centers.
                let mut lines = Vec::with_capacity(cut_sites.len());
                for s in &cut_sites {
                    let cell_name = &netlist.instances()[s.instance].cell;
                    let cell = library
                        .cell(cell_name)
                        .ok_or_else(|| FlowError::Inconsistent {
                            reason: format!("unknown cell `{cell_name}`"),
                        })?;
                    let order: Vec<_> = cell.layout().row_spans(region);
                    let pos = order
                        .iter()
                        .position(|(id, _)| *id == s.device)
                        .ok_or_else(|| FlowError::Inconsistent {
                            reason: format!("device missing from `{cell_name}` row"),
                        })?;
                    let width = masks
                        .get(&(cell_name.clone(), region))
                        .and_then(|w| w.get(pos))
                        .copied()
                        .ok_or_else(|| FlowError::Inconsistent {
                            reason: format!("no corrected mask for `{cell_name}` {region:?}"),
                        })?;
                    let center = (s.span_abs.0 + s.span_abs.1) / 2.0;
                    lines.push((center - width / 2.0, center + width / 2.0));
                }

                let mask = svt_litho::MaskCutline::from_lines(
                    x_lo,
                    x_hi - x_lo,
                    self.signoff.config().grid_nm(),
                    &lines,
                )
                .map_err(svt_opc::OpcError::from)?;
                let image = self.signoff.aerial_image(&mask, 0.0);
                for s in &cut_sites {
                    let center = (s.span_abs.0 + s.span_abs.1) / 2.0;
                    let printed =
                        svt_litho::measure_cd_at(&image, center, self.signoff.resist(), 1.0)
                            .and_then(|p| self.signoff.device_cd(p));
                    let printed_cd_nm = match printed {
                        Ok(cd) => Some(cd),
                        Err(LithoError::FeatureNotPrinted { .. }) => None,
                        Err(e) => return Err(svt_opc::OpcError::from(e).into()),
                    };
                    devices.push(PrintedDevice {
                        site: (*s).clone(),
                        printed_cd_nm,
                    });
                }
            }
        }

        Ok(FullChipResult {
            design: netlist.name().to_string(),
            devices,
            runtime: started.elapsed(),
            converged_rows: total_rows,
            total_rows,
        })
    }
}

/// Corrected mask widths per `(cell, region)`, in row (left-to-right)
/// device order.
pub type MasterMasks = std::collections::BTreeMap<(String, Region), Vec<f64>>;

/// Table 1 row: agreement between the printed CDs of the library-assembled
/// mask and the full-chip-OPC mask, device by device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowComparison {
    /// Devices compared (printed in both flows).
    pub total: usize,
    /// Devices with |error| < 1 % of the full-chip CD.
    pub within_1pct: usize,
    /// Devices with |error| < 3 %.
    pub within_3pct: usize,
    /// Devices with |error| < 6 %.
    pub within_6pct: usize,
}

impl FlowComparison {
    /// `N-i%` of Table 1: percent of devices within `i`% error.
    #[must_use]
    pub fn pct_within(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total as f64
        }
    }
}

/// Compares the device-by-device printed CDs of two flows over the same
/// placement (paper Table 1: "N-i% denotes % of devices with less than i%
/// error compared to full-chip OPC").
///
/// # Errors
///
/// Returns [`FlowError::Inconsistent`] if the results cover different
/// device sets.
pub fn compare_opc_flows(
    full: &FullChipResult,
    library_flow: &FullChipResult,
) -> Result<FlowComparison, FlowError> {
    if full.devices.len() != library_flow.devices.len() {
        return Err(FlowError::Inconsistent {
            reason: format!(
                "flows cover {} vs {} devices",
                full.devices.len(),
                library_flow.devices.len()
            ),
        });
    }
    let mut cmp = FlowComparison {
        total: 0,
        within_1pct: 0,
        within_3pct: 0,
        within_6pct: 0,
    };
    for (a, b) in full.devices.iter().zip(&library_flow.devices) {
        if a.site.instance != b.site.instance || a.site.device != b.site.device {
            return Err(FlowError::Inconsistent {
                reason: "flow results are not device-aligned".into(),
            });
        }
        let (Some(full_cd), Some(lib_cd)) = (a.printed_cd_nm, b.printed_cd_nm) else {
            continue;
        };
        let err_pct = 100.0 * (lib_cd - full_cd).abs() / full_cd;
        cmp.total += 1;
        if err_pct < 1.0 {
            cmp.within_1pct += 1;
        }
        if err_pct < 3.0 {
            cmp.within_3pct += 1;
        }
        if err_pct < 6.0 {
            cmp.within_6pct += 1;
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_litho::Process;
    use svt_netlist::{generate_benchmark, technology_map};
    use svt_place::{place, PlacementOptions};
    fn small_design() -> (Library, MappedNetlist, Placement) {
        let lib = Library::svt90();
        // A small custom circuit keeps the full-chip OPC test fast.
        let profile = svt_netlist::BenchmarkProfile::custom("tiny", 6, 3, 24, 7);
        let n = generate_benchmark(&profile);
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        (lib, mapped, placement)
    }

    #[test]
    fn full_chip_opc_prints_every_device_near_target() {
        let (lib, mapped, placement) = small_design();
        let sim = Process::nm90().simulator();
        let flow = FullChipOpc::new(&sim, OpcOptions::default());
        let result = flow.run(&mapped, &placement, &lib).unwrap();
        let expected: usize = mapped
            .instances()
            .iter()
            .map(|i| lib.cell(&i.cell).unwrap().layout().devices().len())
            .sum();
        assert_eq!(result.devices.len(), expected);
        let errors = result.percent_errors(90.0);
        assert_eq!(errors.len(), expected, "all devices print");
        let worst = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        assert!(worst < 20.0, "worst post-OPC error {worst}% too large");
        assert!(result.total_rows > 0);
        assert!(result.runtime > Duration::ZERO);
    }

    #[test]
    fn library_flow_tracks_full_chip_flow() {
        let (lib, mapped, placement) = small_design();
        let sim = Process::nm90().simulator();
        let full = FullChipOpc::new(&sim, OpcOptions::default())
            .run(&mapped, &placement, &lib)
            .unwrap();
        let assembler = LibraryAssembledOpc::new(&sim, OpcOptions::default());
        let (masks, master_time) = assembler.correct_masters(&mapped, &lib).unwrap();
        let library_flow = assembler.run(&mapped, &placement, &lib, &masks).unwrap();
        assert!(master_time > Duration::ZERO);
        assert_eq!(library_flow.devices.len(), full.devices.len());
        let cmp = compare_opc_flows(&full, &library_flow).unwrap();
        assert_eq!(cmp.total, full.devices.len());
        assert!(cmp.within_6pct >= cmp.within_3pct);
        assert!(cmp.within_3pct >= cmp.within_1pct);
        // Paper Table 1: nearly all devices within 6% of full-chip OPC.
        assert!(
            cmp.pct_within(cmp.within_6pct) > 85.0,
            "library OPC should track full-chip within 6% for most devices, got {:.1}%",
            cmp.pct_within(cmp.within_6pct)
        );
        // And a solid share within 1%.
        assert!(
            cmp.pct_within(cmp.within_1pct) > 20.0,
            "N-1% too low: {:.1}%",
            cmp.pct_within(cmp.within_1pct)
        );
        // The assembled-library audit is much cheaper than full-chip OPC.
        assert!(library_flow.runtime < full.runtime);
    }

    #[test]
    fn percent_errors_skip_unprinted_devices() {
        let site = DeviceSite {
            instance: 0,
            device: svt_stdcell::DeviceId(0),
            region: Region::P,
            row: 0,
            span_abs: (0.0, 90.0),
            left_space: None,
            right_space: None,
        };
        let result = FullChipResult {
            design: "x".into(),
            devices: vec![
                PrintedDevice {
                    site: site.clone(),
                    printed_cd_nm: Some(99.0),
                },
                PrintedDevice {
                    site,
                    printed_cd_nm: None,
                },
            ],
            runtime: Duration::ZERO,
            converged_rows: 1,
            total_rows: 1,
        };
        let errors = result.percent_errors(90.0);
        assert_eq!(errors.len(), 1);
        assert!((errors[0] - 10.0).abs() < 1e-12);
    }
}
