//! Placement-extracted wire parasitics: half-perimeter wire-length (HPWL)
//! capacitance estimation per net.
//!
//! The paper keeps interconnect orthogonal to its contribution ("to
//! evaluate the benefit of the proposed timing methodology independent of
//! any orthogonal effects"), but a production sign-off flow loads every
//! net with placement-dependent wire capacitance. This module estimates it
//! the standard pre-route way: the half-perimeter of the bounding box of
//! the net's pins, scaled by a capacitance-per-length coefficient, fed to
//! [`svt_sta::analyze_with_wire_caps`].

use std::collections::HashMap;

use svt_netlist::MappedNetlist;
use svt_place::Placement;
use svt_stdcell::{CellAbstract, Library};

use crate::flow::FlowError;

/// A typical 90 nm-class wire capacitance per nanometre of estimated wire
/// length (0.2 fF/µm).
pub const DEFAULT_CAP_PER_NM_PF: f64 = 0.2e-6;

/// Estimates per-net wire capacitance from placement HPWL.
///
/// Pin positions are approximated by the owning instance's center (the
/// standard pre-route approximation); primary I/O pins sit at the chip
/// boundary nearest to their single connected instance and contribute no
/// extra extent.
///
/// # Errors
///
/// Returns [`FlowError::Inconsistent`] if an instance is missing from the
/// placement or its cell from the library.
pub fn hpwl_wire_caps(
    netlist: &MappedNetlist,
    placement: &Placement,
    library: &Library,
    cap_per_nm_pf: f64,
) -> Result<HashMap<String, f64>, FlowError> {
    // Instance centers.
    let mut centers: Vec<Option<(f64, f64)>> = vec![None; netlist.instances().len()];
    for placed in placement.placed() {
        let inst = &netlist.instances()[placed.instance];
        let cell = library
            .cell(&inst.cell)
            .ok_or_else(|| FlowError::Inconsistent {
                reason: format!("unknown cell `{}`", inst.cell),
            })?;
        let x = placed.x_nm + cell.layout().width_nm() / 2.0;
        let y =
            placed.row as f64 * CellAbstract::CELL_HEIGHT_NM + CellAbstract::CELL_HEIGHT_NM / 2.0;
        centers[placed.instance] = Some((x, y));
    }

    // Gather the pin positions of every net.
    let mut extents: HashMap<String, (f64, f64, f64, f64)> = HashMap::new();
    for (idx, inst) in netlist.instances().iter().enumerate() {
        let (x, y) = centers[idx].ok_or_else(|| FlowError::Inconsistent {
            reason: format!("instance `{}` is not placed", inst.name),
        })?;
        for (_, net) in &inst.connections {
            let e = extents.entry(net.clone()).or_insert((
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ));
            e.0 = e.0.min(x);
            e.1 = e.1.max(x);
            e.2 = e.2.min(y);
            e.3 = e.3.max(y);
        }
    }

    Ok(extents
        .into_iter()
        .map(|(net, (x0, x1, y0, y1))| {
            let hpwl = (x1 - x0) + (y1 - y0);
            (net, hpwl * cap_per_nm_pf)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
    use svt_place::{place, PlacementOptions};
    use svt_sta::{analyze, analyze_with_wire_caps, CellBinding, TimingOptions};

    fn setup() -> (Library, MappedNetlist, Placement) {
        let library = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &library).unwrap();
        let placement = place(&mapped, &library, &PlacementOptions::default()).unwrap();
        (library, mapped, placement)
    }

    #[test]
    fn every_net_gets_a_nonnegative_cap() {
        let (library, mapped, placement) = setup();
        let caps = hpwl_wire_caps(&mapped, &placement, &library, DEFAULT_CAP_PER_NM_PF).unwrap();
        assert!(!caps.is_empty());
        for (net, cap) in &caps {
            assert!(*cap >= 0.0, "net `{net}` has negative cap");
            assert!(*cap < 0.05, "net `{net}` cap {cap} pF implausible");
        }
        // Multi-row nets exist and carry more cap than single-point nets.
        let max = caps.values().cloned().fold(0.0, f64::max);
        assert!(max > 1e-4, "some net should span rows: max {max} pF");
    }

    #[test]
    fn wire_caps_slow_the_circuit_down() {
        let (library, mapped, placement) = setup();
        let caps = hpwl_wire_caps(&mapped, &placement, &library, DEFAULT_CAP_PER_NM_PF).unwrap();
        let binding = CellBinding::nominal(&mapped, &library).unwrap();
        let opts = TimingOptions::default();
        let bare = analyze(&mapped, &binding, &opts)
            .unwrap()
            .circuit_delay_ns();
        let loaded = analyze_with_wire_caps(&mapped, &binding, &opts, &caps)
            .unwrap()
            .circuit_delay_ns();
        assert!(
            loaded > bare,
            "wire load must slow timing: {bare} -> {loaded}"
        );
        assert!(
            loaded < 3.0 * bare,
            "wire load {loaded} implausibly dominant vs {bare}"
        );
    }

    #[test]
    fn spread_out_placements_carry_more_wire_cap() {
        let (library, mapped, _) = setup();
        let total = |utilization: f64| {
            let placement = place(
                &mapped,
                &library,
                &PlacementOptions {
                    utilization,
                    ..PlacementOptions::default()
                },
            )
            .unwrap();
            hpwl_wire_caps(&mapped, &placement, &library, DEFAULT_CAP_PER_NM_PF)
                .unwrap()
                .values()
                .sum::<f64>()
        };
        assert!(
            total(0.4) > total(0.9),
            "sparser placement must have longer wires"
        );
    }

    #[test]
    fn negative_wire_caps_are_rejected_by_the_timer() {
        let (library, mapped, _) = setup();
        let binding = CellBinding::nominal(&mapped, &library).unwrap();
        let mut caps = HashMap::new();
        caps.insert("nonexistent".to_string(), -1.0);
        assert!(
            analyze_with_wire_caps(&mapped, &binding, &TimingOptions::default(), &caps).is_err()
        );
    }
}
