use serde::{Deserialize, Serialize};

use crate::DeviceClass;

/// Through-focus label of a timing arc (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcLabel {
    /// Dominated by dense devices: CD (and delay) only grows with defocus.
    Smile,
    /// Dominated by isolated devices: CD only shrinks with defocus.
    Frown,
    /// Mixed or balanced devices: focus effects partially cancel, both
    /// corners tighten.
    SelfCompensated,
}

/// How device classes combine into an arc label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcLabelPolicy {
    /// The paper's policy (§3.2 footnote 6): "the majority determines the
    /// nature"; ties are self-compensated.
    #[default]
    Majority,
    /// Conservative ablation policy: the arc takes a label only when *all*
    /// devices agree; any mixture is self-compensated. Weakens the corner
    /// trimming but never overstates it.
    Unanimous,
}

/// Labels a timing arc from the classes of the devices in its worst-case
/// transition.
///
/// # Panics
///
/// Panics on an empty device list (arcs always involve devices).
#[must_use]
pub fn label_arc(classes: &[DeviceClass], policy: ArcLabelPolicy) -> ArcLabel {
    assert!(!classes.is_empty(), "arc with no devices cannot be labeled");
    let dense = classes.iter().filter(|&&c| c == DeviceClass::Dense).count();
    let iso = classes
        .iter()
        .filter(|&&c| c == DeviceClass::Isolated)
        .count();
    match policy {
        ArcLabelPolicy::Majority => {
            if dense > iso && dense * 2 > classes.len() {
                ArcLabel::Smile
            } else if iso > dense && iso * 2 > classes.len() {
                ArcLabel::Frown
            } else {
                ArcLabel::SelfCompensated
            }
        }
        ArcLabelPolicy::Unanimous => {
            if dense == classes.len() {
                ArcLabel::Smile
            } else if iso == classes.len() {
                ArcLabel::Frown
            } else {
                ArcLabel::SelfCompensated
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DeviceClass::{Dense, Isolated, SelfCompensated};

    #[test]
    fn majority_rules() {
        // Paper's example: two isolated + one dense = frowning.
        assert_eq!(
            label_arc(&[Isolated, Isolated, Dense], ArcLabelPolicy::Majority),
            ArcLabel::Frown
        );
        assert_eq!(
            label_arc(&[Dense, Dense, Isolated], ArcLabelPolicy::Majority),
            ArcLabel::Smile
        );
        assert_eq!(
            label_arc(&[Dense, Isolated], ArcLabelPolicy::Majority),
            ArcLabel::SelfCompensated
        );
        // Self-compensated devices dilute the majority.
        assert_eq!(
            label_arc(
                &[Dense, SelfCompensated, SelfCompensated, Isolated],
                ArcLabelPolicy::Majority
            ),
            ArcLabel::SelfCompensated
        );
        assert_eq!(
            label_arc(&[Dense, SelfCompensated, Dense], ArcLabelPolicy::Majority),
            ArcLabel::Smile
        );
    }

    #[test]
    fn majority_requires_an_absolute_majority() {
        // 2 dense, 1 iso, 2 selfcomp: dense > iso but not > half.
        assert_eq!(
            label_arc(
                &[Dense, Dense, Isolated, SelfCompensated, SelfCompensated],
                ArcLabelPolicy::Majority
            ),
            ArcLabel::SelfCompensated
        );
    }

    #[test]
    fn unanimous_is_stricter() {
        assert_eq!(
            label_arc(&[Dense, Dense], ArcLabelPolicy::Unanimous),
            ArcLabel::Smile
        );
        assert_eq!(
            label_arc(&[Isolated], ArcLabelPolicy::Unanimous),
            ArcLabel::Frown
        );
        assert_eq!(
            label_arc(&[Dense, Dense, Isolated], ArcLabelPolicy::Unanimous),
            ArcLabel::SelfCompensated
        );
    }

    #[test]
    #[should_panic(expected = "no devices")]
    fn empty_device_list_panics() {
        let _ = label_arc(&[], ArcLabelPolicy::Majority);
    }
}
