use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use svt_exec::{try_par_chunks, try_par_map, MemoCache, ScratchPool};
use svt_netlist::MappedNetlist;
use svt_obs::audit::{AuditTrail, CornerDelay, InstanceAudit, PathAudit, TrimRecord};
use svt_place::{DeviceSite, Placement, PlacementOptions};
use svt_sta::{
    analyze_full_in, CellBinding, SharedTopology, StaError, StaState, TimingOptions, TimingReport,
};
use svt_stdcell::{
    Cell, CellContext, CharacterizeOptions, CharacterizedCell, ExpandedLibrary, Library,
    StdcellError, TimingArc,
};

use crate::{classify_device, label_arc, ArcLabel, ArcLabelPolicy, DeviceClass, VariationBudget};

/// A process corner of the gate-length axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Fastest (shortest gates).
    BestCase,
    /// Nominal.
    Nominal,
    /// Slowest (longest gates).
    WorstCase,
}

impl Corner {
    /// All corners, fast to slow.
    pub const ALL: [Corner; 3] = [Corner::BestCase, Corner::Nominal, Corner::WorstCase];
}

/// Circuit delay at the three corners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornerTiming {
    /// Best-case circuit delay (ns).
    pub bc_ns: f64,
    /// Nominal circuit delay (ns).
    pub nom_ns: f64,
    /// Worst-case circuit delay (ns).
    pub wc_ns: f64,
}

impl CornerTiming {
    /// Best-case to worst-case timing spread.
    #[must_use]
    pub fn spread_ns(&self) -> f64 {
        self.wc_ns - self.bc_ns
    }
}

/// The Table 2 result for one testcase: traditional vs systematic-variation
/// aware corner timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignoffComparison {
    /// Testcase name.
    pub testcase: String,
    /// Mapped instance count.
    pub gates: usize,
    /// Traditional (context-blind) corner timing.
    pub traditional: CornerTiming,
    /// Systematic-variation aware corner timing.
    pub aware: CornerTiming,
}

impl SignoffComparison {
    /// Percent reduction in best-case→worst-case timing uncertainty — the
    /// paper's headline metric (28–40 % in Table 2).
    #[must_use]
    pub fn uncertainty_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.aware.spread_ns() / self.traditional.spread_ns())
    }
}

/// Options of the sign-off comparison flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignoffOptions {
    /// Placement options (whitespace statistics drive the context mix).
    pub placement: PlacementOptions,
    /// STA boundary conditions.
    pub timing: TimingOptions,
    /// Variation budget (Δ, lvar_pitch, lvar_focus shares).
    pub budget: VariationBudget,
    /// Arc labeling policy.
    pub policy: ArcLabelPolicy,
    /// Characterization options (nominal L, delay sensitivity).
    pub characterize: CharacterizeOptions,
    /// Contacted pitch separating dense from isolated devices.
    pub contacted_pitch_nm: f64,
    /// When false, runs the paper's §5 simplified methodology: boundary
    /// context is ignored and every instance uses the fully isolated
    /// library version (no 81-way expansion benefit on nominal CDs).
    pub use_context_library: bool,
    /// Delay derate (± fraction) of the non-gate-length process-corner
    /// components — Vth, oxide thickness, mobility — which both
    /// methodologies worst-case identically ("the corner case libraries
    /// are constructed with just the process corners", paper §4; the
    /// methodology removes only the systematic *gate length* part). This
    /// is what keeps the observed uncertainty reduction below the pure
    /// L-space bound.
    pub residual_process_derate: f64,
}

impl Default for SignoffOptions {
    fn default() -> SignoffOptions {
        SignoffOptions {
            placement: PlacementOptions::default(),
            timing: TimingOptions::default(),
            budget: VariationBudget::default(),
            policy: ArcLabelPolicy::default(),
            characterize: CharacterizeOptions::default(),
            contacted_pitch_nm: 300.0,
            use_context_library: true,
            residual_process_derate: 0.09,
        }
    }
}

/// Errors of the sign-off flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Placement query failed.
    Place(svt_place::PlaceError),
    /// Timing analysis failed.
    Sta(StaError),
    /// Characterization failed.
    Stdcell(StdcellError),
    /// OPC or lithography simulation failed.
    Opc(svt_opc::OpcError),
    /// Inputs were inconsistent.
    Inconsistent {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Place(e) => write!(f, "placement query failed: {e}"),
            FlowError::Sta(e) => write!(f, "timing analysis failed: {e}"),
            FlowError::Stdcell(e) => write!(f, "characterization failed: {e}"),
            FlowError::Opc(e) => write!(f, "OPC failed: {e}"),
            FlowError::Inconsistent { reason } => write!(f, "inconsistent flow inputs: {reason}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Place(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            FlowError::Stdcell(e) => Some(e),
            FlowError::Opc(e) => Some(e),
            FlowError::Inconsistent { .. } => None,
        }
    }
}

impl From<svt_opc::OpcError> for FlowError {
    fn from(e: svt_opc::OpcError) -> FlowError {
        FlowError::Opc(e)
    }
}

impl From<svt_place::PlaceError> for FlowError {
    fn from(e: svt_place::PlaceError) -> FlowError {
        FlowError::Place(e)
    }
}

impl From<StaError> for FlowError {
    fn from(e: StaError) -> FlowError {
        FlowError::Sta(e)
    }
}

impl From<StdcellError> for FlowError {
    fn from(e: StdcellError) -> FlowError {
        FlowError::Stdcell(e)
    }
}

/// Characterizes one placed instance at a systematic-variation aware
/// corner.
///
/// Each arc is scaled independently: its iso-dense aware nominal length is
/// the mean in-context printed CD of its devices, its label comes from the
/// devices' iso/dense classes, and the corner value follows paper
/// eqs. 1–5.
///
/// # Errors
///
/// Returns [`StdcellError::InvalidCharacterization`] if the length or class
/// vectors do not match the cell's devices.
#[allow(clippy::too_many_arguments)] // the corner recipe genuinely has this many inputs
pub fn characterize_corner(
    cell: &Cell,
    ctx_lengths_nm: &[f64],
    device_classes: &[DeviceClass],
    budget: &VariationBudget,
    policy: ArcLabelPolicy,
    corner: Corner,
    variant_name: &str,
    options: CharacterizeOptions,
) -> Result<CharacterizedCell, StdcellError> {
    let n = cell.layout().devices().len();
    if ctx_lengths_nm.len() != n || device_classes.len() != n {
        return Err(StdcellError::InvalidCharacterization {
            cell: cell.name().into(),
            reason: format!(
                "expected {n} lengths and classes, got {} and {}",
                ctx_lengths_nm.len(),
                device_classes.len()
            ),
        });
    }
    let arcs = cell
        .arcs()
        .iter()
        .map(|arc| {
            let mean_l = arc.devices.iter().map(|d| ctx_lengths_nm[d.0]).sum::<f64>()
                / arc.devices.len() as f64;
            let classes: Vec<DeviceClass> =
                arc.devices.iter().map(|d| device_classes[d.0]).collect();
            let label = label_arc(&classes, policy);
            let corners = budget.aware_corners(mean_l, label);
            let l_eff = match corner {
                Corner::BestCase => corners.bc_nm,
                Corner::Nominal => corners.nom_nm,
                Corner::WorstCase => corners.wc_nm,
            };
            let factor =
                1.0 + options.delay_sensitivity * (l_eff / options.nominal_length_nm - 1.0);
            TimingArc {
                from_pin: arc.from_pin.clone(),
                to_pin: arc.to_pin.clone(),
                delay: arc.delay.scaled(factor),
                output_slew: arc.output_slew.scaled(factor),
                devices: arc.devices.clone(),
            }
        })
        .collect();
    Ok(CharacterizedCell {
        cell_name: cell.name().into(),
        variant_name: variant_name.into(),
        device_lengths_nm: ctx_lengths_nm.to_vec(),
        pins: cell.pins().to_vec(),
        arcs,
    })
}

/// One fully bound and analyzed STA corner: the characterized-cell
/// binding it ran with plus the complete propagation state.
///
/// Keeping the [`StaState`] (not just the [`TimingReport`]) is what lets
/// `svt-eco` re-sign-off incrementally: [`svt_sta::analyze_incremental`]
/// resumes from this state and recomputes only the cones an edit dirtied.
#[derive(Debug, Clone)]
pub struct CornerAnalysis {
    /// Per-instance characterized cells the corner was analyzed with.
    pub binding: CellBinding,
    /// Full propagation state ([`svt_sta::analyze_full`] output).
    pub state: StaState,
}

impl CornerAnalysis {
    /// The corner's timing report.
    #[must_use]
    pub fn report(&self) -> &TimingReport {
        self.state.report()
    }
}

/// Everything a completed sign-off run knows: the Table 2 comparison, the
/// audit trail, and the per-corner / per-instance provenance both were
/// derived from.
///
/// Produced by [`SignoffFlow::run_with_provenance`]; consumed by the
/// `svt-eco` session, which mutates copies of this state under ECO edits
/// instead of rerunning the flow from scratch.
#[derive(Debug, Clone)]
pub struct FlowProvenance {
    /// Traditional corner analyses in `Corner::ALL` (`[bc, nom, wc]`)
    /// order.
    pub traditional: Vec<CornerAnalysis>,
    /// Aware corner analyses in `Corner::ALL` order.
    pub aware: Vec<CornerAnalysis>,
    /// Per-instance placement contexts, netlist order.
    pub contexts: Vec<CellContext>,
    /// Per-instance, per-device iso/dense classes, netlist order.
    pub classes: Vec<Vec<DeviceClass>>,
    /// The Table 2 traditional-vs-aware comparison.
    pub comparison: SignoffComparison,
    /// The full per-instance / per-endpoint audit trail.
    pub audit: AuditTrail,
}

/// Memo key of one aware characterization: dense library cell id,
/// effective placement context, 2-bit-packed device classes, corner code.
type AwareKey = (u32, CellContext, u64, u8);

/// Per-flow memoization shared by every run (and clone) of one
/// [`SignoffFlow`]: the hot sign-off path re-derives nothing that is a
/// pure function of the flow's fixed options.
///
/// * `topo` — the interned netlist [`SharedTopology`], verified (not
///   rebuilt) on every analysis of the same design,
/// * `aware` / `trad` — characterized-cell variants behind [`Arc`], keyed
///   by everything their tables depend on, so a warm run binds all six
///   corners without characterizing a single cell,
/// * `cell_ids` — dense `u32` ids of the base-library cells (avoids
///   `String` clones in memo keys),
/// * `scratch` — bump arenas for the analysis working set, reused across
///   corners and runs.
struct FlowCaches {
    topo: Mutex<Option<SharedTopology>>,
    aware: MemoCache<AwareKey, Arc<CharacterizedCell>>,
    trad: MemoCache<(u32, u64), Arc<CharacterizedCell>>,
    cell_ids: OnceLock<HashMap<String, u32>>,
    scratch: ScratchPool,
}

impl FlowCaches {
    fn new() -> FlowCaches {
        FlowCaches {
            topo: Mutex::new(None),
            aware: MemoCache::default(),
            trad: MemoCache::default(),
            cell_ids: OnceLock::new(),
            scratch: ScratchPool::new(),
        }
    }
}

impl fmt::Debug for FlowCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowCaches")
            .field("aware", &self.aware.stats())
            .field("trad", &self.trad.stats())
            .field("scratch", &self.scratch)
            .finish_non_exhaustive()
    }
}

/// A portable copy of a flow's characterization memo caches — every
/// aware-context and traditional-corner [`CharacterizedCell`] the flow
/// has derived so far. Produced by [`SignoffFlow::export_caches`],
/// restored by [`SignoffFlow::preload_caches`]; entries are key-sorted so
/// identical cache contents always serialize to identical bytes.
///
/// Not part of the snapshot: the interned topology (rebuilt and verified
/// per design) and the scratch arenas (transient working memory).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowCacheSnapshot {
    aware: Vec<(AwareKey, CharacterizedCell)>,
    trad: Vec<((u32, u64), CharacterizedCell)>,
}

impl FlowCacheSnapshot {
    /// Total number of characterized cells in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.aware.len() + self.trad.len()
    }

    /// Whether the snapshot carries no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.aware.is_empty() && self.trad.is_empty()
    }
}

impl svt_snap::Serialize for FlowCacheSnapshot {
    fn serialize(&self, out: &mut svt_snap::Serializer) {
        self.aware.serialize(out);
        self.trad.serialize(out);
    }
}

impl svt_snap::Deserialize for FlowCacheSnapshot {
    fn deserialize(
        input: &mut svt_snap::Deserializer<'_>,
    ) -> Result<FlowCacheSnapshot, svt_snap::SnapError> {
        Ok(FlowCacheSnapshot {
            aware: svt_snap::Deserialize::deserialize(input)?,
            trad: svt_snap::Deserialize::deserialize(input)?,
        })
    }
}

/// Packs per-device iso/dense classes into 2 bits each, low device first.
/// `None` (memo bypass) for cells beyond 32 devices. Every class code is
/// non-zero, so packings of different device counts never collide.
fn pack_classes(classes: &[DeviceClass]) -> Option<u64> {
    if classes.len() > 32 {
        return None;
    }
    let mut bits = 0u64;
    for (i, class) in classes.iter().enumerate() {
        let code: u64 = match class {
            DeviceClass::Dense => 1,
            DeviceClass::Isolated => 2,
            DeviceClass::SelfCompensated => 3,
        };
        bits |= code << (2 * i);
    }
    Some(bits)
}

/// Stable `u8` code of a corner for memo keys.
fn corner_code(corner: Corner) -> u8 {
    match corner {
        Corner::BestCase => 0,
        Corner::Nominal => 1,
        Corner::WorstCase => 2,
    }
}

/// The end-to-end sign-off comparison flow of paper §4 (Table 2).
#[derive(Debug, Clone)]
pub struct SignoffFlow<'a> {
    library: &'a Library,
    expanded: &'a ExpandedLibrary,
    options: SignoffOptions,
    caches: Arc<FlowCaches>,
}

impl<'a> SignoffFlow<'a> {
    /// Creates a flow over a base library and its context expansion.
    #[must_use]
    pub fn new(
        library: &'a Library,
        expanded: &'a ExpandedLibrary,
        options: SignoffOptions,
    ) -> SignoffFlow<'a> {
        SignoffFlow {
            library,
            expanded,
            options,
            caches: Arc::new(FlowCaches::new()),
        }
    }

    /// Dense id of a base-library cell, or `None` (memo bypass) for a
    /// name the library does not contain — the caller's own lookup then
    /// reports the error with its usual message.
    fn cell_id(&self, name: &str) -> Option<u32> {
        let ids = self.caches.cell_ids.get_or_init(|| {
            self.library
                .cells()
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name().to_string(), u32::try_from(i).expect("cell count")))
                .collect()
        });
        ids.get(name).copied()
    }

    /// The cached interned topology if it still matches the netlist and
    /// binding, else a fresh build (which replaces the cached one). All
    /// six corners of a run — and every warm rerun — share one
    /// [`SharedTopology`], so the per-analysis graph cost is a
    /// verification scan, not an interning rebuild.
    fn topo_for(
        &self,
        netlist: &MappedNetlist,
        binding: &CellBinding,
    ) -> Result<SharedTopology, StaError> {
        let mut slot = self.caches.topo.lock().expect("topology cache poisoned");
        if let Some(topo) = slot.as_ref() {
            if topo.verify(netlist, binding).is_ok() {
                return Ok(topo.clone());
            }
        }
        let topo = SharedTopology::build(netlist, binding)?;
        *slot = Some(topo.clone());
        Ok(topo)
    }

    /// The flow options.
    #[must_use]
    pub fn options(&self) -> &SignoffOptions {
        &self.options
    }

    /// The base library the flow signs off against.
    #[must_use]
    pub fn library(&self) -> &'a Library {
        self.library
    }

    /// Exports the flow's characterization memo caches for persistence.
    /// Keys embed everything the cached tables depend on (cell id,
    /// context, device classes, corner), so a restored snapshot serves
    /// exactly the lookups a warm flow would have hit — bit-identically,
    /// since cached cells are pure functions of their keys.
    #[must_use]
    pub fn export_caches(&self) -> FlowCacheSnapshot {
        let mut aware: Vec<(AwareKey, CharacterizedCell)> = self
            .caches
            .aware
            .export_entries()
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect();
        aware.sort_unstable_by_key(|a| a.0);
        let mut trad: Vec<((u32, u64), CharacterizedCell)> = self
            .caches
            .trad
            .export_entries()
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect();
        trad.sort_unstable_by_key(|a| a.0);
        FlowCacheSnapshot { aware, trad }
    }

    /// Preloads the flow's characterization memo caches from a snapshot
    /// (existing entries win). Returns the number of entries loaded.
    /// Cache keys are only meaningful relative to the flow's library and
    /// options, so callers gate preloading on the stack fingerprint (see
    /// `svt_core::snapshot`).
    pub fn preload_caches(&self, snapshot: &FlowCacheSnapshot) -> usize {
        self.caches.aware.preload(
            snapshot
                .aware
                .iter()
                .map(|(k, v)| (*k, Arc::new(v.clone()))),
        ) + self
            .caches
            .trad
            .preload(snapshot.trad.iter().map(|(k, v)| (*k, Arc::new(v.clone()))))
    }

    /// Runs traditional and systematic-variation aware corner STA on a
    /// placed netlist and reports both.
    ///
    /// # Errors
    ///
    /// Propagates placement-query, characterization, and STA failures; see
    /// [`FlowError`].
    pub fn run(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<SignoffComparison, FlowError> {
        let _span = svt_obs::span("core.signoff");
        let traditional = self.traditional_timing(netlist)?;
        let aware = self.aware_timing(netlist, placement)?;
        Ok(SignoffComparison {
            testcase: netlist.name().to_string(),
            gates: netlist.instances().len(),
            traditional,
            aware,
        })
    }

    /// Traditional corner analyses in `[bc, nom, wc]` order: every device
    /// at `L_nom`, `L_nom ± Δ`. The three corner analyses are independent
    /// and run across the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates binding and STA failures; see [`FlowError`].
    pub fn traditional_analyses(
        &self,
        netlist: &MappedNetlist,
    ) -> Result<Vec<CornerAnalysis>, FlowError> {
        let _span = svt_obs::span("core.signoff.traditional");
        let l_nom = self.options.characterize.nominal_length_nm;
        let corners = self.options.budget.traditional_corners(l_nom);
        let lengths = [corners.bc_nm, corners.nom_nm, corners.wc_nm];
        try_par_map(&lengths, |&l| -> Result<CornerAnalysis, FlowError> {
            let _corner = svt_obs::span("core.signoff.traditional.corner");
            let binding = self.uniform_scaled_cached(netlist, l)?;
            let topo = self.topo_for(netlist, &binding)?;
            let scratch = self.caches.scratch.checkout();
            let state = analyze_full_in(netlist, &binding, &self.options.timing, &topo, &scratch)?;
            Ok(CornerAnalysis { binding, state })
        })
    }

    /// [`CellBinding::uniform_scaled`] through the flow's per-(cell,
    /// length) memo: each distinct master is characterized once per
    /// corner length, every instance of it shares the [`Arc`].
    fn uniform_scaled_cached(
        &self,
        netlist: &MappedNetlist,
        gate_length_nm: f64,
    ) -> Result<CellBinding, StaError> {
        let mut cells = Vec::with_capacity(netlist.instances().len());
        for inst in netlist.instances() {
            let key = self
                .cell_id(&inst.cell)
                .map(|id| (id, gate_length_nm.to_bits()));
            let cell = match key.as_ref().and_then(|k| self.caches.trad.get(k)) {
                Some(hit) => hit,
                None => {
                    let built = Arc::new(
                        CellBinding::uniform_scaled_cell(self.library, &inst.cell, gate_length_nm)
                            .map_err(|e| StaError::InvalidBinding {
                                reason: format!("instance `{}`: {e}", inst.name),
                            })?,
                    );
                    if let Some(k) = key {
                        self.caches.trad.insert(k, Arc::clone(&built));
                    }
                    built
                }
            };
            cells.push(cell);
        }
        CellBinding::new_shared(netlist, cells)
    }

    /// Traditional corner timing with the non-gate-length corner derate.
    fn traditional_timing(&self, netlist: &MappedNetlist) -> Result<CornerTiming, FlowError> {
        let analyses = self.traditional_analyses(netlist)?;
        Ok(self.apply_residual_derate(corner_timing_of(&analyses)))
    }

    /// Applies the non-gate-length process-corner derate to BC/WC. Every
    /// cell delay scales uniformly, so the circuit delay scales exactly.
    /// Public so an incremental re-sign-off can reproduce the flow's
    /// derated corner numbers from raw corner delays.
    #[must_use]
    pub fn apply_residual_derate(&self, timing: CornerTiming) -> CornerTiming {
        let d = self.options.residual_process_derate;
        CornerTiming {
            bc_ns: timing.bc_ns * (1.0 - d),
            nom_ns: timing.nom_ns,
            wc_ns: timing.wc_ns * (1.0 + d),
        }
    }

    /// Aware corner timing: in-context nominal CDs plus per-arc eq. 1–5
    /// corners.
    fn aware_timing(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<CornerTiming, FlowError> {
        let run = self.aware_analyses(netlist, placement)?;
        Ok(self.apply_residual_derate(corner_timing_of(&run.analyses)))
    }

    /// Aware corner analyses plus the per-instance provenance they were
    /// derived from (placement contexts and device classes), in
    /// `Corner::ALL` order.
    fn aware_analyses(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<AwareRun, FlowError> {
        let _span = svt_obs::span("core.signoff.aware");
        let instances = netlist.instances().len();

        // One device-site extraction feeds both the per-instance contexts
        // and the iso/dense classes — the sites already carry every
        // neighbor spacing the context derivation needs.
        let sites = placement.device_sites(netlist, self.library)?;
        let contexts = svt_place::instance_contexts_from_sites(instances, &sites);
        if contexts.len() != instances {
            return Err(FlowError::Inconsistent {
                reason: "placement does not cover the netlist".into(),
            });
        }

        // Per-instance device classes from the placed spacings.
        let mut classes: Vec<Vec<DeviceClass>> = netlist
            .instances()
            .iter()
            .map(|inst| {
                let n = self
                    .library
                    .cell(&inst.cell)
                    .map(|c| c.layout().devices().len())
                    .unwrap_or(0);
                vec![DeviceClass::Isolated; n]
            })
            .collect();
        for site in &sites {
            classes[site.instance][site.device.0] = classify_device_site(site, &self.options);
        }

        // Per-corner in-context characterization in contiguous index
        // chunks (a handful of pool tasks, not one per instance). Each
        // instance's characterized cell depends only on its own context
        // and classes; results land in instance order, so the binding
        // (and the analyzed delay) is identical to the sequential loop.
        let mut analyses = Vec::with_capacity(Corner::ALL.len());
        for corner in Corner::ALL {
            let _corner_span = svt_obs::span("core.signoff.aware.corner");
            if svt_obs::enabled() {
                svt_obs::counter!("core.signoff.instances").add(instances as u64);
            }
            let cells = try_par_chunks(instances, |idx| -> Result<_, FlowError> {
                self.characterize_instance_cached(netlist, idx, &contexts, &classes, corner)
            })?;
            let binding = CellBinding::new_shared(netlist, cells)?;
            let topo = self.topo_for(netlist, &binding)?;
            let scratch = self.caches.scratch.checkout();
            let state = analyze_full_in(netlist, &binding, &self.options.timing, &topo, &scratch)?;
            analyses.push(CornerAnalysis { binding, state });
        }

        Ok(AwareRun {
            analyses,
            contexts,
            classes,
        })
    }

    /// [`SignoffFlow::characterize_instance`] through the flow's aware
    /// memo. The key is everything the characterization depends on given
    /// the flow's fixed options — cell, *effective* context (after
    /// `use_context_library` gating), packed device classes, corner — so
    /// a hit is bit-identical to recomputing, and a warm sign-off binds
    /// all corners without characterizing anything.
    fn characterize_instance_cached(
        &self,
        netlist: &MappedNetlist,
        idx: usize,
        contexts: &[CellContext],
        classes: &[Vec<DeviceClass>],
        corner: Corner,
    ) -> Result<Arc<CharacterizedCell>, FlowError> {
        let inst = &netlist.instances()[idx];
        let effective = if self.options.use_context_library {
            contexts[idx]
        } else {
            CellContext::default()
        };
        let key = self
            .cell_id(&inst.cell)
            .zip(pack_classes(&classes[idx]))
            .map(|(cell, bits)| (cell, effective, bits, corner_code(corner)));
        if let Some(key) = &key {
            if let Some(hit) = self.caches.aware.get(key) {
                return Ok(hit);
            }
        }
        let cell = Arc::new(self.characterize_instance(
            netlist,
            idx,
            contexts[idx],
            &classes[idx],
            corner,
        )?);
        if let Some(key) = key {
            self.caches.aware.insert(key, Arc::clone(&cell));
        }
        Ok(cell)
    }

    /// Characterizes one placed instance at one aware corner from its
    /// placement context and per-device classes — the unit of work the
    /// aware corner runs fan out, and the unit an incremental ECO
    /// re-sign-off recomputes per dirty instance.
    ///
    /// When the flow's `use_context_library` option is off, the passed
    /// context is ignored and the fully isolated variant is used (paper §5
    /// simplified methodology), exactly as in the full run.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Inconsistent`] when the instance's cell or its
    /// context variant is missing from the libraries, and propagates
    /// characterization failures.
    pub fn characterize_instance(
        &self,
        netlist: &MappedNetlist,
        idx: usize,
        context: CellContext,
        classes: &[DeviceClass],
        corner: Corner,
    ) -> Result<CharacterizedCell, FlowError> {
        let _inst = svt_obs::span("core.signoff.aware.instance");
        let inst = &netlist.instances()[idx];
        let cell = self
            .library
            .cell(&inst.cell)
            .ok_or_else(|| FlowError::Inconsistent {
                reason: format!("unknown cell `{}`", inst.cell),
            })?;
        let context = if self.options.use_context_library {
            context
        } else {
            CellContext::default()
        };
        let variant =
            self.expanded
                .variant(&inst.cell, context)
                .ok_or_else(|| FlowError::Inconsistent {
                    reason: format!(
                        "expanded library lacks {} in context {}",
                        inst.cell,
                        context.code()
                    ),
                })?;
        let name = format!("{}_{:?}", variant.variant_name, corner);
        Ok(characterize_corner(
            cell,
            &variant.device_lengths_nm,
            classes,
            &self.options.budget,
            self.options.policy,
            corner,
            &name,
            self.options.characterize,
        )?)
    }

    /// Runs the sign-off comparison *and* assembles the full audit trail:
    /// per instance and per arc, the device classes, the arc label, and
    /// the eqns. 1–5 corner trim with before/after gate lengths, plus
    /// per-endpoint traditional-vs-aware arrivals.
    ///
    /// The timing result is computed through the exact same code path as
    /// [`SignoffFlow::run`], so the comparison is bit-identical; the audit
    /// is a deterministic sequential pass over the same provenance, so the
    /// rendered report is byte-identical across thread counts and trace
    /// modes.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`SignoffFlow::run`].
    ///
    /// # Examples
    ///
    /// ```
    /// use svt_core::{SignoffFlow, SignoffOptions};
    /// use svt_litho::Process;
    /// use svt_netlist::{bench, technology_map};
    /// use svt_place::{place, PlacementOptions};
    /// use svt_stdcell::{expand_library, ExpandOptions, Library};
    ///
    /// let lib = Library::svt90();
    /// let sim = Process::nm90().simulator();
    /// let expanded = expand_library(&lib, &sim, &ExpandOptions::fast())?;
    /// let n = bench::parse("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")?;
    /// let mapped = technology_map(&n, &lib)?;
    /// let placement = place(&mapped, &lib, &PlacementOptions::default())?;
    ///
    /// let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
    /// let (cmp, audit) = flow.run_audited(&mapped, &placement)?;
    /// assert_eq!(audit.testcase, cmp.testcase);
    /// assert!(audit.render_text().contains("corner delays"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_audited(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<(SignoffComparison, AuditTrail), FlowError> {
        let provenance = self.run_with_provenance(netlist, placement)?;
        Ok((provenance.comparison, provenance.audit))
    }

    /// Runs the audited sign-off comparison and returns *everything* it
    /// computed: corner bindings and STA states, placement contexts,
    /// device classes, the comparison, and the audit trail.
    ///
    /// This is the entry point for incremental ECO re-sign-off
    /// (`svt-eco`): the returned [`FlowProvenance`] is the baseline an
    /// `EcoSession`-style engine mutates in place. The
    /// timing result and audit are bit-identical to
    /// [`SignoffFlow::run_audited`] — which delegates here.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`SignoffFlow::run`].
    pub fn run_with_provenance(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<FlowProvenance, FlowError> {
        let _span = svt_obs::span("core.signoff");
        let traditional_analyses = self.traditional_analyses(netlist)?;
        let traditional = self.apply_residual_derate(corner_timing_of(&traditional_analyses));
        let run = self.aware_analyses(netlist, placement)?;
        let aware = self.apply_residual_derate(corner_timing_of(&run.analyses));
        let comparison = SignoffComparison {
            testcase: netlist.name().to_string(),
            gates: netlist.instances().len(),
            traditional,
            aware,
        };
        let audit = self.assemble_audit(
            netlist,
            &run.contexts,
            &run.classes,
            [
                traditional_analyses[0].report(),
                traditional_analyses[2].report(),
            ],
            [run.analyses[0].report(), run.analyses[2].report()],
            &comparison,
        )?;
        Ok(FlowProvenance {
            traditional: traditional_analyses,
            aware: run.analyses,
            contexts: run.contexts,
            classes: run.classes,
            comparison,
            audit,
        })
    }

    /// Assembles the audit trail from a run's provenance. Purely
    /// sequential arithmetic over data the flow already computed — no STA
    /// reruns — so it is deterministic by construction. `trad` and `aware`
    /// carry the `[bc, wc]` endpoint reports of each methodology.
    ///
    /// Public so an incremental re-sign-off can rebuild a bit-identical
    /// audit from updated provenance.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Inconsistent`] when a cell or context variant
    /// is missing from the libraries.
    pub fn assemble_audit(
        &self,
        netlist: &MappedNetlist,
        contexts: &[CellContext],
        classes: &[Vec<DeviceClass>],
        trad: [&TimingReport; 2],
        aware: [&TimingReport; 2],
        comparison: &SignoffComparison,
    ) -> Result<AuditTrail, FlowError> {
        let _span = svt_obs::span("core.signoff.audit");
        let l_nom = self.options.characterize.nominal_length_nm;

        let mut instances = Vec::new();
        for idx in 0..netlist.instances().len() {
            instances.extend(self.audit_instance_rows(
                netlist,
                idx,
                contexts[idx],
                &classes[idx],
            )?);
        }

        let trad_bc = trad[0].po_arrivals();
        let trad_wc = trad[1].po_arrivals();
        let aware_bc = aware[0].po_arrivals();
        let aware_wc = aware[1].po_arrivals();
        let paths = trad_bc
            .iter()
            .zip(&trad_wc)
            .zip(aware_bc.iter().zip(&aware_wc))
            .map(|((tb, tw), (ab, aw))| self.audit_path_row(&tb.0, tb.1, tw.1, ab.1, aw.1))
            .collect();

        Ok(AuditTrail {
            testcase: comparison.testcase.clone(),
            nominal_l_nm: l_nom,
            policy: format!("{:?}", self.options.policy),
            corner_delays: audit_corner_delays(comparison),
            instances,
            paths,
        })
    }

    /// The audit rows of one instance — one per timing arc of its current
    /// master, with the arc's device-class mix, in-context mean gate
    /// length, and eqns. 1–5 corner trim.
    ///
    /// [`SignoffFlow::assemble_audit`] is exactly the concatenation of
    /// these rows over all instances (netlist order), so an incremental
    /// re-sign-off can rebuild only the rows of its dirty instances and
    /// splice them over the previous audit bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Inconsistent`] when the instance's cell or
    /// its context variant is missing from the libraries.
    pub fn audit_instance_rows(
        &self,
        netlist: &MappedNetlist,
        idx: usize,
        context: CellContext,
        classes: &[DeviceClass],
    ) -> Result<Vec<InstanceAudit>, FlowError> {
        let l_nom = self.options.characterize.nominal_length_nm;
        let trad_corners = self.options.budget.traditional_corners(l_nom);
        let inst = &netlist.instances()[idx];
        let cell = self
            .library
            .cell(&inst.cell)
            .ok_or_else(|| FlowError::Inconsistent {
                reason: format!("unknown cell `{}`", inst.cell),
            })?;
        let context = if self.options.use_context_library {
            context
        } else {
            CellContext::default()
        };
        let variant =
            self.expanded
                .variant(&inst.cell, context)
                .ok_or_else(|| FlowError::Inconsistent {
                    reason: format!(
                        "expanded library lacks {} in context {}",
                        inst.cell,
                        context.code()
                    ),
                })?;
        let mut rows = Vec::with_capacity(cell.arcs().len());
        for arc in cell.arcs() {
            let mean_l = arc
                .devices
                .iter()
                .map(|d| variant.device_lengths_nm[d.0])
                .sum::<f64>()
                / arc.devices.len() as f64;
            let arc_classes: Vec<DeviceClass> = arc.devices.iter().map(|d| classes[d.0]).collect();
            let label = label_arc(&arc_classes, self.options.policy);
            let corners = self.options.budget.aware_corners(mean_l, label);
            rows.push(InstanceAudit {
                instance: format!("{}:{}>{}", inst.name, arc.from_pin, arc.to_pin),
                cell: inst.cell.clone(),
                device_class: class_mix(&arc_classes),
                mean_context_l_nm: mean_l,
                trim: TrimRecord {
                    arc_label: label_name(label).to_string(),
                    l_nominal_nm: l_nom,
                    bc_before_nm: trad_corners.bc_nm,
                    wc_before_nm: trad_corners.wc_nm,
                    bc_after_nm: corners.bc_nm,
                    wc_after_nm: corners.wc_nm,
                    residual_nm: self.options.budget.delta_nm(mean_l)
                        - self.options.budget.lvar_pitch_nm(mean_l),
                    focus_trim_nm: self.options.budget.lvar_focus_nm(mean_l),
                },
            });
        }
        Ok(rows)
    }

    /// The audit row of one timing endpoint, from its raw `[bc, wc]`
    /// corner arrivals with the residual process derate applied per path.
    ///
    /// Scaling by a positive constant commutes with `max` bit-for-bit,
    /// so the worst derated path equals the derated circuit delay
    /// exactly — the reconciliation the differential tests pin.
    #[must_use]
    pub fn audit_path_row(
        &self,
        endpoint: &str,
        trad_bc_ns: f64,
        trad_wc_ns: f64,
        aware_bc_ns: f64,
        aware_wc_ns: f64,
    ) -> PathAudit {
        let d = self.options.residual_process_derate;
        PathAudit {
            endpoint: endpoint.to_string(),
            trad_bc_ns: trad_bc_ns * (1.0 - d),
            trad_wc_ns: trad_wc_ns * (1.0 + d),
            aware_bc_ns: aware_bc_ns * (1.0 - d),
            aware_wc_ns: aware_wc_ns * (1.0 + d),
        }
    }
}

/// The audit's headline corner-delay block for a comparison, audit corner
/// order (`traditional-bc` … `aware-wc`).
#[must_use]
pub fn audit_corner_delays(comparison: &SignoffComparison) -> Vec<CornerDelay> {
    vec![
        CornerDelay {
            corner: "traditional-bc".into(),
            delay_ns: comparison.traditional.bc_ns,
        },
        CornerDelay {
            corner: "traditional-nom".into(),
            delay_ns: comparison.traditional.nom_ns,
        },
        CornerDelay {
            corner: "traditional-wc".into(),
            delay_ns: comparison.traditional.wc_ns,
        },
        CornerDelay {
            corner: "aware-bc".into(),
            delay_ns: comparison.aware.bc_ns,
        },
        CornerDelay {
            corner: "aware-nom".into(),
            delay_ns: comparison.aware.nom_ns,
        },
        CornerDelay {
            corner: "aware-wc".into(),
            delay_ns: comparison.aware.wc_ns,
        },
    ]
}

/// The aware corner analyses plus the provenance the audit trail needs.
struct AwareRun {
    /// Corner analyses in `Corner::ALL` order (`[bc, nom, wc]`).
    analyses: Vec<CornerAnalysis>,
    /// Per-instance placement contexts, netlist order.
    contexts: Vec<CellContext>,
    /// Per-instance, per-device classes, netlist order.
    classes: Vec<Vec<DeviceClass>>,
}

/// The `[bc, nom, wc]` circuit delays of three corner analyses.
fn corner_timing_of(analyses: &[CornerAnalysis]) -> CornerTiming {
    CornerTiming {
        bc_ns: analyses[0].report().circuit_delay_ns(),
        nom_ns: analyses[1].report().circuit_delay_ns(),
        wc_ns: analyses[2].report().circuit_delay_ns(),
    }
}

/// Stable audit names of the device classes in an arc, as a deterministic
/// `dense/isolated/self-compensated` count mix.
fn class_mix(classes: &[DeviceClass]) -> String {
    let count = |c: DeviceClass| classes.iter().filter(|&&x| x == c).count();
    format!(
        "dense:{} iso:{} self:{}",
        count(DeviceClass::Dense),
        count(DeviceClass::Isolated),
        count(DeviceClass::SelfCompensated)
    )
}

fn label_name(label: ArcLabel) -> &'static str {
    match label {
        ArcLabel::Smile => "smile",
        ArcLabel::Frown => "frown",
        ArcLabel::SelfCompensated => "self-compensated",
    }
}

/// Classifies one placed device site against the flow's contacted pitch
/// (paper §3.2): the exact classification rule the aware flow applies, so
/// an incremental re-sign-off reclassifying a window of rows agrees
/// bit-for-bit with the full run.
#[must_use]
pub fn classify_device_site(site: &DeviceSite, options: &SignoffOptions) -> DeviceClass {
    classify_device(
        site.left_space,
        site.right_space,
        options.contacted_pitch_nm,
        site.span_abs.1 - site.span_abs.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_litho::Process;
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
    use svt_place::place;
    use svt_stdcell::{expand_library, ExpandOptions};

    fn setup() -> (Library, ExpandedLibrary, MappedNetlist, Placement) {
        let lib = Library::svt90();
        let sim = Process::nm90().simulator();
        let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).unwrap();
        let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&netlist, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        (lib, expanded, mapped, placement)
    }

    #[test]
    fn aware_flow_tightens_the_spread() {
        let (lib, expanded, mapped, placement) = setup();
        let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let cmp = flow.run(&mapped, &placement).unwrap();
        assert!(cmp.traditional.bc_ns < cmp.traditional.nom_ns);
        assert!(cmp.traditional.nom_ns < cmp.traditional.wc_ns);
        assert!(cmp.aware.bc_ns <= cmp.aware.nom_ns + 1e-12);
        assert!(cmp.aware.nom_ns <= cmp.aware.wc_ns + 1e-12);
        let reduction = cmp.uncertainty_reduction_pct();
        assert!(
            reduction > 15.0 && reduction < 70.0,
            "uncertainty reduction {reduction}% out of the plausible band"
        );
    }

    #[test]
    fn simplified_flow_still_tightens_but_less_contextually() {
        let (lib, expanded, mapped, placement) = setup();
        let full = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let simple = SignoffFlow::new(
            &lib,
            &expanded,
            SignoffOptions {
                use_context_library: false,
                ..SignoffOptions::default()
            },
        );
        let r_full = full.run(&mapped, &placement).unwrap();
        let r_simple = simple.run(&mapped, &placement).unwrap();
        assert!(r_simple.uncertainty_reduction_pct() > 10.0);
        // Same traditional baseline in both flows.
        assert!((r_full.traditional.wc_ns - r_simple.traditional.wc_ns).abs() < 1e-12);
    }

    #[test]
    fn corner_characterization_orders_tables() {
        let lib = Library::svt90();
        let nand = lib.cell("NAND2X1").unwrap();
        let n = nand.layout().devices().len();
        let lengths = vec![92.0; n];
        let classes = vec![DeviceClass::Dense; n];
        let opts = CharacterizeOptions::default();
        let budget = VariationBudget::default();
        let by_corner = |corner: Corner| {
            characterize_corner(
                nand,
                &lengths,
                &classes,
                &budget,
                ArcLabelPolicy::Majority,
                corner,
                "t",
                opts,
            )
            .unwrap()
            .arcs[0]
                .delay
                .lookup(0.05, 0.01)
        };
        let bc = by_corner(Corner::BestCase);
        let nom = by_corner(Corner::Nominal);
        let wc = by_corner(Corner::WorstCase);
        assert!(bc < nom && nom < wc, "{bc} {nom} {wc}");
    }

    #[test]
    fn corner_characterization_validates_inputs() {
        let lib = Library::svt90();
        let inv = lib.cell("INVX1").unwrap();
        let err = characterize_corner(
            inv,
            &[90.0],
            &[DeviceClass::Dense, DeviceClass::Dense],
            &VariationBudget::default(),
            ArcLabelPolicy::Majority,
            Corner::Nominal,
            "t",
            CharacterizeOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn frown_arcs_have_lower_wc_than_smile_arcs() {
        let lib = Library::svt90();
        let inv = lib.cell("INVX1").unwrap();
        let opts = CharacterizeOptions::default();
        let budget = VariationBudget::default();
        let wc_of = |class: DeviceClass| {
            characterize_corner(
                inv,
                &[90.0, 90.0],
                &[class, class],
                &budget,
                ArcLabelPolicy::Majority,
                Corner::WorstCase,
                "t",
                opts,
            )
            .unwrap()
            .arcs[0]
                .delay
                .lookup(0.05, 0.01)
        };
        assert!(wc_of(DeviceClass::Isolated) < wc_of(DeviceClass::Dense));
    }
}
