use serde::{Deserialize, Serialize};

use svt_place::DeviceSite;

/// Through-focus behaviour class of a placed device (paper §3.2, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Both neighbors inside the contacted pitch: the device prints dense
    /// and *smiles* through focus (CD only grows with defocus).
    Dense,
    /// Both neighbors at or beyond the contacted pitch (or absent): the
    /// device prints isolated and *frowns* (CD only shrinks).
    Isolated,
    /// One dense and one isolated side: focus effects partially cancel.
    SelfCompensated,
}

/// Classifies a device from its left/right neighbor-poly spacings.
///
/// "We assume dense spacing to be less than the contacted pitch and
/// anything larger to be isolated" (paper §3.2, footnote 5): a side is
/// dense when the local line *pitch* — neighbor spacing plus the gate
/// length — is below the contacted pitch. A missing neighbor (`None`)
/// counts as isolated on that side.
#[must_use]
pub fn classify_device(
    left_space_nm: Option<f64>,
    right_space_nm: Option<f64>,
    contacted_pitch_nm: f64,
    gate_length_nm: f64,
) -> DeviceClass {
    let dense = |s: Option<f64>| {
        s.map(|v| v + gate_length_nm < contacted_pitch_nm)
            .unwrap_or(false)
    };
    match (dense(left_space_nm), dense(right_space_nm)) {
        (true, true) => DeviceClass::Dense,
        (false, false) => DeviceClass::Isolated,
        _ => DeviceClass::SelfCompensated,
    }
}

/// Classifies every device site of a placement, preserving order. Each
/// site's own printed span width is used as its gate length.
#[must_use]
pub fn classify_sites(sites: &[DeviceSite], contacted_pitch_nm: f64) -> Vec<DeviceClass> {
    sites
        .iter()
        .map(|s| {
            classify_device(
                s.left_space,
                s.right_space,
                contacted_pitch_nm,
                s.span_abs.1 - s.span_abs.0,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
    use svt_place::{place, PlacementOptions};
    use svt_stdcell::Library;

    const CP: f64 = 300.0;
    const L: f64 = 90.0;

    #[test]
    fn boundary_cases_use_strict_less_than() {
        // Dense side: space + L < 300, i.e. space < 210.
        assert_eq!(
            classify_device(Some(209.9), Some(209.9), CP, L),
            DeviceClass::Dense
        );
        assert_eq!(
            classify_device(Some(210.0), Some(210.0), CP, L),
            DeviceClass::Isolated
        );
        assert_eq!(
            classify_device(Some(209.9), Some(210.0), CP, L),
            DeviceClass::SelfCompensated
        );
    }

    #[test]
    fn missing_neighbors_are_isolated_sides() {
        assert_eq!(classify_device(None, None, CP, L), DeviceClass::Isolated);
        assert_eq!(
            classify_device(Some(100.0), None, CP, L),
            DeviceClass::SelfCompensated
        );
    }

    #[test]
    fn placed_benchmark_has_all_three_classes() {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        let sites = placement.device_sites(&mapped, &lib).unwrap();
        let classes = classify_sites(&sites, CP);
        assert_eq!(classes.len(), sites.len());
        let count = |c: DeviceClass| classes.iter().filter(|&&x| x == c).count();
        assert!(count(DeviceClass::Dense) > 0, "no dense devices");
        assert!(count(DeviceClass::Isolated) > 0, "no isolated devices");
        assert!(
            count(DeviceClass::SelfCompensated) > 0,
            "no self-compensated devices"
        );
    }

    #[test]
    fn majority_of_devices_are_isolated_in_sparse_placements() {
        // Paper §4: "majority of the devices in the layout are isolated
        // (due to the whitespace distribution or the cell layout itself)".
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c880").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(
            &mapped,
            &lib,
            &PlacementOptions {
                utilization: 0.6,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        let sites = placement.device_sites(&mapped, &lib).unwrap();
        let classes = classify_sites(&sites, CP);
        let iso = classes
            .iter()
            .filter(|&&c| c == DeviceClass::Isolated)
            .count();
        assert!(
            iso * 2 > classes.len(),
            "expect an isolated majority: {iso}/{}",
            classes.len()
        );
    }
}
