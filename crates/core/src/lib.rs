//! The systematic-variation aware timing methodology of Gupta & Heng
//! (DAC 2004) — the primary contribution this workspace reproduces.
//!
//! Traditional corner sign-off assumes every gate can simultaneously sit at
//! the extreme of the full gate-length variation budget. Two large parts of
//! that budget are *systematic* and predictable from layout:
//!
//! * **Through-pitch** (iso-dense) variation is fixed once placement is
//!   known — handled by characterizing each cell in its placement context
//!   (the 81-version expanded library) and removing `lvar_pitch` from both
//!   corners (paper eq. 1).
//! * **Through-focus** variation has a known *sign* per device: dense
//!   devices smile (only get slower), isolated devices frown (only get
//!   faster) — handled by labeling arcs and trimming the impossible side of
//!   the corner (paper eqs. 2–5).
//!
//! The crate provides:
//!
//! * [`DeviceClass`] / [`classify_device`] — iso/dense/self-compensated
//!   classification from placed neighbor spacings (paper §3.2, Fig. 5),
//! * [`ArcLabel`] / [`label_arc`] — smile/frown/self-compensated arc labels
//!   with the paper's majority policy (and a stricter ablation policy),
//! * [`VariationBudget`] / [`CornerLengths`] — the corner arithmetic of
//!   paper §3.3,
//! * [`characterize_corner`] — per-arc corner characterization of a placed
//!   instance,
//! * [`SignoffFlow`] — the end-to-end Table 2 experiment: map → place →
//!   expand → in-context corner STA vs traditional corner STA,
//! * [`FullChipOpc`] / [`compare_opc_flows`] — the full-chip OPC audit used
//!   by Table 1 and Fig. 7.
//!
//! # Examples
//!
//! ```
//! use svt_core::{classify_device, ArcLabel, DeviceClass, VariationBudget};
//!
//! let budget = VariationBudget::default();
//! let (contacted, l) = (300.0, 90.0);
//! assert_eq!(classify_device(Some(150.0), Some(180.0), contacted, l), DeviceClass::Dense);
//! assert_eq!(classify_device(None, Some(800.0), contacted, l), DeviceClass::Isolated);
//! assert_eq!(
//!     classify_device(Some(150.0), Some(700.0), contacted, l),
//!     DeviceClass::SelfCompensated
//! );
//! // Traditional spread is ±Δ; the aware smile corner gives back
//! // lvar_pitch on both sides and lvar_focus on the best-case side.
//! let t = budget.traditional_corners(90.0);
//! let s = budget.aware_corners(90.0, ArcLabel::Smile);
//! assert!(s.wc_nm < t.wc_nm && s.bc_nm > t.bc_nm);
//! ```

mod arcs;
mod budget;
mod classify;
mod flow;
mod fullchip;
mod parasitics;
pub mod snapshot;
mod statistical;

pub use arcs::{label_arc, ArcLabel, ArcLabelPolicy};
pub use budget::{CornerLengths, VariationBudget};
pub use classify::{classify_device, classify_sites, DeviceClass};
pub use flow::{
    audit_corner_delays, characterize_corner, classify_device_site, Corner, CornerAnalysis,
    CornerTiming, FlowCacheSnapshot, FlowError, FlowProvenance, SignoffComparison, SignoffFlow,
    SignoffOptions,
};
pub use fullchip::{
    compare_opc_flows, FlowComparison, FullChipOpc, FullChipResult, LibraryAssembledOpc,
    MasterMasks, PrintedDevice,
};
pub use parasitics::{hpwl_wire_caps, DEFAULT_CAP_PER_NM_PF};
pub use statistical::{DelayDistribution, GateLengthModel, MonteCarloOptions, MonteCarloSta};
