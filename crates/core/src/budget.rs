use serde::{Deserialize, Serialize};

use crate::ArcLabel;

/// The gate-length corner positions of one timing arc.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornerLengths {
    /// Best-case (fastest) gate length in nanometres.
    pub bc_nm: f64,
    /// Nominal gate length in nanometres.
    pub nom_nm: f64,
    /// Worst-case (slowest) gate length in nanometres.
    pub wc_nm: f64,
}

impl CornerLengths {
    /// Best-case to worst-case spread.
    #[must_use]
    pub fn spread_nm(&self) -> f64 {
        self.wc_nm - self.bc_nm
    }
}

/// The gate-length variation budget of paper §3.3/§4.
///
/// `delta_fraction` is the total one-sided corner excursion as a fraction
/// of the nominal gate length (traditional corners sit at
/// `L_nom ± delta`). `pitch_fraction` and `focus_fraction` are the shares
/// of that excursion attributed to systematic through-pitch and
/// through-focus variation; the paper assumes 30 % each ("Assuming
/// lvar_focus and lvar_pitch each to be 30% of the total gate length
/// variation", §4, after their ref. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationBudget {
    /// One-sided total excursion as a fraction of nominal L.
    pub delta_fraction: f64,
    /// `lvar_pitch / delta`.
    pub pitch_fraction: f64,
    /// `lvar_focus / delta`.
    pub focus_fraction: f64,
}

impl Default for VariationBudget {
    fn default() -> VariationBudget {
        VariationBudget {
            delta_fraction: 0.15,
            pitch_fraction: 0.30,
            focus_fraction: 0.30,
        }
    }
}

impl VariationBudget {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics unless all fractions are in `[0, 1]` and the systematic
    /// shares sum to at most 1.
    #[must_use]
    pub fn new(delta_fraction: f64, pitch_fraction: f64, focus_fraction: f64) -> VariationBudget {
        assert!(
            (0.0..=1.0).contains(&delta_fraction)
                && (0.0..=1.0).contains(&pitch_fraction)
                && (0.0..=1.0).contains(&focus_fraction),
            "fractions must be in [0, 1]"
        );
        assert!(
            pitch_fraction + focus_fraction <= 1.0 + 1e-12,
            "systematic shares cannot exceed the total budget"
        );
        VariationBudget {
            delta_fraction,
            pitch_fraction,
            focus_fraction,
        }
    }

    /// The one-sided total excursion `Δ` at a nominal gate length.
    #[must_use]
    pub fn delta_nm(&self, l_nom_nm: f64) -> f64 {
        self.delta_fraction * l_nom_nm
    }

    /// `lvar_pitch` at a nominal gate length.
    #[must_use]
    pub fn lvar_pitch_nm(&self, l_nom_nm: f64) -> f64 {
        self.pitch_fraction * self.delta_nm(l_nom_nm)
    }

    /// `lvar_focus` at a nominal gate length.
    #[must_use]
    pub fn lvar_focus_nm(&self, l_nom_nm: f64) -> f64 {
        self.focus_fraction * self.delta_nm(l_nom_nm)
    }

    /// Traditional corners: `L_nom ± Δ`, context-blind.
    #[must_use]
    pub fn traditional_corners(&self, l_nom_nm: f64) -> CornerLengths {
        let d = self.delta_nm(l_nom_nm);
        CornerLengths {
            bc_nm: l_nom_nm - d,
            nom_nm: l_nom_nm,
            wc_nm: l_nom_nm + d,
        }
    }

    /// Systematic-variation aware corners for an arc (paper eqs. 1–5).
    ///
    /// `l_nom_new_nm` is the iso-dense aware nominal gate length of the arc
    /// (the in-context printed CD). Equation 1 removes `lvar_pitch` from
    /// both sides; equations 2–5 then trim the side of the focus excursion
    /// that the arc's label makes impossible.
    #[must_use]
    pub fn aware_corners(&self, l_nom_new_nm: f64, label: ArcLabel) -> CornerLengths {
        // Eq. 1: the residual (non-pitch) excursion around the new nominal.
        let residual = self.delta_nm(l_nom_new_nm) - self.lvar_pitch_nm(l_nom_new_nm);
        let mut wc = l_nom_new_nm + residual;
        let mut bc = l_nom_new_nm - residual;
        let focus = self.lvar_focus_nm(l_nom_new_nm);
        match label {
            // Eq. 2: dense lines cannot thin with defocus — trim BC.
            ArcLabel::Smile => bc += focus,
            // Eq. 3: isolated lines cannot thicken — trim WC.
            ArcLabel::Frown => wc -= focus,
            // Eqs. 4–5: both sides tighten.
            ArcLabel::SelfCompensated => {
                wc -= focus;
                bc += focus;
            }
        }
        CornerLengths {
            bc_nm: bc,
            nom_nm: l_nom_new_nm,
            wc_nm: wc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> VariationBudget {
        VariationBudget::default()
    }

    #[test]
    fn traditional_corners_are_symmetric() {
        let c = budget().traditional_corners(90.0);
        assert!((c.wc_nm - 103.5).abs() < 1e-12);
        assert!((c.bc_nm - 76.5).abs() < 1e-12);
        assert!((c.spread_nm() - 27.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_removes_pitch_from_both_sides() {
        let b = budget();
        let c = b.aware_corners(90.0, ArcLabel::Smile);
        // Residual = Δ − lvar_pitch = 13.5 − 4.05 = 9.45.
        assert!((c.wc_nm - (90.0 + 9.45)).abs() < 1e-12);
    }

    #[test]
    fn focus_trims_follow_the_label() {
        let b = budget();
        let smile = b.aware_corners(90.0, ArcLabel::Smile);
        let frown = b.aware_corners(90.0, ArcLabel::Frown);
        let selfc = b.aware_corners(90.0, ArcLabel::SelfCompensated);
        // lvar_focus = 4.05.
        assert!((smile.bc_nm - (90.0 - 9.45 + 4.05)).abs() < 1e-12);
        assert!((smile.wc_nm - (90.0 + 9.45)).abs() < 1e-12);
        assert!((frown.wc_nm - (90.0 + 9.45 - 4.05)).abs() < 1e-12);
        assert!((frown.bc_nm - (90.0 - 9.45)).abs() < 1e-12);
        assert!((selfc.spread_nm() - (smile.spread_nm() - 4.05)).abs() < 1e-12);
        // All aware spreads beat the traditional one.
        let trad = b.traditional_corners(90.0);
        for c in [smile, frown, selfc] {
            assert!(c.spread_nm() < trad.spread_nm());
            assert!(c.bc_nm <= c.nom_nm && c.nom_nm <= c.wc_nm);
        }
    }

    #[test]
    fn aware_spread_reduction_matches_hand_arithmetic() {
        // Spread_trad = 2Δ; spread_smile = 2(Δ − lvar_pitch) − lvar_focus.
        // With 30%/30% shares: 2Δ(1 − 0.3) − 0.3Δ = Δ(2·0.7 − 0.3) = 1.1Δ.
        // Reduction = 1 − 1.1/2 = 45%.
        let b = budget();
        let trad = b.traditional_corners(90.0).spread_nm();
        let smile = b.aware_corners(90.0, ArcLabel::Smile).spread_nm();
        let reduction = 1.0 - smile / trad;
        assert!((reduction - 0.45).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_degenerates_cleanly() {
        let b = VariationBudget::new(0.0, 0.0, 0.0);
        let c = b.aware_corners(90.0, ArcLabel::Frown);
        assert_eq!(c.bc_nm, 90.0);
        assert_eq!(c.wc_nm, 90.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the total budget")]
    fn oversubscribed_budget_is_rejected() {
        let _ = VariationBudget::new(0.15, 0.7, 0.7);
    }
}
