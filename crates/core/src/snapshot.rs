//! Warm-start persistence of the expanded-library timing stack.
//!
//! Building the 81-context library (OPC + characterization) dominates
//! process start-up; everything it produces is a pure function of the
//! engine builds and options. This module captures that state — the
//! [`ExpandedLibrary`], the optional focus-exposure matrix, and the
//! expansion/flow memo caches — into one versioned `svt-snap` container
//! so the next process restores it in milliseconds instead of rebuilding.
//!
//! The container is gated by [`stack_fingerprint`]: a hash of the
//! sign-off simulator identity, both OPC engine identities, the
//! expansion options, and the base-library shape. Any mismatch — like
//! any corruption — yields a typed [`SnapError`], which callers turn
//! into a logged cold rebuild via [`restore_fallback`]; a snapshot can
//! therefore never change a timing result, only skip recomputing it.
//!
//! Deliberately **not** snapshotted: interned netlist topologies
//! (rebuilt and verified per design), scratch arenas, and every
//! observability register (counters restart at zero — a restore is a new
//! process, not a resumed one).

use std::path::Path;

use svt_litho::{FocusExposureMatrix, LithoSimulator};
use svt_obs::family_counter;
use svt_opc::{LibraryOpc, ModelOpc};
use svt_snap::{fnv1a64, Serialize as _, SnapError, SnapshotReader, SnapshotWriter};
use svt_stdcell::{
    export_expand_caches, preload_expand_caches, ExpandCacheSnapshot, ExpandOptions,
    ExpandedLibrary, Library,
};

use crate::flow::FlowCacheSnapshot;
use crate::SignoffFlow;

/// Section name of the expanded library.
pub const SECTION_EXPANDED: &str = "expanded_library";
/// Section name of the focus-exposure matrix (absent when not captured).
pub const SECTION_FEM: &str = "fem";
/// Section name of the expansion memo caches.
pub const SECTION_EXPAND_CACHES: &str = "expand_caches";
/// Section name of the sign-off flow memo caches.
pub const SECTION_FLOW_CACHES: &str = "flow_caches";

/// Fingerprint of the stack a snapshot is only valid for: FNV-1a over
/// the sign-off simulator identity, the production-OPC and library-OPC
/// engine identities, the expansion options (spacing grid and
/// characterization constants, exact bits), and the base-library shape
/// (name plus per-cell device/arc counts).
///
/// Worker-thread count is deliberately excluded — expansion results are
/// bit-identical for every thread count, so a snapshot from a 1-thread
/// build restores into a 16-thread server.
///
/// # Examples
///
/// ```
/// use svt_core::snapshot::stack_fingerprint;
/// use svt_litho::Process;
/// use svt_stdcell::{ExpandOptions, Library};
///
/// let sim = Process::nm90().simulator();
/// let lib = Library::svt90();
/// let fp = stack_fingerprint(&sim, &lib, &ExpandOptions::fast());
/// assert_eq!(fp, stack_fingerprint(&sim, &lib, &ExpandOptions::fast()));
/// assert_ne!(fp, stack_fingerprint(&sim, &lib, &ExpandOptions::default()));
/// ```
#[must_use]
pub fn stack_fingerprint(
    signoff: &LithoSimulator,
    library: &Library,
    options: &ExpandOptions,
) -> u64 {
    let opc = ModelOpc::with_production_model(signoff, options.opc);
    let library_opc = LibraryOpc::new(
        ModelOpc::with_production_model(signoff, options.opc),
        150.0,
        options.characterize.nominal_length_nm,
    );
    let mut s = svt_snap::Serializer::new();
    signoff.identity().serialize(&mut s);
    opc.identity().serialize(&mut s);
    library_opc.identity().serialize(&mut s);
    options.table_spacings_nm.serialize(&mut s);
    options.characterize.nominal_length_nm.serialize(&mut s);
    options.characterize.delay_sensitivity.serialize(&mut s);
    library.name().serialize(&mut s);
    for cell in library.cells() {
        cell.name().serialize(&mut s);
        cell.layout().devices().len().serialize(&mut s);
        cell.arcs().len().serialize(&mut s);
    }
    fnv1a64(&s.into_bytes())
}

/// Everything the warm-start snapshot carries (see the module docs for
/// what is deliberately left out).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSnapshot {
    /// The 81-context expanded library.
    pub expanded: ExpandedLibrary,
    /// The focus-exposure matrix, when the producer had built one.
    pub fem: Option<FocusExposureMatrix>,
    /// Pitch-pair and library-OPC-row memo entries.
    pub expand_caches: ExpandCacheSnapshot,
    /// Characterized-cell memo entries of the sign-off flow.
    pub flow_caches: FlowCacheSnapshot,
}

impl PipelineSnapshot {
    /// Captures the current stack: the given expanded library and FEM,
    /// the process-wide expansion memo caches, and (when a flow is
    /// given) the flow's characterization caches.
    #[must_use]
    pub fn capture(
        expanded: &ExpandedLibrary,
        fem: Option<&FocusExposureMatrix>,
        flow: Option<&SignoffFlow<'_>>,
    ) -> PipelineSnapshot {
        PipelineSnapshot {
            expanded: expanded.clone(),
            fem: fem.cloned(),
            expand_caches: export_expand_caches(),
            flow_caches: flow.map(SignoffFlow::export_caches).unwrap_or_default(),
        }
    }

    /// Serializes into an `svt-snap` container stamped with the given
    /// stack fingerprint.
    #[must_use]
    pub fn to_bytes(&self, fingerprint: u64) -> Vec<u8> {
        self.writer(fingerprint).to_bytes()
    }

    /// Atomically writes the container to `path` (tmp + rename), fsynced.
    /// Returns the file size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Io`] when the filesystem refuses.
    pub fn write_file(&self, path: &Path, fingerprint: u64) -> Result<u64, SnapError> {
        self.writer(fingerprint).write_file(path)
    }

    fn writer(&self, fingerprint: u64) -> SnapshotWriter {
        let _span = svt_obs::span("snap.capture");
        let mut w = SnapshotWriter::new(fingerprint);
        w.section(SECTION_EXPANDED, &self.expanded);
        if let Some(fem) = &self.fem {
            w.section(SECTION_FEM, fem);
        }
        w.section(SECTION_EXPAND_CACHES, &self.expand_caches);
        w.section(SECTION_FLOW_CACHES, &self.flow_caches);
        w
    }

    /// Parses a container and validates it against the expected stack
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Every corruption and mismatch maps to a typed [`SnapError`]:
    /// truncation, bad magic, future version, checksum, a fingerprint
    /// from a different engine build or option set, or a missing /
    /// malformed section.
    pub fn from_bytes(
        bytes: &[u8],
        expected_fingerprint: u64,
    ) -> Result<PipelineSnapshot, SnapError> {
        let _span = svt_obs::span("snap.restore");
        let r = SnapshotReader::from_bytes(bytes)?;
        r.expect_fingerprint(expected_fingerprint)?;
        Self::from_reader(&r)
    }

    /// [`PipelineSnapshot::from_bytes`] over a file.
    ///
    /// # Errors
    ///
    /// See [`PipelineSnapshot::from_bytes`]; I/O failures map to
    /// [`SnapError::Io`].
    pub fn read_file(
        path: &Path,
        expected_fingerprint: u64,
    ) -> Result<PipelineSnapshot, SnapError> {
        let _span = svt_obs::span("snap.restore");
        let r = SnapshotReader::read_file(path)?;
        r.expect_fingerprint(expected_fingerprint)?;
        Self::from_reader(&r)
    }

    fn from_reader(r: &SnapshotReader) -> Result<PipelineSnapshot, SnapError> {
        Ok(PipelineSnapshot {
            expanded: r.section(SECTION_EXPANDED)?,
            fem: if r.has_section(SECTION_FEM) {
                Some(r.section(SECTION_FEM)?)
            } else {
                None
            },
            expand_caches: r.section(SECTION_EXPAND_CACHES)?,
            flow_caches: r.section(SECTION_FLOW_CACHES)?,
        })
    }

    /// Preloads the process-wide expansion memo caches from the
    /// snapshot. Returns the number of entries loaded.
    pub fn preload_expand_caches(&self) -> usize {
        preload_expand_caches(&self.expand_caches)
    }

    /// Preloads a flow's characterization caches from the snapshot.
    /// Returns the number of entries loaded.
    pub fn preload_flow(&self, flow: &SignoffFlow<'_>) -> usize {
        flow.preload_caches(&self.flow_caches)
    }
}

/// Records one restore failure in the `snap.restore_fallback{reason}`
/// counter family and logs it; the caller then rebuilds cold. The label
/// set is the closed [`SnapError::reason`] vocabulary, so dashboards can
/// tell a stale fingerprint from on-disk corruption.
pub fn restore_fallback(err: &SnapError) {
    family_counter!("snap.restore_fallback", &["reason"])
        .with(&[err.reason()])
        .incr();
    eprintln!("svt-snap: restore failed ({err}); rebuilding cold");
}

/// Restores a snapshot from `path`, or returns `None` after recording
/// the failure reason — the "load-else-build" helper of the serve layer.
/// A missing file is still a counted fallback (`reason="io"`): first
/// boot is a cold boot.
#[must_use]
pub fn restore_or_fallback(path: &Path, expected_fingerprint: u64) -> Option<PipelineSnapshot> {
    match PipelineSnapshot::read_file(path, expected_fingerprint) {
        Ok(snapshot) => Some(snapshot),
        Err(err) => {
            restore_fallback(&err);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_litho::Process;
    use svt_stdcell::expand_library;

    fn small_library() -> Library {
        let full = Library::svt90();
        let cells: Vec<_> = full
            .cells()
            .iter()
            .filter(|c| matches!(c.name(), "INVX1" | "NAND2X1"))
            .cloned()
            .collect();
        Library::from_cells("svt90_sub", cells)
    }

    #[test]
    fn fingerprint_tracks_engines_options_and_library() {
        let sim = Process::nm90().simulator();
        let lib = small_library();
        let opts = ExpandOptions::fast();
        let fp = stack_fingerprint(&sim, &lib, &opts);
        // Stable across calls and thread-count choices.
        assert_eq!(fp, stack_fingerprint(&sim, &lib, &opts));
        let threaded = ExpandOptions {
            threads: Some(1),
            ..opts.clone()
        };
        assert_eq!(fp, stack_fingerprint(&sim, &lib, &threaded));
        // Sensitive to options and library shape.
        assert_ne!(fp, stack_fingerprint(&sim, &lib, &ExpandOptions::default()));
        assert_ne!(fp, stack_fingerprint(&sim, &Library::svt90(), &opts));
    }

    #[test]
    fn snapshot_round_trips_and_gates_on_fingerprint() {
        let sim = Process::nm90().simulator();
        let lib = small_library();
        let opts = ExpandOptions::fast();
        let expanded = expand_library(&lib, &sim, &opts).unwrap();
        let fp = stack_fingerprint(&sim, &lib, &opts);

        let snap = PipelineSnapshot::capture(&expanded, None, None);
        let bytes = snap.to_bytes(fp);
        let back = PipelineSnapshot::from_bytes(&bytes, fp).unwrap();
        assert_eq!(back, snap);
        assert!(back.fem.is_none());
        assert!(!back.expand_caches.pairs.is_empty());

        // A different stack refuses the container before touching payload
        // sections.
        let err = PipelineSnapshot::from_bytes(&bytes, fp ^ 1).unwrap_err();
        assert_eq!(err.reason(), "fingerprint");
    }

    #[test]
    fn corruption_matrix_falls_back_with_typed_reasons() {
        let sim = Process::nm90().simulator();
        let lib = small_library();
        let opts = ExpandOptions::fast();
        let expanded = expand_library(&lib, &sim, &opts).unwrap();
        let fp = stack_fingerprint(&sim, &lib, &opts);
        let good = PipelineSnapshot::capture(&expanded, None, None).to_bytes(fp);

        // Every way a file can rot on disk, with the reason label the
        // fallback counter must carry. Header fields are not covered by
        // the payload checksum, so each tampering trips its own check.
        let truncated = good[..good.len() / 2].to_vec();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        let mut future_version = good.clone();
        future_version[8..12].copy_from_slice(&(svt_snap::FORMAT_VERSION + 1).to_le_bytes());
        let mut stale_fingerprint = good.clone();
        stale_fingerprint[16] ^= 0xff;
        let mut flipped_payload = good.clone();
        let last = flipped_payload.len() - 1;
        flipped_payload[last] ^= 0xff;

        let counters = family_counter!("snap.restore_fallback", &["reason"]);
        let dir = std::env::temp_dir().join(format!("svt_snap_matrix_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cases: [(&str, &[u8]); 5] = [
            ("truncated", &truncated),
            ("bad_magic", &bad_magic),
            ("version", &future_version),
            ("fingerprint", &stale_fingerprint),
            ("checksum", &flipped_payload),
        ];
        for (reason, bytes) in cases {
            let path = dir.join(format!("{reason}.svtsnap"));
            std::fs::write(&path, bytes).unwrap();
            let before = counters.with(&[reason]).get();
            assert!(
                restore_or_fallback(&path, fp).is_none(),
                "tampered `{reason}` container must not restore"
            );
            assert_eq!(
                counters.with(&[reason]).get(),
                before + 1,
                "fallback must count reason `{reason}`"
            );
        }
        std::fs::remove_dir_all(&dir).ok();

        // The untampered bytes still restore — the matrix broke the
        // copies, not the capture.
        assert!(PipelineSnapshot::from_bytes(&good, fp).is_ok());
    }

    #[test]
    fn fallback_helper_counts_reasons() {
        let counters = family_counter!("snap.restore_fallback", &["reason"]);
        let io_before = counters.with(&["io"]).get();
        let absent = std::env::temp_dir().join("svt_snap_core_absent.svtsnap");
        assert!(restore_or_fallback(&absent, 1).is_none());
        assert_eq!(counters.with(&["io"]).get(), io_before + 1);

        // Corrupt bytes on disk: checksum fallback.
        let dir = std::env::temp_dir().join(format!("svt_snap_core_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.svtsnap");
        let sim = Process::nm90().simulator();
        let lib = small_library();
        let opts = ExpandOptions::fast();
        let expanded = expand_library(&lib, &sim, &opts).unwrap();
        let fp = stack_fingerprint(&sim, &lib, &opts);
        let mut bytes = PipelineSnapshot::capture(&expanded, None, None).to_bytes(fp);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let checksum_before = counters.with(&["checksum"]).get();
        assert!(restore_or_fallback(&path, fp).is_none());
        assert_eq!(counters.with(&["checksum"]).get(), checksum_before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
