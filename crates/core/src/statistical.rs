//! Statistical timing with systematic-variation aware gate-length
//! distributions — the paper's §6 future work ("statistical timing
//! methodology with more realistic gate length distribution based on
//! iso-dense attributes and proximity spatial information, as opposed to
//! the simplistic Gaussian distribution").
//!
//! Two Monte-Carlo models are provided:
//!
//! * [`GateLengthModel::SimplisticGaussian`] — every device draws
//!   independently from the same `N(L_nom, σ)`, the strawman the paper
//!   criticizes;
//! * [`GateLengthModel::SystematicAware`] — each device starts from its
//!   in-context printed CD, shares a die-level defocus draw whose CD
//!   effect is *quadratic* with the smile/frown sign of the device's
//!   class (Bossung behaviour), shares a die-level dose draw, and adds
//!   only the residual random component.
//!
//! The two models bracket reality from opposite sides. The independent
//! Gaussian is *optimistic*: uncorrelated per-device draws average out
//! along a timing path, so it under-predicts the delay spread. The aware
//! model carries the die-shared focus and dose draws as perfectly
//! correlated components (they do not average) yet still lands far inside
//! the corner spread, because corners assume every device sits at the full
//! ±Δ excursion simultaneously.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use svt_netlist::MappedNetlist;
use svt_place::Placement;
use svt_sta::{analyze, CellBinding, TimingOptions};
use svt_stdcell::{characterize, CellContext, CharacterizeOptions, ExpandedLibrary, Library};

use crate::flow::FlowError;
use crate::{classify_device, DeviceClass, VariationBudget};

/// The per-device gate-length sampling model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateLengthModel {
    /// Independent identical Gaussians around the drawn length.
    SimplisticGaussian,
    /// In-context nominal + signed shared focus + shared dose + residual.
    SystematicAware,
}

/// Monte-Carlo options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOptions {
    /// Sample count.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Variation budget shared with the corner flows.
    pub budget: VariationBudget,
    /// STA boundary conditions.
    pub timing: TimingOptions,
    /// Characterization options.
    pub characterize: CharacterizeOptions,
    /// Contacted pitch for device classification.
    pub contacted_pitch_nm: f64,
}

impl Default for MonteCarloOptions {
    fn default() -> MonteCarloOptions {
        MonteCarloOptions {
            samples: 200,
            seed: 7,
            budget: VariationBudget::default(),
            timing: TimingOptions::default(),
            characterize: CharacterizeOptions::default(),
            contacted_pitch_nm: 300.0,
        }
    }
}

/// The sampled circuit-delay distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayDistribution {
    /// Which model produced it.
    pub model: GateLengthModel,
    /// All sampled circuit delays (ns), sorted ascending.
    pub delays_ns: Vec<f64>,
}

impl DelayDistribution {
    /// Sample mean.
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution (the sampler never produces one).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        assert!(!self.delays_ns.is_empty(), "empty distribution");
        self.delays_ns.iter().sum::<f64>() / self.delays_ns.len() as f64
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_ns(&self) -> f64 {
        let m = self.mean_ns();
        let var = self
            .delays_ns
            .iter()
            .map(|d| (d - m) * (d - m))
            .sum::<f64>()
            / self.delays_ns.len() as f64;
        var.sqrt()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.delays_ns.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.delays_ns[idx]
    }

    /// The 0.1 %→99.9 % spread — the statistical analogue of the BC→WC
    /// corner spread.
    #[must_use]
    pub fn spread_ns(&self) -> f64 {
        self.quantile_ns(0.999) - self.quantile_ns(0.001)
    }

    /// Parametric timing yield at a clock period: the fraction of sampled
    /// dies whose circuit delay meets the period.
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution.
    #[must_use]
    pub fn yield_at(&self, clock_period_ns: f64) -> f64 {
        assert!(!self.delays_ns.is_empty(), "empty distribution");
        let meeting = self.delays_ns.partition_point(|&d| d <= clock_period_ns);
        meeting as f64 / self.delays_ns.len() as f64
    }
}

/// Monte-Carlo statistical timing over a placed design.
#[derive(Debug, Clone)]
pub struct MonteCarloSta<'a> {
    library: &'a Library,
    expanded: &'a ExpandedLibrary,
    options: MonteCarloOptions,
}

impl<'a> MonteCarloSta<'a> {
    /// Creates the sampler.
    #[must_use]
    pub fn new(
        library: &'a Library,
        expanded: &'a ExpandedLibrary,
        options: MonteCarloOptions,
    ) -> MonteCarloSta<'a> {
        MonteCarloSta {
            library,
            expanded,
            options,
        }
    }

    /// Samples the circuit-delay distribution under a gate-length model.
    ///
    /// # Errors
    ///
    /// Propagates placement-query, characterization, and STA failures.
    pub fn sample(
        &self,
        netlist: &MappedNetlist,
        placement: &Placement,
        model: GateLengthModel,
    ) -> Result<DelayDistribution, FlowError> {
        let opts = &self.options;
        let l_nom = opts.characterize.nominal_length_nm;
        let delta = opts.budget.delta_nm(l_nom);
        let lvar_pitch = opts.budget.lvar_pitch_nm(l_nom);
        let lvar_focus = opts.budget.lvar_focus_nm(l_nom);
        // 3σ conventions: the corner excursion is a 3σ event.
        let sigma_total = delta / 3.0;
        let residual = (delta - lvar_pitch - lvar_focus).max(0.0);
        let sigma_residual = residual / 3.0;

        // Per-instance context variants and device classes.
        let contexts = placement.instance_contexts(netlist, self.library)?;
        let sites = placement.device_sites(netlist, self.library)?;
        let mut classes: Vec<Vec<DeviceClass>> = netlist
            .instances()
            .iter()
            .map(|inst| {
                let n = self
                    .library
                    .cell(&inst.cell)
                    .map(|c| c.layout().devices().len())
                    .unwrap_or(0);
                vec![DeviceClass::Isolated; n]
            })
            .collect();
        for s in &sites {
            classes[s.instance][s.device.0] = classify_device(
                s.left_space,
                s.right_space,
                opts.contacted_pitch_nm,
                s.span_abs.1 - s.span_abs.0,
            );
        }

        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let mut delays = Vec::with_capacity(opts.samples);
        for _ in 0..opts.samples {
            // Die-shared draws for the aware model.
            let z = normal(&mut rng); // defocus in σ units, z_corner = 3σ
            let focus_frac = (z / 3.0).clamp(-1.0, 1.0);
            // Bossung: CD shift grows quadratically with defocus and is
            // capped at lvar_focus at the corner.
            let focus_shift = lvar_focus * focus_frac * focus_frac;
            let dose = normal(&mut rng) / 3.0; // shared dose in corner units
            let dose_shift = 0.25 * lvar_pitch * dose.clamp(-1.0, 1.0);

            let mut cells = Vec::with_capacity(netlist.instances().len());
            for (idx, inst) in netlist.instances().iter().enumerate() {
                let cell =
                    self.library
                        .cell(&inst.cell)
                        .ok_or_else(|| FlowError::Inconsistent {
                            reason: format!("unknown cell `{}`", inst.cell),
                        })?;
                let n = cell.layout().devices().len();
                let lengths: Vec<f64> = match model {
                    GateLengthModel::SimplisticGaussian => (0..n)
                        .map(|_| l_nom + sigma_total * normal(&mut rng))
                        .collect(),
                    GateLengthModel::SystematicAware => {
                        let variant = self
                            .expanded
                            .variant(&inst.cell, contexts[idx])
                            .or_else(|| self.expanded.variant(&inst.cell, CellContext::default()))
                            .ok_or_else(|| FlowError::Inconsistent {
                                reason: format!("no variant for `{}`", inst.cell),
                            })?;
                        (0..n)
                            .map(|d| {
                                let base = variant.device_lengths_nm[d];
                                let signed_focus = match classes[idx][d] {
                                    DeviceClass::Dense => focus_shift,
                                    DeviceClass::Isolated => -focus_shift,
                                    DeviceClass::SelfCompensated => 0.0,
                                };
                                base + signed_focus + dose_shift + sigma_residual * normal(&mut rng)
                            })
                            .collect()
                    }
                };
                let lengths: Vec<f64> = lengths.into_iter().map(|l| l.max(10.0)).collect();
                cells.push(characterize(cell, &lengths, "mc", opts.characterize)?);
            }
            let binding = CellBinding::new(netlist, cells)?;
            let report = analyze(netlist, &binding, &opts.timing)?;
            delays.push(report.circuit_delay_ns());
        }
        delays.sort_by(f64::total_cmp);
        Ok(DelayDistribution {
            model,
            delays_ns: delays,
        })
    }
}

/// A standard-normal draw via Box–Muller.
fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_litho::Process;
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
    use svt_place::{place, PlacementOptions};
    use svt_stdcell::{expand_library, ExpandOptions};

    fn setup() -> (
        Library,
        ExpandedLibrary,
        MappedNetlist,
        svt_place::Placement,
    ) {
        let library = Library::svt90();
        let sim = Process::nm90().simulator();
        let expanded =
            expand_library(&library, &sim, &ExpandOptions::fast()).expect("expansion succeeds");
        let netlist = generate_benchmark(&BenchmarkProfile::custom("mc", 6, 3, 30, 5));
        let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
        let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");
        (library, expanded, mapped, placement)
    }

    fn mc_options(samples: usize) -> MonteCarloOptions {
        MonteCarloOptions {
            samples,
            ..MonteCarloOptions::default()
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (library, expanded, mapped, placement) = setup();
        let mc = MonteCarloSta::new(&library, &expanded, mc_options(16));
        let a = mc
            .sample(&mapped, &placement, GateLengthModel::SimplisticGaussian)
            .expect("samples");
        let b = mc
            .sample(&mapped, &placement, GateLengthModel::SimplisticGaussian)
            .expect("samples");
        assert_eq!(a, b);
    }

    #[test]
    fn aware_distribution_sits_between_gaussian_and_corners() {
        let (library, expanded, mapped, placement) = setup();
        let mc = MonteCarloSta::new(&library, &expanded, mc_options(150));
        let gaussian = mc
            .sample(&mapped, &placement, GateLengthModel::SimplisticGaussian)
            .expect("samples");
        let aware = mc
            .sample(&mapped, &placement, GateLengthModel::SystematicAware)
            .expect("samples");
        // Corner spread: every device simultaneously at ±Δ.
        let opts = mc_options(1);
        let corners = opts.budget.traditional_corners(90.0);
        let delay_at = |l: f64| {
            let b = CellBinding::uniform_scaled(&mapped, &library, l).expect("binding");
            analyze(&mapped, &b, &opts.timing)
                .expect("sta")
                .circuit_delay_ns()
        };
        let corner_spread = delay_at(corners.wc_nm) - delay_at(corners.bc_nm);
        // Both statistical models stay well inside the corner spread —
        // corners assume all devices at ±Δ simultaneously.
        for d in [&gaussian, &aware] {
            assert!(
                d.spread_ns() < 0.8 * corner_spread,
                "{:?} spread {:.4} should sit well inside the corner spread {:.4}",
                d.model,
                d.spread_ns(),
                corner_spread
            );
        }
        // The two models are distinct distributions: the aware one is
        // shifted by the in-context printed CDs.
        assert!(
            (gaussian.mean_ns() - aware.mean_ns()).abs() > 1e-4,
            "context must shift the aware mean: {:.4} vs {:.4}",
            gaussian.mean_ns(),
            aware.mean_ns()
        );
        // And they are the same order of magnitude — neither collapses.
        let ratio = aware.spread_ns() / gaussian.spread_ns();
        assert!((0.3..3.0).contains(&ratio), "spread ratio {ratio:.2}");
    }

    #[test]
    fn distribution_statistics_are_consistent() {
        let (library, expanded, mapped, placement) = setup();
        let mc = MonteCarloSta::new(&library, &expanded, mc_options(64));
        let d = mc
            .sample(&mapped, &placement, GateLengthModel::SystematicAware)
            .expect("samples");
        assert_eq!(d.delays_ns.len(), 64);
        assert!(d.delays_ns.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(d.quantile_ns(0.0) <= d.mean_ns());
        assert!(d.mean_ns() <= d.quantile_ns(1.0));
        assert!(d.spread_ns() >= 0.0);
        assert!(d.std_ns() > 0.0);
    }

    #[test]
    fn yield_is_monotone_in_the_clock() {
        let d = DelayDistribution {
            model: GateLengthModel::SimplisticGaussian,
            delays_ns: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(d.yield_at(0.5), 0.0);
        assert_eq!(d.yield_at(2.0), 0.5);
        assert_eq!(d.yield_at(10.0), 1.0);
        assert!(d.yield_at(2.5) <= d.yield_at(3.5));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_validates_input() {
        let d = DelayDistribution {
            model: GateLengthModel::SimplisticGaussian,
            delays_ns: vec![1.0, 2.0],
        };
        let _ = d.quantile_ns(1.5);
    }
}
