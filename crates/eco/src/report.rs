use svt_core::SignoffComparison;
use svt_obs::audit::DeltaAudit;

/// One changed timing endpoint at one corner.
///
/// With a fixed clock period the slack of an endpoint is
/// `period − arrival`, so the slack delta equals the arrival *decrease*:
/// positive [`EndpointDelta::slack_delta_ns`] means the edit made the
/// path faster at this corner. The arrival values are the derate-free
/// corner arrivals straight from the STA reports, compared bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointDelta {
    /// Endpoint (primary output) name.
    pub endpoint: String,
    /// Corner name (`traditional-bc` … `aware-wc`, audit naming).
    pub corner: String,
    /// Arrival before the edit, ns.
    pub arrival_before_ns: f64,
    /// Arrival after the edit, ns.
    pub arrival_after_ns: f64,
}

impl EndpointDelta {
    /// Slack movement at a fixed required time: `before − after` of the
    /// arrival; positive = the endpoint got faster.
    #[must_use]
    pub fn slack_delta_ns(&self) -> f64 {
        self.arrival_before_ns - self.arrival_after_ns
    }
}

/// What one [`EcoEdit`](crate::EcoEdit) changed, as measured by the
/// incremental re-sign-off.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// Description of the applied edit.
    pub edit: String,
    /// Rows whose device sites were re-extracted.
    pub rows_extracted: Vec<usize>,
    /// Instances re-characterized (litho dirt): the edited instance plus
    /// every neighbor inside the radius of influence whose context or
    /// device classes changed.
    pub recharacterized: Vec<usize>,
    /// Through-pitch CD cache rows dropped by the targeted invalidation.
    pub pitch_rows_invalidated: usize,
    /// Total instances re-evaluated across all six corners' forward
    /// cones.
    pub forward_instances: usize,
    /// Total nets with recomputed required times across all six corners'
    /// backward cones.
    pub backward_nets: usize,
    /// Changed endpoint/corner pairs, bit-exact, audit corner order then
    /// endpoint order.
    pub endpoint_deltas: Vec<EndpointDelta>,
    /// The Table 2 comparison before the edit.
    pub before: SignoffComparison,
    /// The Table 2 comparison after the edit.
    pub after: SignoffComparison,
    /// The audit delta; splices bit-exactly into the pre-edit audit
    /// trail.
    pub delta_audit: DeltaAudit,
}

impl DeltaReport {
    /// Movement of the traditional-vs-aware spread gap: change in
    /// `traditional spread − aware spread`, ns. Positive means the aware
    /// methodology buys *more* spread reduction after the edit.
    #[must_use]
    pub fn spread_gap_delta_ns(&self) -> f64 {
        let gap_after = self.after.traditional.spread_ns() - self.after.aware.spread_ns();
        let gap_before = self.before.traditional.spread_ns() - self.before.aware.spread_ns();
        gap_after - gap_before
    }

    /// Change in the headline `uncertainty_reduction_pct`, percentage
    /// points.
    #[must_use]
    pub fn uncertainty_reduction_delta_pct(&self) -> f64 {
        self.after.uncertainty_reduction_pct() - self.before.uncertainty_reduction_pct()
    }

    /// Whether the edit changed no audited timing value at all.
    #[must_use]
    pub fn is_timing_noop(&self) -> bool {
        self.endpoint_deltas.is_empty() && self.delta_audit.is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_delta_is_arrival_decrease() {
        let d = EndpointDelta {
            endpoint: "po0".into(),
            corner: "aware-wc".into(),
            arrival_before_ns: 1.25,
            arrival_after_ns: 1.10,
        };
        assert!((d.slack_delta_ns() - 0.15).abs() < 1e-12);
    }
}
