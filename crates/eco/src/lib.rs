//! Incremental ECO re-sign-off for the systematic-variation aware timing
//! flow.
//!
//! A completed [`svt_core::SignoffFlow::run_with_provenance`] run leaves
//! behind everything the sign-off knows: six bound corner analyses with
//! full STA state, per-instance placement contexts and device classes,
//! the Table 2 comparison, and the audit trail. An [`EcoSession`] wraps
//! that baseline and accepts typed [`EcoEdit`]s — cell swaps, drive
//! resizes, spacing adjustments, and instance moves. Each edit is
//! re-signed-off *incrementally*, in two dirt passes:
//!
//! * **Litho dirt** — the paper's 600 nm radius of influence bounds how
//!   far a geometry change can reach: every context-bin threshold
//!   (400/600 nm) and the iso/dense classification threshold
//!   (`space + L <` 300 nm contacted pitch) lies at or below
//!   [`ROI_NM`], so only same-row instances whose footprint falls within
//!   ±600 nm of the edited geometry can change placement context or
//!   device class. The session re-extracts exactly the touched rows
//!   ([`svt_place::Placement::device_sites_in_rows`] is bit-identical to
//!   the full-design extraction), diffs contexts and classes inside the
//!   window, recharacterizes only the changed instances (memoized per
//!   `(cell, context, classes, corner)` in an [`svt_exec::MemoCache`]),
//!   and drops exactly the invalidated through-pitch CD rows via
//!   [`svt_stdcell::invalidate_pitch_pairs`].
//! * **Timing dirt** — the rebound instances seed
//!   [`svt_sta::analyze_incremental`], which re-propagates arrivals only
//!   through the forward fan-out cone and required times only through the
//!   fan-in cone, per corner, across the `svt-exec` worker pool.
//!
//! The result of each edit is a [`DeltaReport`]: changed endpoints with
//! per-corner slack deltas, the traditional-vs-aware spread movement, and
//! a [`svt_obs::audit::DeltaAudit`] that splices bit-exactly into the
//! full audit trail. The whole path is *provably equivalent* to a
//! from-scratch rerun: `tests/differential.rs` applies random edit
//! sequences and asserts the incremental state — corner delays, audit
//! renders, `uncertainty_reduction_pct` — bit-identical to a full rebuild
//! across `SVT_THREADS` settings.
//!
//! # Examples
//!
//! See [`EcoSession`] for an end-to-end swap-and-re-sign-off example.

#![warn(missing_docs)]

mod edit;
mod error;
mod report;
mod session;

pub use edit::EcoEdit;
pub use error::EcoError;
pub use report::{DeltaReport, EndpointDelta};
pub use session::{EcoSession, ROI_NM};
