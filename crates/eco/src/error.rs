use std::error::Error;
use std::fmt;

use svt_core::FlowError;
use svt_netlist::NetlistError;
use svt_place::PlaceError;
use svt_sta::StaError;

/// Errors of the incremental re-sign-off engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcoError {
    /// The underlying sign-off flow failed.
    Flow(FlowError),
    /// Incremental timing analysis failed.
    Sta(StaError),
    /// A netlist edit was rejected.
    Netlist(NetlistError),
    /// A placement edit was rejected.
    Place(PlaceError),
    /// The edit itself is malformed or geometrically illegal; nothing was
    /// mutated.
    InvalidEdit {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::Flow(e) => write!(f, "sign-off flow failed: {e}"),
            EcoError::Sta(e) => write!(f, "incremental timing failed: {e}"),
            EcoError::Netlist(e) => write!(f, "netlist edit rejected: {e}"),
            EcoError::Place(e) => write!(f, "placement edit rejected: {e}"),
            EcoError::InvalidEdit { reason } => write!(f, "invalid ECO edit: {reason}"),
        }
    }
}

impl Error for EcoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcoError::Flow(e) => Some(e),
            EcoError::Sta(e) => Some(e),
            EcoError::Netlist(e) => Some(e),
            EcoError::Place(e) => Some(e),
            EcoError::InvalidEdit { .. } => None,
        }
    }
}

impl From<FlowError> for EcoError {
    fn from(e: FlowError) -> EcoError {
        EcoError::Flow(e)
    }
}

impl From<StaError> for EcoError {
    fn from(e: StaError) -> EcoError {
        EcoError::Sta(e)
    }
}

impl From<NetlistError> for EcoError {
    fn from(e: NetlistError) -> EcoError {
        EcoError::Netlist(e)
    }
}

impl From<PlaceError> for EcoError {
    fn from(e: PlaceError) -> EcoError {
        EcoError::Place(e)
    }
}
