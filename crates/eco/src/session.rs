use std::collections::HashSet;

use std::sync::Arc;
use svt_core::{
    audit_corner_delays, classify_device_site, CornerTiming, DeviceClass, FlowProvenance,
    SignoffComparison, SignoffFlow,
};

use svt_exec::{try_par_map, MemoCache, ScratchPool};
use svt_netlist::MappedNetlist;
use svt_obs::audit::{AuditTrail, DeltaAudit, InstanceAudit, PathAudit};
use svt_place::{DeviceSite, Placement};
use svt_sta::{analyze_incremental_in, CellBinding, IncrementalStats, StaState};
use svt_stdcell::{invalidate_pitch_pairs, CharacterizedCell};

use crate::{DeltaReport, EcoEdit, EcoError, EndpointDelta};

/// The paper's radius of influence, nm: the farthest a geometry change
/// can move any through-pitch CD, context bin, or iso/dense
/// classification. Every binning threshold in the flow (400/600 nm
/// context bins, `space + L < 300` nm contacted-pitch classification)
/// lies at or below this radius, so a spacing that stays ≥ 600 nm on
/// both sides of an edit cannot change any derived quantity.
pub const ROI_NM: f64 = 600.0;

/// Audit corner names, slot order: traditional bc/nom/wc then aware.
const CORNER_NAMES: [&str; 6] = [
    "traditional-bc",
    "traditional-nom",
    "traditional-wc",
    "aware-bc",
    "aware-nom",
    "aware-wc",
];

/// Memo key of one aware characterization: characterization is a pure
/// function of (cell, placement context, device classes, corner), so the
/// cache is shared across instances and across edits.
type AwareKey = (String, String, Vec<DeviceClass>, u8);

/// An incremental re-sign-off session over a completed audited run.
///
/// The session owns mutable clones of the netlist and placement plus the
/// full [`FlowProvenance`] baseline; [`EcoSession::apply`] advances all
/// of it under one typed [`EcoEdit`] and returns the [`DeltaReport`] of
/// what changed. The state after any edit sequence is bit-identical to a
/// from-scratch [`SignoffFlow::run_with_provenance`] on the edited
/// design — the incremental path reuses the exact same characterization
/// and audit code and only *skips* work the radius of influence and the
/// timing cones prove unaffected.
///
/// # Examples
///
/// ```
/// use svt_core::{SignoffFlow, SignoffOptions};
/// use svt_eco::{EcoEdit, EcoSession};
/// use svt_litho::Process;
/// use svt_netlist::{bench, technology_map};
/// use svt_place::{place, PlacementOptions};
/// use svt_stdcell::{expand_library, ExpandOptions, Library};
///
/// let lib = Library::svt90();
/// let sim = Process::nm90().simulator();
/// let expanded = expand_library(&lib, &sim, &ExpandOptions::fast())?;
/// let n = bench::parse(
///     "# t\nINPUT(a)\nOUTPUT(z)\nOUTPUT(y)\nb = NOT(a)\nz = NOT(b)\ny = NAND(a, b)\n",
/// )?;
/// let mapped = technology_map(&n, &lib)?;
/// let placement = place(&mapped, &lib, &PlacementOptions::default())?;
/// let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
///
/// let mut session = EcoSession::new(&flow, &mapped, &placement)?;
/// let inst = session
///     .netlist()
///     .instances()
///     .iter()
///     .find(|i| i.cell == "INVX1")
///     .unwrap()
///     .name
///     .clone();
/// let delta = session.apply(&EcoEdit::ResizeCell {
///     instance: inst,
///     new_cell: "INVX2".into(),
/// })?;
/// assert!(delta.delta_audit.render_text().contains("resize"));
///
/// // The incremental state matches a from-scratch re-sign-off bit-for-bit.
/// let (full, _) = flow.run_audited(session.netlist(), session.placement())?;
/// assert_eq!(full, *session.comparison());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EcoSession<'a> {
    flow: &'a SignoffFlow<'a>,
    netlist: MappedNetlist,
    placement: Placement,
    provenance: FlowProvenance,
    aware_cache: MemoCache<AwareKey, Arc<CharacterizedCell>>,
    trad_cache: MemoCache<(String, u8), Arc<CharacterizedCell>>,
    /// Bump arenas for the incremental analysis working set, reused
    /// across corners and edits.
    scratch: ScratchPool,
    /// Per-instance start offsets into `provenance.audit.instances` (one
    /// audit row per timing arc); rebuilt if a swap changes an arc count.
    audit_offsets: Vec<usize>,
    edits: Vec<String>,
}

impl<'a> EcoSession<'a> {
    /// Signs off the design from scratch and opens a session over the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates [`SignoffFlow::run_with_provenance`] failures.
    pub fn new(
        flow: &'a SignoffFlow<'a>,
        netlist: &MappedNetlist,
        placement: &Placement,
    ) -> Result<EcoSession<'a>, EcoError> {
        let provenance = flow.run_with_provenance(netlist, placement)?;
        EcoSession::with_baseline(flow, netlist.clone(), placement.clone(), provenance)
    }

    /// Opens a session over an already-computed baseline, avoiding a
    /// second full run when the caller holds one (benchmarks, replays).
    ///
    /// # Errors
    ///
    /// Returns [`EcoError::InvalidEdit`] when the provenance shape does
    /// not match the netlist (wrong design).
    pub fn with_baseline(
        flow: &'a SignoffFlow<'a>,
        netlist: MappedNetlist,
        placement: Placement,
        provenance: FlowProvenance,
    ) -> Result<EcoSession<'a>, EcoError> {
        let n = netlist.instances().len();
        if provenance.contexts.len() != n
            || provenance.classes.len() != n
            || provenance.traditional.len() != 3
            || provenance.aware.len() != 3
        {
            return Err(EcoError::InvalidEdit {
                reason: format!(
                    "baseline provenance does not match the netlist: {} contexts / {} class \
                     vectors for {n} instances",
                    provenance.contexts.len(),
                    provenance.classes.len()
                ),
            });
        }
        let audit_offsets = arc_row_offsets(&netlist, flow)?;
        Ok(EcoSession {
            flow,
            netlist,
            placement,
            provenance,
            aware_cache: MemoCache::default(),
            trad_cache: MemoCache::default(),
            scratch: ScratchPool::new(),
            audit_offsets,
            edits: Vec::new(),
        })
    }

    /// The current (post-edit) netlist.
    #[must_use]
    pub fn netlist(&self) -> &MappedNetlist {
        &self.netlist
    }

    /// The current (post-edit) placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The full provenance of the current state — bindings, STA states,
    /// contexts, classes, comparison, and audit.
    #[must_use]
    pub fn provenance(&self) -> &FlowProvenance {
        &self.provenance
    }

    /// The current Table 2 comparison.
    #[must_use]
    pub fn comparison(&self) -> &SignoffComparison {
        &self.provenance.comparison
    }

    /// The current full audit trail (delta audits splice into it).
    #[must_use]
    pub fn audit(&self) -> &AuditTrail {
        &self.provenance.audit
    }

    /// Descriptions of every edit applied so far, in order.
    #[must_use]
    pub fn edits(&self) -> &[String] {
        &self.edits
    }

    /// Applies one edit and incrementally re-signs-off the design.
    ///
    /// Litho dirt is bounded by [`ROI_NM`]: only the touched rows are
    /// re-extracted and only instances whose context or classes actually
    /// changed are re-characterized (memoized per cell/context/classes/
    /// corner). Timing dirt is bounded by the edit's fan-out and fan-in
    /// cones via [`svt_sta::analyze_incremental`], run across all six
    /// corners on the worker pool; traditional corners are skipped
    /// entirely when the cell master did not change.
    ///
    /// # Errors
    ///
    /// Returns [`EcoError::InvalidEdit`] — with the session untouched —
    /// when the edit names an unknown instance or cell, resizes across
    /// cell families, or would overlap another instance; propagates
    /// characterization and STA failures otherwise.
    pub fn apply(&mut self, edit: &EcoEdit) -> Result<DeltaReport, EcoError> {
        let _span = svt_obs::span("eco.apply");
        if svt_obs::enabled() {
            svt_obs::counter!("eco.edits").add(1);
        }
        let desc = edit.describe();

        // -- Validate everything before mutating anything. --------------
        let name = edit.instance().to_string();
        let idx = self
            .netlist
            .instances()
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| EcoError::InvalidEdit {
                reason: format!("unknown instance `{name}`"),
            })?;
        let placed = self
            .placement
            .of_instance(idx)
            .ok_or_else(|| EcoError::InvalidEdit {
                reason: format!("instance `{name}` is not placed"),
            })?;
        let (old_row, old_x) = (placed.row, placed.x_nm);
        let old_cell = self.netlist.instances()[idx].cell.clone();
        let old_w = self.cell_width(&old_cell)?;

        let (target_cell, target_row, target_x) = match edit {
            EcoEdit::SwapCell { new_cell, .. } => (Some(new_cell.clone()), old_row, old_x),
            EcoEdit::ResizeCell { new_cell, .. } => {
                if base_family(&old_cell) != base_family(new_cell) {
                    return Err(EcoError::InvalidEdit {
                        reason: format!(
                            "resize of `{name}` must stay in the `{}` family; `{new_cell}` is a \
                             different function (use SwapCell)",
                            base_family(&old_cell)
                        ),
                    });
                }
                (Some(new_cell.clone()), old_row, old_x)
            }
            EcoEdit::AdjustSpacing { dx_nm, .. } => (None, old_row, old_x + dx_nm),
            EcoEdit::MoveInstance { row, x_nm, .. } => (None, *row, *x_nm),
        };
        let new_cell = target_cell.unwrap_or_else(|| old_cell.clone());
        let cell_changed = new_cell != old_cell;
        let new_w = self.cell_width(&new_cell)?;
        if target_x < 0.0 {
            return Err(EcoError::InvalidEdit {
                reason: format!("target x {target_x} nm of `{name}` is negative"),
            });
        }
        if target_row >= self.placement.rows().len() {
            return Err(EcoError::InvalidEdit {
                reason: format!(
                    "target row {target_row} of `{name}` out of range ({} rows)",
                    self.placement.rows().len()
                ),
            });
        }
        self.check_fit(target_row, idx, target_x, new_w, &name)?;

        // -- Litho dirt: radius-of-influence window over touched rows. --
        let lito_span = svt_obs::span("eco.litho");
        let mut rows = vec![old_row, target_row];
        rows.sort_unstable();
        rows.dedup();
        let window_lo = old_x.min(target_x) - ROI_NM;
        let window_hi = (old_x + old_w).max(target_x + new_w) + ROI_NM;

        let pre_sites =
            self.placement
                .device_sites_in_rows(&rows, &self.netlist, self.flow.library())?;

        // Commit the edit. `swap_cell` re-validates pin compatibility and
        // mutates nothing on failure, so the session stays consistent.
        if cell_changed {
            self.netlist
                .swap_cell(&name, &new_cell, self.flow.library())?;
            self.placement.set_cell(idx, &new_cell)?;
        }
        if target_row != old_row {
            self.placement.relocate(idx, target_row, target_x)?;
        } else if target_x != old_x {
            self.placement.move_within_row(idx, target_x)?;
        }

        // Re-extract exactly the touched rows (bit-identical to the slice
        // of a full-design extraction) and diff contexts and classes.
        let post_sites =
            self.placement
                .device_sites_in_rows(&rows, &self.netlist, self.flow.library())?;
        let new_contexts =
            self.placement
                .instance_contexts_in_rows(&rows, &self.netlist, self.flow.library())?;
        let mut dirty: Vec<usize> = Vec::new();
        for &(i, ctx) in &new_contexts {
            let classes = classes_of(i, &post_sites, self.flow);
            let changed =
                ctx != self.provenance.contexts[i] || classes != self.provenance.classes[i];
            if changed {
                // The radius of influence bounds how far an edit reaches;
                // dirt detection itself is diff-based, so this is an
                // invariant check, not a correctness input.
                debug_assert!(
                    footprint_intersects(
                        &self.placement,
                        &self.netlist,
                        self.flow,
                        i,
                        window_lo,
                        window_hi
                    ),
                    "ROI soundness violated: instance {i} changed outside the ±{ROI_NM} nm window"
                );
                self.evict_aware(i);
                self.provenance.contexts[i] = ctx;
                self.provenance.classes[i] = classes;
                dirty.push(i);
            }
            if i == idx && cell_changed && !changed {
                // Same context and classes, different master: still dirty.
                self.evict_aware(i);
                dirty.push(i);
            }
        }
        dirty.sort_unstable();

        // Targeted through-pitch CD invalidation: only spacing values
        // that appeared or disappeared in the touched rows.
        let changed_spacings = spacing_delta(&pre_sites, &post_sites);
        let pitch_rows_invalidated = if changed_spacings.is_empty() {
            0
        } else {
            invalidate_pitch_pairs(&changed_spacings)
        };
        if svt_obs::enabled() {
            svt_obs::counter!("eco.dirty.litho").add(dirty.len() as u64);
            svt_obs::counter!("eco.pitch.invalidated").add(pitch_rows_invalidated as u64);
        }
        drop(lito_span);

        // -- Rebind: recharacterize dirty instances per corner. ----------
        let char_span = svt_obs::span("eco.characterize");
        for (c, corner) in svt_core::Corner::ALL.into_iter().enumerate() {
            for &i in &dirty {
                let ctx = self.provenance.contexts[i];
                let classes = self.provenance.classes[i].clone();
                let key: AwareKey = (
                    self.netlist.instances()[i].cell.clone(),
                    ctx.code(),
                    classes.clone(),
                    c as u8,
                );
                let cell = match self.aware_cache.get(&key) {
                    Some(cached) => cached,
                    None => {
                        let fresh = Arc::new(self.flow.characterize_instance(
                            &self.netlist,
                            i,
                            ctx,
                            &classes,
                            corner,
                        )?);
                        self.aware_cache.insert(key, Arc::clone(&fresh));
                        fresh
                    }
                };
                self.provenance.aware[c]
                    .binding
                    .replace(&self.netlist, i, cell)?;
            }
        }
        if cell_changed {
            let l_nom = self.flow.options().characterize.nominal_length_nm;
            let corners = self.flow.options().budget.traditional_corners(l_nom);
            for (c, l) in [corners.bc_nm, corners.nom_nm, corners.wc_nm]
                .into_iter()
                .enumerate()
            {
                let key = (new_cell.clone(), c as u8);
                let cell = match self.trad_cache.get(&key) {
                    Some(cached) => cached,
                    None => {
                        let fresh = Arc::new(CellBinding::uniform_scaled_cell(
                            self.flow.library(),
                            &new_cell,
                            l,
                        )?);
                        self.trad_cache.insert(key, Arc::clone(&fresh));
                        fresh
                    }
                };
                self.provenance.traditional[c]
                    .binding
                    .replace(&self.netlist, idx, cell)?;
            }
        }
        drop(char_span);

        // -- Timing dirt: cone-limited update, all six corners in parallel.
        let timing_span = svt_obs::span("eco.timing");
        let arrivals_before: Vec<Vec<(String, f64)>> = self
            .corner_states()
            .map(|s| s.report().po_arrivals())
            .collect();
        // Traditional corners see only binding/load changes, which a cell
        // swap alone can cause; pure geometry edits are exact no-ops there.
        let trad_seeds: Vec<usize> = if cell_changed { vec![idx] } else { Vec::new() };
        let aware_seeds = dirty.clone();
        if svt_obs::enabled() {
            svt_obs::counter!("eco.dirty.seeds")
                .add((3 * trad_seeds.len() + 3 * aware_seeds.len()) as u64);
        }
        let jobs: Vec<(&CellBinding, &StaState, &[usize])> = self
            .provenance
            .traditional
            .iter()
            .map(|a| (&a.binding, &a.state, trad_seeds.as_slice()))
            .chain(
                self.provenance
                    .aware
                    .iter()
                    .map(|a| (&a.binding, &a.state, aware_seeds.as_slice())),
            )
            .collect();
        let netlist = &self.netlist;
        let timing = &self.flow.options().timing;
        let scratch_pool = &self.scratch;
        let results: Vec<(StaState, IncrementalStats)> =
            try_par_map(&jobs, |&(binding, prev, seeds)| -> Result<_, EcoError> {
                if seeds.is_empty() {
                    return Ok((prev.clone(), IncrementalStats::default()));
                }
                let scratch = scratch_pool.checkout();
                Ok(analyze_incremental_in(
                    netlist, binding, timing, prev, seeds, &scratch,
                )?)
            })?;
        drop(jobs);
        let mut forward_instances = 0;
        let mut backward_nets = 0;
        for (k, (state, stats)) in results.into_iter().enumerate() {
            forward_instances += stats.forward_instances;
            backward_nets += stats.backward_nets;
            if k < 3 {
                self.provenance.traditional[k].state = state;
            } else {
                self.provenance.aware[k - 3].state = state;
            }
        }
        drop(timing_span);

        // -- Rebuild the comparison and patch the audit in place through
        //    the same row builders as a full run (bit-identical by
        //    construction); only dirty rows are recomputed. --------------
        let audit_span = svt_obs::span("eco.audit");
        let traditional = self.flow.apply_residual_derate(CornerTiming {
            bc_ns: self.provenance.traditional[0].report().circuit_delay_ns(),
            nom_ns: self.provenance.traditional[1].report().circuit_delay_ns(),
            wc_ns: self.provenance.traditional[2].report().circuit_delay_ns(),
        });
        let aware = self.flow.apply_residual_derate(CornerTiming {
            bc_ns: self.provenance.aware[0].report().circuit_delay_ns(),
            nom_ns: self.provenance.aware[1].report().circuit_delay_ns(),
            wc_ns: self.provenance.aware[2].report().circuit_delay_ns(),
        });
        let comparison = SignoffComparison {
            testcase: self.netlist.name().to_string(),
            gates: self.netlist.instances().len(),
            traditional,
            aware,
        };
        let arrivals_after: Vec<Vec<(String, f64)>> = self
            .corner_states()
            .map(|s| s.report().po_arrivals())
            .collect();

        // Dirty instance rows, via the exact row builder the full
        // assembly concatenates. A swap that changes the arc count would
        // shift every later row, so that (theoretical for pin-compatible
        // masters) case falls back to a full reassembly.
        let mut changed_instances: Vec<(usize, InstanceAudit)> = Vec::new();
        let mut row_counts_stable = true;
        'patch: for &i in &dirty {
            let rows = self.flow.audit_instance_rows(
                &self.netlist,
                i,
                self.provenance.contexts[i],
                &self.provenance.classes[i],
            )?;
            let start = self.audit_offsets[i];
            let end = self
                .audit_offsets
                .get(i + 1)
                .copied()
                .unwrap_or(self.provenance.audit.instances.len());
            if rows.len() != end - start {
                row_counts_stable = false;
                break 'patch;
            }
            for (k, row) in rows.into_iter().enumerate() {
                if !row.bit_eq(&self.provenance.audit.instances[start + k]) {
                    changed_instances.push((start + k, row));
                }
            }
        }
        // Endpoint rows whose audited arrivals (trad bc/wc, aware bc/wc =
        // slots 0, 2, 3, 5) moved.
        let mut changed_paths: Vec<(usize, PathAudit)> = Vec::new();
        for k in 0..self.provenance.audit.paths.len() {
            let moved = [0usize, 2, 3, 5].into_iter().any(|slot| {
                arrivals_before[slot][k].1.to_bits() != arrivals_after[slot][k].1.to_bits()
            });
            if !moved {
                continue;
            }
            let row = self.flow.audit_path_row(
                &arrivals_after[0][k].0,
                arrivals_after[0][k].1,
                arrivals_after[2][k].1,
                arrivals_after[3][k].1,
                arrivals_after[5][k].1,
            );
            if !row.bit_eq(&self.provenance.audit.paths[k]) {
                changed_paths.push((k, row));
            }
        }

        let delta_audit = if row_counts_stable {
            let delta = DeltaAudit {
                testcase: self.netlist.name().to_string(),
                baseline_instances: self.provenance.audit.instances.len(),
                baseline_paths: self.provenance.audit.paths.len(),
                edits: vec![desc.clone()],
                corner_delays: audit_corner_delays(&comparison),
                changed_instances,
                changed_paths,
            };
            // Patch in place — no O(design) clone or reassembly.
            self.provenance.audit.corner_delays = delta.corner_delays.clone();
            for (row_idx, row) in &delta.changed_instances {
                self.provenance.audit.instances[*row_idx].clone_from(row);
            }
            for (row_idx, row) in &delta.changed_paths {
                self.provenance.audit.paths[*row_idx].clone_from(row);
            }
            if svt_obs::enabled() {
                svt_obs::counter!("audit.delta.changed_instances")
                    .add(delta.changed_instances.len() as u64);
                svt_obs::counter!("audit.delta.changed_paths")
                    .add(delta.changed_paths.len() as u64);
            }
            delta
        } else {
            let audit = self.flow.assemble_audit(
                &self.netlist,
                &self.provenance.contexts,
                &self.provenance.classes,
                [
                    self.provenance.traditional[0].report(),
                    self.provenance.traditional[2].report(),
                ],
                [
                    self.provenance.aware[0].report(),
                    self.provenance.aware[2].report(),
                ],
                &comparison,
            )?;
            let delta = audit.delta_from(&self.provenance.audit, vec![desc.clone()]);
            self.provenance.audit = audit;
            self.audit_offsets = arc_row_offsets(&self.netlist, self.flow)?;
            delta
        };

        let mut endpoint_deltas = Vec::new();
        for (k, after) in arrivals_after.iter().enumerate() {
            for ((po, before_ns), (po_after, after_ns)) in arrivals_before[k].iter().zip(after) {
                debug_assert_eq!(po, po_after);
                if before_ns.to_bits() != after_ns.to_bits() {
                    endpoint_deltas.push(EndpointDelta {
                        endpoint: po.clone(),
                        corner: CORNER_NAMES[k].to_string(),
                        arrival_before_ns: *before_ns,
                        arrival_after_ns: *after_ns,
                    });
                }
            }
        }
        drop(audit_span);

        let before = std::mem::replace(&mut self.provenance.comparison, comparison.clone());
        self.edits.push(desc.clone());
        Ok(DeltaReport {
            edit: desc,
            rows_extracted: rows,
            recharacterized: dirty,
            pitch_rows_invalidated,
            forward_instances,
            backward_nets,
            endpoint_deltas,
            before,
            after: comparison,
            delta_audit,
        })
    }

    /// All six corner states in audit slot order.
    fn corner_states(&self) -> impl Iterator<Item = &StaState> {
        self.provenance
            .traditional
            .iter()
            .chain(self.provenance.aware.iter())
            .map(|a| &a.state)
    }

    /// Drops the memoized aware characterizations keyed by instance `i`'s
    /// *current* (pre-update) context — targeted invalidation through the
    /// shared cache.
    fn evict_aware(&self, i: usize) {
        let cell = &self.netlist.instances()[i].cell;
        for c in 0..3u8 {
            let key: AwareKey = (
                cell.clone(),
                self.provenance.contexts[i].code(),
                self.provenance.classes[i].clone(),
                c,
            );
            self.aware_cache.remove(&key);
        }
    }

    fn cell_width(&self, cell: &str) -> Result<f64, EcoError> {
        self.flow
            .library()
            .cell(cell)
            .map(|c| c.layout().width_nm())
            .ok_or_else(|| EcoError::InvalidEdit {
                reason: format!("unknown cell `{cell}`"),
            })
    }

    /// Rejects a target footprint that would overlap any other instance
    /// in the row (abutment is legal, matching the placer's rule).
    fn check_fit(
        &self,
        row: usize,
        skip: usize,
        x_nm: f64,
        width_nm: f64,
        name: &str,
    ) -> Result<(), EcoError> {
        for &m in &self.placement.rows()[row].members {
            let p = &self.placement.placed()[m];
            if p.instance == skip {
                continue;
            }
            let other = &self.netlist.instances()[p.instance];
            let w = self.cell_width(&other.cell)?;
            if x_nm < p.x_nm + w - 1e-9 && p.x_nm < x_nm + width_nm - 1e-9 {
                return Err(EcoError::InvalidEdit {
                    reason: format!(
                        "`{name}` at [{x_nm}, {}] nm would overlap `{}` in row {row}",
                        x_nm + width_nm,
                        other.name
                    ),
                });
            }
        }
        Ok(())
    }
}

/// The device classes of instance `i` from a row-scoped site extraction,
/// device order — exactly what the full flow computes.
fn classes_of(i: usize, sites: &[DeviceSite], flow: &SignoffFlow<'_>) -> Vec<DeviceClass> {
    let mut classes: Vec<(usize, DeviceClass)> = sites
        .iter()
        .filter(|s| s.instance == i)
        .map(|s| (s.device.0, classify_device_site(s, flow.options())))
        .collect();
    classes.sort_by_key(|&(d, _)| d);
    classes.into_iter().map(|(_, c)| c).collect()
}

/// Spacing values (bit-exact) present before xor after the edit — the
/// only through-pitch table rows whose cached CDs can be stale.
fn spacing_delta(pre: &[DeviceSite], post: &[DeviceSite]) -> Vec<f64> {
    let collect = |sites: &[DeviceSite]| -> HashSet<u64> {
        sites
            .iter()
            .flat_map(|s| [s.left_space, s.right_space])
            .flatten()
            .map(f64::to_bits)
            .collect()
    };
    let a = collect(pre);
    let b = collect(post);
    let mut out: Vec<f64> = a
        .symmetric_difference(&b)
        .map(|&x| f64::from_bits(x))
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

/// Start offset of each instance's audit rows (one row per timing arc of
/// its current master), netlist order — the layout
/// [`SignoffFlow::assemble_audit`] concatenates.
fn arc_row_offsets(
    netlist: &MappedNetlist,
    flow: &SignoffFlow<'_>,
) -> Result<Vec<usize>, EcoError> {
    let mut offsets = Vec::with_capacity(netlist.instances().len());
    let mut acc = 0usize;
    for inst in netlist.instances() {
        offsets.push(acc);
        let cell = flow
            .library()
            .cell(&inst.cell)
            .ok_or_else(|| EcoError::InvalidEdit {
                reason: format!("unknown cell `{}`", inst.cell),
            })?;
        acc += cell.arcs().len();
    }
    Ok(offsets)
}

/// Whether instance `i`'s footprint intersects `[lo, hi]` nm.
fn footprint_intersects(
    placement: &Placement,
    netlist: &MappedNetlist,
    flow: &SignoffFlow<'_>,
    i: usize,
    lo: f64,
    hi: f64,
) -> bool {
    let Some(p) = placement.of_instance(i) else {
        return false;
    };
    let Some(cell) = flow.library().cell(&netlist.instances()[i].cell) else {
        return false;
    };
    let w = cell.layout().width_nm();
    p.x_nm <= hi && p.x_nm + w >= lo
}

/// The drive-strength-free cell family: `INVX4` → `INV`, `NAND2X1` →
/// `NAND2`. Names without a trailing `X<digits>` are their own family.
fn base_family(cell: &str) -> &str {
    match cell.rfind('X') {
        Some(i) if i + 1 < cell.len() && cell[i + 1..].bytes().all(|b| b.is_ascii_digit()) => {
            &cell[..i]
        }
        _ => cell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::SignoffOptions;
    use svt_litho::Process;
    use svt_netlist::{bench, technology_map};
    use svt_place::{place, PlacementOptions};
    use svt_stdcell::{expand_library, ExpandOptions, ExpandedLibrary, Library};

    fn setup() -> (Library, ExpandedLibrary) {
        let lib = Library::svt90();
        let expanded =
            expand_library(&lib, &Process::nm90().simulator(), &ExpandOptions::fast()).unwrap();
        (lib, expanded)
    }

    fn small_design(lib: &Library) -> (MappedNetlist, Placement) {
        let n = bench::parse(
            "# eco\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nc = NAND(a, b)\nd = NOT(c)\nz = NOT(d)\ny = NAND(c, d)\n",
        )
        .unwrap();
        let mapped = technology_map(&n, lib).unwrap();
        let placement = place(&mapped, lib, &PlacementOptions::default()).unwrap();
        (mapped, placement)
    }

    #[test]
    fn base_family_strips_drive_strength() {
        assert_eq!(base_family("INVX1"), "INV");
        assert_eq!(base_family("INVX12"), "INV");
        assert_eq!(base_family("NAND2X1"), "NAND2");
        assert_eq!(base_family("XOR"), "XOR");
        assert_eq!(base_family("FOOX"), "FOOX");
    }

    #[test]
    fn invalid_edits_are_rejected_without_mutation() {
        let (lib, expanded) = setup();
        let (mapped, placement) = small_design(&lib);
        let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let mut session = EcoSession::new(&flow, &mapped, &placement).unwrap();
        let baseline_audit = session.audit().render_text();

        let unknown = session.apply(&EcoEdit::AdjustSpacing {
            instance: "nope".into(),
            dx_nm: 10.0,
        });
        assert!(matches!(unknown, Err(EcoError::InvalidEdit { .. })));

        let inv = mapped
            .instances()
            .iter()
            .find(|i| i.cell == "INVX1")
            .unwrap()
            .name
            .clone();
        let cross_family = session.apply(&EcoEdit::ResizeCell {
            instance: inv.clone(),
            new_cell: "NAND2X1".into(),
        });
        assert!(matches!(cross_family, Err(EcoError::InvalidEdit { .. })));

        let off_grid = session.apply(&EcoEdit::MoveInstance {
            instance: inv.clone(),
            row: 99,
            x_nm: 0.0,
        });
        assert!(matches!(off_grid, Err(EcoError::InvalidEdit { .. })));

        // Land exactly on a neighbor: overlap is rejected before mutation.
        let victim = session
            .placement()
            .placed()
            .iter()
            .find(|p| {
                p.instance
                    != session
                        .netlist()
                        .instances()
                        .iter()
                        .position(|i| i.name == inv)
                        .unwrap()
            })
            .unwrap();
        let overlap = session.apply(&EcoEdit::MoveInstance {
            instance: inv,
            row: victim.row,
            x_nm: victim.x_nm,
        });
        assert!(matches!(overlap, Err(EcoError::InvalidEdit { .. })));

        assert_eq!(session.audit().render_text(), baseline_audit);
        assert!(session.edits().is_empty());
    }

    #[test]
    fn resize_matches_full_rerun_bit_for_bit() {
        let (lib, expanded) = setup();
        let (mapped, placement) = small_design(&lib);
        let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let mut session = EcoSession::new(&flow, &mapped, &placement).unwrap();
        let old_audit = session.audit().clone();
        let inv = mapped
            .instances()
            .iter()
            .find(|i| i.cell == "INVX1")
            .unwrap()
            .name
            .clone();

        let delta = session
            .apply(&EcoEdit::ResizeCell {
                instance: inv,
                new_cell: "INVX2".into(),
            })
            .unwrap();
        assert!(!delta.endpoint_deltas.is_empty());
        assert!(!delta.recharacterized.is_empty());

        let full = flow
            .run_with_provenance(session.netlist(), session.placement())
            .unwrap();
        assert_eq!(full.comparison, *session.comparison());
        assert_eq!(full.audit.render_text(), session.audit().render_text());
        assert_eq!(
            full.comparison.uncertainty_reduction_pct().to_bits(),
            session.comparison().uncertainty_reduction_pct().to_bits()
        );
        // The delta audit splices bit-exactly into the pre-edit audit.
        assert_eq!(delta.delta_audit.splice_into(&old_audit), full.audit);
    }

    #[test]
    fn far_move_is_a_timing_noop_but_tracked() {
        let (lib, expanded) = setup();
        let (mapped, placement) = small_design(&lib);
        let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let mut session = EcoSession::new(&flow, &mapped, &placement).unwrap();

        // Move the last instance of row 0 far to the right: every spacing
        // it leaves/creates is beyond the ROI, so nothing re-characterizes
        // unless a context genuinely changed — and either way the state
        // matches the full rerun bit-for-bit.
        let row0 = &session.placement().rows()[0];
        let last = session.placement().placed()[*row0.members.last().unwrap()].clone();
        let name = session.netlist().instances()[last.instance].name.clone();
        let delta = session
            .apply(&EcoEdit::MoveInstance {
                instance: name,
                row: 0,
                x_nm: last.x_nm + 5_000.0,
            })
            .unwrap();

        let full = flow
            .run_with_provenance(session.netlist(), session.placement())
            .unwrap();
        assert_eq!(full.comparison, *session.comparison());
        assert_eq!(full.audit.render_text(), session.audit().render_text());
        if delta.recharacterized.is_empty() {
            assert!(delta.is_timing_noop());
            assert_eq!(delta.forward_instances, 0);
        }
    }
}
