/// One typed engineering change order against a signed-off design.
///
/// Every edit preserves connectivity: swaps and resizes are restricted to
/// pin-name-compatible masters ([`svt_netlist::MappedNetlist::swap_cell`]
/// enforces this), and moves only change coordinates. That invariant is
/// what keeps the incremental timing update sound — the stored
/// topological order of the timing graph stays valid across any edit
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum EcoEdit {
    /// Re-master an instance to a pin-compatible cell (any function with
    /// identical pin names).
    SwapCell {
        /// Instance name in the netlist.
        instance: String,
        /// New library cell name.
        new_cell: String,
    },
    /// Re-master an instance to a different drive strength of the *same*
    /// logic function (e.g. `INVX1` → `INVX2`); rejected when the base
    /// cell family differs.
    ResizeCell {
        /// Instance name in the netlist.
        instance: String,
        /// New library cell name, same family.
        new_cell: String,
    },
    /// Shift an instance horizontally within its row by `dx_nm`,
    /// changing the neighbor spacings (and therefore possibly the
    /// iso/dense context) of everything within the radius of influence.
    AdjustSpacing {
        /// Instance name in the netlist.
        instance: String,
        /// Signed shift in nanometres.
        dx_nm: f64,
    },
    /// Re-place an instance at an absolute `(row, x)` location.
    MoveInstance {
        /// Instance name in the netlist.
        instance: String,
        /// Target row index.
        row: usize,
        /// Target lower-left x in nanometres.
        x_nm: f64,
    },
}

impl EcoEdit {
    /// The edited instance's name.
    #[must_use]
    pub fn instance(&self) -> &str {
        match self {
            EcoEdit::SwapCell { instance, .. }
            | EcoEdit::ResizeCell { instance, .. }
            | EcoEdit::AdjustSpacing { instance, .. }
            | EcoEdit::MoveInstance { instance, .. } => instance,
        }
    }

    /// A deterministic one-line description used in delta audits and
    /// reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            EcoEdit::SwapCell { instance, new_cell } => {
                format!("swap {instance} -> {new_cell}")
            }
            EcoEdit::ResizeCell { instance, new_cell } => {
                format!("resize {instance} -> {new_cell}")
            }
            EcoEdit::AdjustSpacing { instance, dx_nm } => {
                format!("adjust-spacing {instance} by {dx_nm} nm")
            }
            EcoEdit::MoveInstance {
                instance,
                row,
                x_nm,
            } => format!("move {instance} to row {row} x {x_nm} nm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_are_deterministic_and_name_the_edit() {
        let e = EcoEdit::SwapCell {
            instance: "u7".into(),
            new_cell: "INVX2".into(),
        };
        assert_eq!(e.describe(), "swap u7 -> INVX2");
        assert_eq!(e.instance(), "u7");
        let m = EcoEdit::MoveInstance {
            instance: "u9".into(),
            row: 2,
            x_nm: 1240.0,
        };
        assert_eq!(m.describe(), "move u9 to row 2 x 1240 nm");
        assert_eq!(
            EcoEdit::AdjustSpacing {
                instance: "u1".into(),
                dx_nm: -120.0
            }
            .describe(),
            "adjust-spacing u1 by -120 nm"
        );
    }
}
