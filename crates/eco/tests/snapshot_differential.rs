//! Differential proof that ECO deltas are identical on a snapshot-restored
//! stack.
//!
//! An `EcoSession` opened over a warm-start restore (`svt-snap`
//! container, see `docs/SNAPSHOT_FORMAT.md`) must produce bit-identical
//! [`DeltaReport`]s to a session opened over a cold rebuild: the memo
//! caches a snapshot preloads are invisible to results by construction,
//! and an edit applied on either side re-characterizes to the same bits.
//! Runs under `SVT_THREADS` ∈ {1, default}; all environment mutation
//! lives in this single `#[test]` because sibling tests in one binary
//! share the process environment.

use svt_core::snapshot::{stack_fingerprint, PipelineSnapshot};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_eco::{DeltaReport, EcoEdit, EcoSession};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{clear_expand_caches, expand_library, ExpandOptions, Library};

/// Deterministic edit candidates touching both re-characterization
/// (spacing changes shift contexts) and rebinding (cell swaps). Not
/// every candidate is legal on this placement (spacing moves can
/// overlap a neighbor); the cold session filters to the ones that
/// apply, and the warm session replays exactly those.
fn candidates(netlist: &svt_netlist::MappedNetlist) -> Vec<EcoEdit> {
    let mut out = Vec::new();
    for inst in netlist.instances().iter().take(8) {
        out.push(EcoEdit::AdjustSpacing {
            instance: inst.name.clone(),
            dx_nm: 120.0,
        });
    }
    if let Some(inv) = netlist.instances().iter().find(|i| i.cell == "INVX1") {
        out.push(EcoEdit::SwapCell {
            instance: inv.name.clone(),
            new_cell: "INVX2".to_string(),
        });
    }
    out
}

#[test]
fn eco_deltas_match_on_restored_stack() {
    let restore_threads = std::env::var("SVT_THREADS").ok();
    let library = Library::svt90();
    let sim = svt_litho::Process::nm90().simulator();
    let options = ExpandOptions::fast();
    let fp = stack_fingerprint(&sim, &library, &options);

    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &library).expect("techmap");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("place");
    let sequence = candidates(&mapped);

    for threads in [Some("1"), None] {
        match threads {
            Some(v) => std::env::set_var("SVT_THREADS", v),
            None => std::env::remove_var("SVT_THREADS"),
        }
        let label = format!("SVT_THREADS={}", threads.unwrap_or("default"));

        // Cold side: fresh caches, full build, edits applied.
        svt_litho::clear_litho_caches();
        clear_expand_caches();
        let expanded = expand_library(&library, &sim, &options).expect("expansion");
        let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
        let mut cold = EcoSession::new(&flow, &mapped, &placement).expect("cold session");
        let mut applied: Vec<(&EcoEdit, DeltaReport)> = Vec::new();
        for edit in &sequence {
            // Illegal draws (overlapping spacing moves) are skipped on
            // both sides; everything that lands cold must land warm.
            if let Ok(report) = cold.apply(edit) {
                applied.push((edit, report));
            }
        }
        assert!(
            applied.len() >= 2,
            "{label}: want at least a spacing edit and a swap to land, got {}",
            applied.len()
        );
        let cold_audit = svt_obs::audit::render_audit(cold.audit());

        // Warm side: capture before the edits (a server snapshots its
        // pristine warm stack), restore into cleared caches, reopen.
        let bytes = PipelineSnapshot::capture(&expanded, None, Some(&flow)).to_bytes(fp);
        drop(cold);
        drop(flow);
        clear_expand_caches();
        let restored = PipelineSnapshot::from_bytes(&bytes, fp).expect("restore");
        restored.preload_expand_caches();
        let warm_flow = SignoffFlow::new(&library, &restored.expanded, SignoffOptions::default());
        restored.preload_flow(&warm_flow);
        let mut warm = EcoSession::new(&warm_flow, &mapped, &placement).expect("warm session");
        for (i, (edit, cold_report)) in applied.iter().enumerate() {
            let warm_delta = warm.apply(edit).expect("warm edit applies");
            assert_eq!(
                &warm_delta, cold_report,
                "{label}: delta report {i} diverged on the restored stack"
            );
        }
        let warm_audit = svt_obs::audit::render_audit(warm.audit());
        assert_eq!(
            warm_audit.text, cold_audit.text,
            "{label}: post-edit audit text diverged"
        );
        assert_eq!(
            warm_audit.json, cold_audit.json,
            "{label}: post-edit audit json diverged"
        );
    }

    match restore_threads {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
}
