//! Differential proof of incremental/full equivalence.
//!
//! The ECO engine's core contract: after *any* legal edit sequence, the
//! session's state is bit-identical to throwing everything away and
//! re-running [`SignoffFlow::run_with_provenance`] on the edited netlist
//! and placement. This test applies a seeded random sequence of swaps,
//! resizes, spacing adjustments, and moves to a c432-scale design and,
//! after every successful edit, asserts
//!
//! * the six corner delays match bit-for-bit (`f64::to_bits`),
//! * `uncertainty_reduction_pct` matches bit-for-bit,
//! * the audit trail renders to byte-identical text *and* JSON, and
//! * the [`DeltaReport`]'s delta audit splices into the pre-edit audit
//!   to exactly the post-edit full audit.
//!
//! The whole scenario runs under `SVT_THREADS` ∈ {1, default} — thread
//! count is a performance knob, never a result knob, incremental or not.
//! All environment mutation lives in this single `#[test]` because
//! sibling tests in one binary share the process environment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_eco::{EcoEdit, EcoError, EcoSession};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{expand_library, ExpandOptions, Library};

/// Edits to land per scenario (invalid draws are skipped, not counted).
const EDITS: usize = 5;
/// Draw budget per scenario before giving up (never hit in practice).
const MAX_ATTEMPTS: usize = 200;

/// Pin-name-compatible masters of `cell`, excluding itself — the legal
/// `SwapCell` targets.
fn swap_candidates(library: &Library, cell: &str) -> Vec<String> {
    let mut pins: Vec<&str> = library
        .cells()
        .iter()
        .find(|c| c.name() == cell)
        .map(|c| c.pins().iter().map(|p| p.name.as_str()).collect())
        .unwrap_or_default();
    pins.sort_unstable();
    library
        .cells()
        .iter()
        .filter(|c| c.name() != cell)
        .filter(|c| {
            let mut other: Vec<&str> = c.pins().iter().map(|p| p.name.as_str()).collect();
            other.sort_unstable();
            other == pins
        })
        .map(|c| c.name().to_string())
        .collect()
}

/// Draws one random edit against the session's current state. Not every
/// draw is legal (moves may overlap); the caller skips `InvalidEdit`.
fn random_edit(rng: &mut SmallRng, session: &EcoSession<'_>, library: &Library) -> EcoEdit {
    let instances = session.netlist().instances();
    let idx = rng.gen_range(0..instances.len());
    let name = instances[idx].name.clone();
    let cell = instances[idx].cell.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            let cands = swap_candidates(library, &cell);
            if cands.is_empty() {
                EcoEdit::AdjustSpacing {
                    instance: name,
                    dx_nm: f64::from(rng.gen_range(-40..121)) * 10.0,
                }
            } else {
                EcoEdit::SwapCell {
                    instance: name,
                    new_cell: cands[rng.gen_range(0..cands.len())].clone(),
                }
            }
        }
        1 => {
            // Same-family candidates only (resize semantics).
            let family = |c: &str| c.rfind('X').map_or(c.to_string(), |i| c[..i].to_string());
            let cands: Vec<String> = swap_candidates(library, &cell)
                .into_iter()
                .filter(|c| family(c) == family(&cell))
                .collect();
            if cands.is_empty() {
                EcoEdit::AdjustSpacing {
                    instance: name,
                    dx_nm: f64::from(rng.gen_range(-40..121)) * 10.0,
                }
            } else {
                EcoEdit::ResizeCell {
                    instance: name,
                    new_cell: cands[rng.gen_range(0..cands.len())].clone(),
                }
            }
        }
        2 => EcoEdit::AdjustSpacing {
            instance: name,
            dx_nm: f64::from(rng.gen_range(-40..121)) * 10.0,
        },
        _ => EcoEdit::MoveInstance {
            instance: name,
            row: rng.gen_range(0..session.placement().rows().len()),
            x_nm: f64::from(rng.gen_range(0..1_501)) * 10.0,
        },
    }
}

/// Runs one full random-edit scenario and cross-checks every edit
/// against a from-scratch rebuild.
fn run_scenario(seed: u64, label: &str) {
    let lib = Library::svt90();
    let sim = svt_litho::Process::nm90().simulator();
    let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).expect("expansion");
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &lib).expect("techmap");
    let placement = place(&mapped, &lib, &PlacementOptions::default()).expect("place");
    let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
    let mut session = EcoSession::new(&flow, &mapped, &placement).expect("baseline");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut applied = 0;
    let mut attempts = 0;
    while applied < EDITS {
        attempts += 1;
        assert!(
            attempts < MAX_ATTEMPTS,
            "[{label}] could not draw {EDITS} legal edits"
        );
        let edit = random_edit(&mut rng, &session, &lib);
        let pre_audit = session.audit().clone();
        let delta = match session.apply(&edit) {
            Ok(delta) => delta,
            Err(EcoError::InvalidEdit { .. }) => continue,
            Err(e) => panic!("[{label}] edit {} failed: {e}", edit.describe()),
        };
        applied += 1;

        let full = flow
            .run_with_provenance(session.netlist(), session.placement())
            .expect("full rebuild");
        let ctx = format!("[{label}] after edit {applied} ({})", delta.edit);
        for (which, (inc, fresh)) in [
            (
                session.comparison().traditional.bc_ns,
                full.comparison.traditional.bc_ns,
            ),
            (
                session.comparison().traditional.nom_ns,
                full.comparison.traditional.nom_ns,
            ),
            (
                session.comparison().traditional.wc_ns,
                full.comparison.traditional.wc_ns,
            ),
            (
                session.comparison().aware.bc_ns,
                full.comparison.aware.bc_ns,
            ),
            (
                session.comparison().aware.nom_ns,
                full.comparison.aware.nom_ns,
            ),
            (
                session.comparison().aware.wc_ns,
                full.comparison.aware.wc_ns,
            ),
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(
                inc.to_bits(),
                fresh.to_bits(),
                "{ctx}: corner slot {which} diverged ({inc} vs {fresh})"
            );
        }
        assert_eq!(
            session.comparison().uncertainty_reduction_pct().to_bits(),
            full.comparison.uncertainty_reduction_pct().to_bits(),
            "{ctx}: uncertainty reduction diverged"
        );
        assert_eq!(
            session.audit().render_text(),
            full.audit.render_text(),
            "{ctx}: audit text diverged"
        );
        assert_eq!(
            session.audit().render_json(),
            full.audit.render_json(),
            "{ctx}: audit json diverged"
        );
        assert_eq!(
            delta.delta_audit.splice_into(&pre_audit),
            full.audit,
            "{ctx}: delta audit does not splice to the full audit"
        );
    }
    assert_eq!(session.edits().len(), EDITS);
}

#[test]
fn incremental_state_is_bit_identical_to_full_rebuild_across_threads() {
    let restore = std::env::var("SVT_THREADS").ok();

    for threads in [Some("1"), None] {
        match threads {
            Some(v) => std::env::set_var("SVT_THREADS", v),
            None => std::env::remove_var("SVT_THREADS"),
        }
        let label = format!("SVT_THREADS={}", threads.unwrap_or("default"));
        run_scenario(0xEC0, &label);
    }

    match restore {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
}
