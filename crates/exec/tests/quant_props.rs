//! Property tests of the quantized `f64` cache-key helpers.
//!
//! The memoization layer's correctness rests on three invariants:
//! every value in a bucket maps to the same representative (fill-order
//! independence), distinct buckets never collide, and degenerate floats
//! (`-0.0`, subnormals, non-finite) behave predictably.

use proptest::prelude::*;
use svt_exec::{qf64, quantize_f64, unquantize_f64};

/// Magnitude bound for quantized parameters: well past any nm / % / dose
/// value the pipeline quantizes, while the f64 ulp stays below the 1e-6
/// grid step (the grid loses meaning past ~4.5e9, where ulp > 1e-6).
const RANGE: f64 = 1e7;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// A bucket's representative re-quantizes into the same bucket, so
    /// computing on the representative (as the cache contract requires)
    /// is a fixed point.
    #[test]
    fn bucket_representative_is_a_fixed_point(x in -RANGE..RANGE) {
        let bucket = quantize_f64(x);
        let rep = unquantize_f64(bucket);
        prop_assert_eq!(quantize_f64(rep), bucket, "representative of {} moved buckets", x);
        // And the representative is within half a grid step of the input
        // (plus a few ulps of float error at the input's magnitude).
        let tol = 0.5e-6 + 4.0 * x.abs() * f64::EPSILON;
        prop_assert!((rep - x).abs() <= tol, "{} snapped to {}", x, rep);
    }

    /// Two values quantizing to the same bucket share one representative
    /// bit pattern — cache results cannot depend on which caller filled
    /// the entry.
    #[test]
    fn same_bucket_means_identical_representative(x in -RANGE..RANGE, jitter in -0.49f64..0.49) {
        let y = x + jitter * 1e-6;
        prop_assume!(quantize_f64(x) == quantize_f64(y));
        let rx = unquantize_f64(quantize_f64(x));
        let ry = unquantize_f64(quantize_f64(y));
        prop_assert_eq!(rx.to_bits(), ry.to_bits());
    }

    /// Distinct buckets never collide, and bucket order follows value
    /// order: the key space is a faithful 1e-6 grid.
    #[test]
    fn distinct_buckets_never_collide(
        a in -10_000_000_000_000i64..10_000_000_000_000,
        b in -10_000_000_000_000i64..10_000_000_000_000,
    ) {
        prop_assume!(a != b);
        let xa = unquantize_f64(a);
        let xb = unquantize_f64(b);
        prop_assert_eq!(quantize_f64(xa), a);
        prop_assert_eq!(quantize_f64(xb), b);
        prop_assert_ne!(quantize_f64(xa), quantize_f64(xb));
        prop_assert_eq!(a < b, xa < xb, "bucket order must follow value order");
    }

    /// Exact keys are injective on normal values up to the signed-zero
    /// fold: different bit patterns give different keys.
    #[test]
    fn exact_keys_are_injective(x in -RANGE..RANGE, y in -RANGE..RANGE) {
        prop_assume!(x != 0.0 && y != 0.0);
        if x.to_bits() == y.to_bits() {
            prop_assert_eq!(qf64(x), qf64(y));
        } else {
            prop_assert_ne!(qf64(x), qf64(y));
        }
    }
}

#[test]
fn signed_zero_folds_into_one_key_and_bucket() {
    assert_eq!(qf64(0.0), qf64(-0.0), "exact keys merge the two zeros");
    assert_eq!(quantize_f64(0.0), 0);
    assert_eq!(quantize_f64(-0.0), 0, "-0.0 lands in the zero bucket");
    assert_eq!(unquantize_f64(0).to_bits(), 0.0f64.to_bits());
}

#[test]
fn subnormals_land_in_the_zero_bucket() {
    let tiny = f64::MIN_POSITIVE; // smallest normal
    let subnormal = tiny / 2.0;
    assert!(subnormal > 0.0 && !subnormal.is_normal());
    assert_eq!(quantize_f64(subnormal), 0);
    assert_eq!(quantize_f64(-subnormal), 0);
    // Exact keys still distinguish them — they are nonzero bit patterns.
    assert_ne!(qf64(subnormal), qf64(0.0));
    assert_ne!(qf64(subnormal), qf64(-subnormal));
}

#[test]
fn quantize_rejects_nan() {
    let result = std::panic::catch_unwind(|| quantize_f64(f64::NAN));
    assert!(result.is_err(), "NaN must not silently share a bucket");
}

#[test]
fn quantize_rejects_infinities() {
    for x in [f64::INFINITY, f64::NEG_INFINITY] {
        let result = std::panic::catch_unwind(move || quantize_f64(x));
        assert!(result.is_err(), "{x} must not silently share a bucket");
    }
}
