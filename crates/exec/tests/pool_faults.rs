//! Fault-injection tests of the worker pool: panicking tasks, repeated
//! reuse after failure, and degenerate `SVT_THREADS` configurations.

use std::panic::catch_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

use svt_exec::{par_map_threads, resolve_threads, try_par_map_threads};

#[test]
fn panic_propagates_after_join_without_poisoning_pool() {
    let items: Vec<u32> = (0..64).collect();
    let started = AtomicUsize::new(0);
    let caught = catch_unwind(|| {
        par_map_threads(4, &items, |&x| {
            started.fetch_add(1, Ordering::Relaxed);
            assert!(x != 21, "injected failure");
            x * 2
        })
    });
    let payload = caught.expect_err("the task panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("injected failure"), "wrong payload: {msg}");
    // The panic came from a genuinely started task, and scheduling stopped
    // early rather than running the full input set to completion.
    assert!(started.load(Ordering::Relaxed) >= 1);

    // The pool is per-call state: failure leaves nothing poisoned, and the
    // very next call computes the full, correctly ordered result.
    let ok = par_map_threads(4, &items, |&x| x * 2);
    assert_eq!(ok, items.iter().map(|x| x * 2).collect::<Vec<u32>>());
}

#[test]
fn repeated_panics_never_wedge_the_pool() {
    let items: Vec<u32> = (0..16).collect();
    for round in 0..10 {
        let caught = catch_unwind(|| {
            par_map_threads(3, &items, |&x| {
                assert!(x != round % 16, "round {round}");
                x
            })
        });
        assert!(caught.is_err(), "round {round} should panic");
    }
    assert_eq!(par_map_threads(3, &items, |&x| x + 1).len(), 16);
}

#[test]
fn lower_index_panic_beats_higher_index_error() {
    // Items are claimed in index order, so a panic at a lower index than
    // any error runs before the error can short-circuit scheduling — it
    // must surface as a panic (sequential semantics), not be masked by the
    // later Err.
    let items: Vec<u32> = (0..32).collect();
    let caught = catch_unwind(|| {
        try_par_map_threads(4, &items, |&x| {
            if x == 2 {
                panic!("task panic");
            }
            if x == 20 {
                return Err("task error");
            }
            Ok(x)
        })
    });
    assert!(
        caught.is_err(),
        "panic must propagate even alongside errors"
    );
}

#[test]
fn oversubscribed_thread_counts_degrade_gracefully() {
    // Far more workers than items, and far more than cores: the pool must
    // clamp to the work available and still produce ordered output.
    let items: Vec<u64> = (0..7).collect();
    let out = par_map_threads(512, &items, |&x| x * x);
    assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);

    let empty: Vec<u64> = Vec::new();
    assert!(par_map_threads(512, &empty, |&x| x).is_empty());
}

#[test]
fn env_thread_overrides_fall_back_sanely() {
    // All SVT_THREADS mutation lives in this one test: integration tests
    // run in their own process, but sibling #[test] fns share it.
    let restore = std::env::var("SVT_THREADS").ok();

    // Zero is not a usable worker count: the env override is ignored and
    // resolution falls through to available parallelism (>= 1).
    std::env::set_var("SVT_THREADS", "0");
    assert!(resolve_threads(None) >= 1);

    // Garbage is ignored the same way.
    std::env::set_var("SVT_THREADS", "not-a-number");
    assert!(resolve_threads(None) >= 1);

    // A huge override is accepted (the pool clamps per call to the item
    // count), and the map still runs correctly.
    std::env::set_var("SVT_THREADS", "10000");
    assert_eq!(resolve_threads(None), 10000);
    let items: Vec<u32> = (0..5).collect();
    assert_eq!(
        par_map_threads(resolve_threads(None), &items, |&x| x + 1).len(),
        5
    );

    // Explicit overrides beat the environment.
    assert_eq!(resolve_threads(Some(2)), 2);

    match restore {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
}
