//! End-to-end watchdog test: arm it, run a pool batch with one task that
//! blows the deadline, and assert the stall is detected by the live
//! monitor thread, surfaced through the registry, and cleared once the
//! batch drains.
//!
//! Single `#[test]`: the armed flag, heartbeat slots, and stall counters
//! are process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use svt_exec::{par_map_threads, watchdog};

#[test]
fn stalled_pool_task_trips_the_watchdog_and_recovers() {
    assert!(!watchdog::armed(), "watchdog must default to disarmed");
    assert!(watchdog::status().healthy());

    // Fast tasks under a generous deadline never trip.
    watchdog::arm(Duration::from_secs(30));
    let items: Vec<u64> = (0..64).collect();
    let out = par_map_threads(4, &items, |&x| x + 1);
    assert_eq!(out, (1..65).collect::<Vec<u64>>());
    let baseline = watchdog::status();
    assert_eq!(baseline.stalled_now, 0);

    // One task wedges past a 20 ms deadline; the monitor thread (scanning
    // at quarter-deadline) must flag it *while the batch is running*.
    watchdog::arm(Duration::from_millis(20));
    let seen_stalled = AtomicBool::new(false);
    let out = par_map_threads(2, &[0u64, 1], |&x| {
        if x == 0 {
            // The wedged task: hold the heartbeat until the watchdog
            // verdict flips (bounded so a broken monitor fails the test
            // rather than hanging it).
            let hung_at = Instant::now();
            while watchdog::status().stalled_now == 0 && hung_at.elapsed() < Duration::from_secs(10)
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            seen_stalled.store(watchdog::status().stalled_now > 0, Ordering::Relaxed);
        }
        x * 10
    });
    assert_eq!(out, vec![0, 10], "results are unaffected by the detection");
    assert!(
        seen_stalled.load(Ordering::Relaxed),
        "monitor must flag the wedged task while it runs"
    );
    let tripped = watchdog::status();
    assert!(
        tripped.stall_events > baseline.stall_events,
        "cumulative stall counter must advance"
    );

    // Once the batch drains the next scan clears the gauge: stalled_now
    // is a live verdict, stall_events the durable record.
    let recovered_at = Instant::now();
    while watchdog::status().stalled_now > 0 && recovered_at.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovered = watchdog::status();
    assert_eq!(recovered.stalled_now, 0, "drained pool goes healthy again");
    assert!(recovered.healthy());
    assert_eq!(recovered.stall_events, tripped.stall_events);

    // The detection surfaced through the global registry too.
    let snap = svt_obs::registry().snapshot();
    let stall_counter = snap
        .counters
        .iter()
        .find(|(n, _)| n == "pool.stall_events")
        .map(|(_, v)| *v);
    assert!(
        stall_counter.is_some_and(|v| v >= 1),
        "pool.stall_events counter missing from snapshot: {:?}",
        snap.counters
    );
    assert!(
        snap.gauges.iter().any(|(n, _)| n == "pool.stalled"),
        "pool.stalled gauge missing from snapshot"
    );

    watchdog::disarm();
    assert!(watchdog::status().healthy());
}
