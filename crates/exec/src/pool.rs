//! Scoped worker pool with a deterministic `par_map` API.
//!
//! Design notes:
//!
//! * Workers are spawned per call inside `std::thread::scope`, so borrowed
//!   inputs work without `'static` bounds and no pool object needs to be
//!   kept alive between calls.
//! * Work is distributed dynamically through one shared atomic index;
//!   each result is written into the slot of its *input* index, so the
//!   output order is exactly the input order no matter how items were
//!   scheduled. Per-item computation is untouched, which keeps
//!   floating-point results bit-identical to the sequential path.
//! * A panicking task does not deadlock the pool: every task runs under
//!   `catch_unwind`, the first panic stops further scheduling, all workers
//!   are joined, and the panic is then resumed on the caller thread.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use svt_obs::{counter, gauge, histogram};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SVT_THREADS";

/// Resolves the worker count: explicit override, then `SVT_THREADS`, then
/// `available_parallelism()`, clamped to at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on the resolved number of worker threads.
///
/// Output `i` is always `f(items[i])`: results are written into
/// pre-indexed slots, so ordering matches the sequential loop exactly.
///
/// # Panics
///
/// If any task panics, the panic is resumed on the caller thread after all
/// workers have been joined (no deadlock, no lost worker).
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    par_map_threads(resolve_threads(None), items, f)
}

/// [`par_map`] with an explicit thread count (`<= 1` runs inline).
pub fn par_map_threads<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    match try_par_map_threads(threads, items, |item| Ok::<R, Never>(f(item))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible [`par_map`]: stops early on the first error *by input index*
/// (the same error a sequential `for` loop would have returned first).
///
/// # Errors
///
/// Returns the error produced by the lowest-indexed failing item.
pub fn try_par_map<T: Sync, R: Send, E: Send, F: Fn(&T) -> Result<R, E> + Sync>(
    items: &[T],
    f: F,
) -> Result<Vec<R>, E> {
    try_par_map_threads(resolve_threads(None), items, f)
}

/// [`try_par_map`] with an explicit thread count (`<= 1` runs inline).
pub fn try_par_map_threads<T: Sync, R: Send, E: Send, F: Fn(&T) -> Result<R, E> + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, E> {
    let n = items.len();
    let workers = threads.min(n);
    // Telemetry is sampled once per batch: when `SVT_TRACE=off` the whole
    // instrumentation collapses to this one relaxed load plus a branch, and
    // per-item work is untouched either way (results stay bit-identical).
    let telemetry = svt_obs::enabled();
    // Timeline recording is likewise sampled once per batch; it is active
    // only in Chrome mode, so the common paths pay nothing extra.
    let timeline = svt_obs::timeline_enabled();
    // Watchdog heartbeats, also sampled once per batch: disarmed (every
    // batch run) this is the one relaxed load, armed (daemons) each task
    // stamps its slot on entry and clears it on exit.
    let wd = crate::watchdog::armed();
    if telemetry {
        counter!("exec.pool.batches").incr();
        counter!("exec.pool.tasks").add(n as u64);
        gauge!("exec.pool.workers").set(i64::try_from(workers.max(1)).unwrap_or(i64::MAX));
    }
    if timeline {
        svt_obs::timeline::record(svt_obs::timeline::Phase::Begin, "exec.pool.batch");
    }
    let finish_batch = |out: Result<Vec<R>, E>| {
        if timeline {
            svt_obs::timeline::record(svt_obs::timeline::Phase::End, "exec.pool.batch");
        }
        out
    };
    if workers <= 1 {
        if !telemetry && !wd {
            return finish_batch(items.iter().map(f).collect());
        }
        let start = telemetry.then(Instant::now);
        let out: Result<Vec<R>, E> = items
            .iter()
            .map(|item| {
                if wd {
                    crate::watchdog::task_begin();
                }
                if timeline {
                    svt_obs::timeline::record(svt_obs::timeline::Phase::Begin, "exec.pool.task");
                }
                let r = f(item);
                if timeline {
                    svt_obs::timeline::record(svt_obs::timeline::Phase::End, "exec.pool.task");
                }
                if wd {
                    crate::watchdog::task_end();
                }
                r
            })
            .collect();
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            counter!("exec.pool.wall_ns").add(ns);
            counter!("exec.pool.busy_ns").add(ns);
        }
        return finish_batch(out);
    }

    // One slot per input index; workers only ever touch their own claimed
    // slots, the Mutex is for moving results across the scope boundary.
    let slots: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Lowest failing index seen so far; `n` means "none". Also doubles as
    // the early-exit signal: workers stop claiming past a known failure.
    let first_bad = AtomicUsize::new(n);
    // Nanoseconds workers spent inside `f`; only updated under telemetry.
    let busy_ns = AtomicU64::new(0);
    let batch_start = telemetry.then(Instant::now);

    let panic_payload = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| -> Result<(), Box<dyn std::any::Any + Send>> {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n || i > first_bad.load(Ordering::Acquire) {
                            return Ok(());
                        }
                        let task_start = telemetry.then(Instant::now);
                        if wd {
                            crate::watchdog::task_begin();
                        }
                        if timeline {
                            svt_obs::timeline::record(
                                svt_obs::timeline::Phase::Begin,
                                "exec.pool.task",
                            );
                        }
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        if timeline {
                            svt_obs::timeline::record(
                                svt_obs::timeline::Phase::End,
                                "exec.pool.task",
                            );
                        }
                        // After `catch_unwind`, so a panicking task still
                        // clears its heartbeat before the worker unwinds.
                        if wd {
                            crate::watchdog::task_end();
                        }
                        if let Some(start) = task_start {
                            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            histogram!("exec.pool.task_ns").record(ns);
                            busy_ns.fetch_add(ns, Ordering::Relaxed);
                        }
                        match outcome {
                            Ok(result) => {
                                if result.is_err() {
                                    first_bad.fetch_min(i, Ordering::AcqRel);
                                }
                                *slots[i].lock().expect("result slot poisoned") = Some(result);
                            }
                            Err(payload) => {
                                // Stop all scheduling and hand the panic to
                                // the caller, which resumes it only after
                                // every worker has been joined.
                                next.store(n, Ordering::Relaxed);
                                first_bad.fetch_min(i, Ordering::AcqRel);
                                return Err(payload);
                            }
                        }
                    }
                })
            })
            .collect();
        let mut payload = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) | Err(_) => {}
                Ok(Err(p)) => payload = Some(payload.unwrap_or(p)),
            }
        }
        payload
    });

    if let Some(start) = batch_start {
        let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let busy = busy_ns.load(Ordering::Relaxed);
        counter!("exec.pool.wall_ns").add(wall);
        counter!("exec.pool.busy_ns").add(busy);
        // Idle = worker-seconds not spent in `f`: scheduling overhead plus
        // tail latency while the last tasks drain.
        let idle = (wall.saturating_mul(workers as u64)).saturating_sub(busy);
        counter!("exec.pool.idle_ns").add(idle);
    }

    if let Some(payload) = panic_payload {
        if timeline {
            svt_obs::timeline::record(svt_obs::timeline::Phase::End, "exec.pool.batch");
        }
        resume_unwind(payload);
    }

    let bad = first_bad.load(Ordering::Acquire);
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        let value = slot.into_inner().expect("result slot poisoned");
        match value {
            Some(Ok(r)) if i < bad => out.push(r),
            Some(Err(e)) if i == bad => return finish_batch(Err(e)),
            // Items at or past a failure may legitimately be unevaluated.
            _ if i >= bad => break,
            _ => unreachable!("slot {i} missing despite no earlier failure"),
        }
    }
    if bad < n {
        // The failing item bailed before its slot was filled only in the
        // panic path, which was resumed above; reaching here means the
        // error slot existed and returned already.
        unreachable!("failure at {bad} produced no error value");
    }
    finish_batch(Ok(out))
}

/// Fallible indexed map over `0..n` in cache-friendly contiguous chunks.
///
/// Instead of one pool task per element (whose scheduling cost dwarfs a
/// cheap `f`), the range is split into about `4 × resolve_threads(None)`
/// contiguous chunks — enough slack for dynamic load balancing, few
/// enough that per-task overhead vanishes. Each chunk runs `f`
/// *sequentially in index order*, so output `i` is `f(i)` and — because
/// chunks are contiguous and ordered — the error returned is the one the
/// sequential loop would have hit first.
///
/// # Errors
///
/// Returns the error produced by the lowest failing index.
pub fn try_par_chunks<R: Send, E: Send, F: Fn(usize) -> Result<R, E> + Sync>(
    n: usize,
    f: F,
) -> Result<Vec<R>, E> {
    let chunks = chunk_ranges(n, resolve_threads(None) * 4);
    let per_chunk = try_par_map(&chunks, |range| {
        range.clone().map(&f).collect::<Result<Vec<R>, E>>()
    })?;
    let mut out = Vec::with_capacity(n);
    for chunk in per_chunk {
        out.extend(chunk);
    }
    Ok(out)
}

/// Splits `0..n` into at most `parts` contiguous ranges whose lengths
/// differ by at most one, in ascending order.
fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Uninhabited error type for the infallible wrapper.
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn matches_sequential_output_order() {
        let items: Vec<u64> = (0..103).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = par_map_threads(threads, &items, |x| x * x + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(8, &empty, |x| x + 1).is_empty());
        assert_eq!(par_map_threads(8, &[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let result =
            try_par_map_threads(4, &items, |&x| if x % 10 == 7 { Err(x) } else { Ok(x * 2) });
        assert_eq!(result, Err(7), "sequential semantics: first error wins");
    }

    #[test]
    fn pool_survives_panicking_task() {
        let items: Vec<u32> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |&x| {
                if x == 13 {
                    panic!("task boom");
                }
                x
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task boom");

        // Pool must be reusable afterwards — nothing deadlocked or leaked.
        let ok = par_map_threads(4, &items, |&x| x + 1);
        assert_eq!(ok, (1..33).collect::<Vec<u32>>());
    }

    #[test]
    fn all_items_run_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_threads(8, &items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn chunked_map_matches_sequential_order_and_errors() {
        let seq: Vec<usize> = (0..103).map(|i| i * 3).collect();
        assert_eq!(try_par_chunks(103, |i| Ok::<_, ()>(i * 3)), Ok(seq));
        assert_eq!(try_par_chunks(0, Ok::<_, ()>), Ok(Vec::new()));
        // First error by index, exactly like a sequential loop.
        let r = try_par_chunks(64, |i| if i % 10 == 7 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(7));
    }

    #[test]
    fn chunk_ranges_cover_without_overlap() {
        for (n, parts) in [(0, 4), (1, 4), (7, 3), (103, 32), (5, 100)] {
            let ranges = chunk_ranges(n, parts);
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            assert!(ranges.len() <= parts.max(1));
            if n > 0 {
                let max = ranges.iter().map(ExactSizeIterator::len).max().unwrap();
                let min = ranges.iter().map(ExactSizeIterator::len).min().unwrap();
                assert!(max - min <= 1, "balanced chunks for n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit zero clamps to 1");
        assert!(resolve_threads(None) >= 1);
    }
}
