//! Pool watchdog: per-worker heartbeat timestamps plus a monitor thread
//! that flags tasks stuck past a deadline.
//!
//! A long-running sign-off service cannot afford a silent wedge — one
//! infinite loop inside a characterization task would otherwise look like
//! "busy" forever. While armed, every pool task stamps a heartbeat slot on
//! entry and clears it on exit (panic-safe: the pool brackets the task's
//! `catch_unwind`); a monitor thread scans the slots and:
//!
//! * keeps the `pool.stalled` gauge at the number of tasks currently past
//!   the deadline (rendered as `svt_pool_stalled` in the Prometheus
//!   exposition, surfaced by `svtd`'s `/healthz`),
//! * bumps the cumulative `pool.stall_events` counter once per stuck task
//!   (a task is re-counted only if it finishes and a *new* task stalls),
//! * drops a `pool.stalled` timeline instant so the stall is visible in
//!   the Chrome trace at the moment it was detected.
//!
//! # Cost contract
//!
//! Disarmed (the default — only `svtd` and tests arm it), the pool's
//! per-batch check [`armed`] is **one relaxed atomic load**, and no
//! monitor thread exists until the first [`arm`]. The `watchdog` cargo
//! feature (default on) removes even that. Heartbeat slots follow the
//! timeline-ring pattern: a fixed table, claimed per worker thread,
//! returned on thread exit, so memory is bounded by peak concurrency.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use svt_obs::timeline::now_ns;
use svt_obs::{counter, gauge};

/// Maximum concurrently-monitored worker threads; extras run unmonitored.
const MAX_SLOTS: usize = 256;

/// Whether the watchdog is armed; the entire disarmed cost of the pool
/// integration is this one relaxed load per batch.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Stall deadline in nanoseconds.
static DEADLINE_NS: AtomicU64 = AtomicU64::new(u64::MAX);
/// Cumulative stuck-task detections since process start.
static STALL_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Tasks currently past the deadline, as of the monitor's last scan.
static STALLED_NOW: AtomicU64 = AtomicU64::new(0);

struct Slot {
    /// Claimed by a live worker thread.
    in_use: AtomicBool,
    /// Heartbeat: `now_ns()` at task entry, 0 while idle.
    task_started_ns: AtomicU64,
    /// The `task_started_ns` value most recently counted as a stall, so
    /// one stuck task is counted once, not once per scan.
    flagged_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const FREE: Slot = Slot {
    in_use: AtomicBool::new(false),
    task_started_ns: AtomicU64::new(0),
    flagged_ns: AtomicU64::new(0),
};

static SLOTS: [Slot; MAX_SLOTS] = [FREE; MAX_SLOTS];

/// This thread's claimed slot plus its task nesting depth (a pool batch
/// can run inside another batch's task on the inline path; only the
/// outermost task owns the heartbeat).
struct SlotGuard {
    idx: usize,
    depth: Cell<u32>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let slot = &SLOTS[self.idx];
        slot.task_started_ns.store(0, Ordering::Relaxed);
        slot.in_use.store(false, Ordering::Release);
    }
}

thread_local! {
    static MY_SLOT: RefCell<Option<SlotGuard>> = const { RefCell::new(None) };
}

/// Whether the watchdog is armed. One relaxed load; the pool samples it
/// once per batch.
#[inline]
#[must_use]
pub fn armed() -> bool {
    cfg!(feature = "watchdog") && ARMED.load(Ordering::Relaxed)
}

/// Arms the watchdog with a stall `deadline` and starts the monitor
/// thread (once per process; re-arming adjusts the deadline in place).
pub fn arm(deadline: Duration) {
    if !cfg!(feature = "watchdog") {
        return;
    }
    let ns = u64::try_from(deadline.as_nanos())
        .unwrap_or(u64::MAX)
        .max(1);
    DEADLINE_NS.store(ns, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    static MONITOR: OnceLock<()> = OnceLock::new();
    MONITOR.get_or_init(|| {
        let spawned = std::thread::Builder::new()
            .name("svt-watchdog".into())
            .spawn(monitor_loop);
        if let Err(e) = spawned {
            eprintln!("svt-exec: watchdog monitor failed to start: {e}");
        }
    });
}

/// Disarms the watchdog. The monitor thread idles (it never exits, so a
/// later [`arm`] needs no restart) and the stalled gauge drops to 0.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    STALLED_NOW.store(0, Ordering::Relaxed);
    gauge!("pool.stalled").set(0);
}

/// Marks the current thread as having entered a pool task. Callers pair
/// this with [`task_end`] around the task body (including its unwind
/// path). Claims a heartbeat slot on the thread's first task; if the
/// table is exhausted the task simply runs unmonitored.
pub fn task_begin() {
    if !cfg!(feature = "watchdog") {
        return;
    }
    let _ = MY_SLOT.try_with(|cell| {
        let mut cell = cell.borrow_mut();
        if cell.is_none() {
            *cell = claim_slot();
        }
        if let Some(guard) = cell.as_ref() {
            let depth = guard.depth.get();
            guard.depth.set(depth + 1);
            if depth == 0 {
                SLOTS[guard.idx]
                    .task_started_ns
                    .store(now_ns().max(1), Ordering::Relaxed);
            }
        }
    });
}

/// Marks the current thread as having left a pool task.
pub fn task_end() {
    if !cfg!(feature = "watchdog") {
        return;
    }
    let _ = MY_SLOT.try_with(|cell| {
        if let Some(guard) = cell.borrow().as_ref() {
            let depth = guard.depth.get().saturating_sub(1);
            guard.depth.set(depth);
            if depth == 0 {
                SLOTS[guard.idx].task_started_ns.store(0, Ordering::Relaxed);
            }
        }
    });
}

fn claim_slot() -> Option<SlotGuard> {
    for (idx, slot) in SLOTS.iter().enumerate() {
        if slot
            .in_use
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            slot.task_started_ns.store(0, Ordering::Relaxed);
            return Some(SlotGuard {
                idx,
                depth: Cell::new(0),
            });
        }
    }
    None
}

/// One monitor scan: counts tasks past `deadline_ns` and counts each
/// newly-stalled task exactly once. Factored out so tests can drive it
/// without timing on the monitor thread's schedule.
fn scan(deadline_ns: u64) -> u64 {
    let now = now_ns();
    let mut stalled = 0u64;
    for slot in &SLOTS {
        if !slot.in_use.load(Ordering::Acquire) {
            continue;
        }
        let started = slot.task_started_ns.load(Ordering::Relaxed);
        if started == 0 || now.saturating_sub(started) < deadline_ns {
            continue;
        }
        stalled += 1;
        if slot.flagged_ns.swap(started, Ordering::Relaxed) != started {
            STALL_EVENTS.fetch_add(1, Ordering::Relaxed);
            counter!("pool.stall_events").incr();
            svt_obs::instant("pool.stalled");
            // A stall is a flight-recorder trigger: dump the retained
            // capsules and a metrics snapshot while the wedge is live
            // (no-op unless a post-mortem path is configured).
            let _ = svt_obs::recorder::post_mortem("watchdog_stall");
        }
    }
    STALLED_NOW.store(stalled, Ordering::Relaxed);
    gauge!("pool.stalled").set(i64::try_from(stalled).unwrap_or(i64::MAX));
    stalled
}

fn monitor_loop() {
    loop {
        if !ARMED.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        let deadline_ns = DEADLINE_NS.load(Ordering::Relaxed);
        scan(deadline_ns);
        // Scan at quarter-deadline so a stall is detected within ~1.25×
        // the deadline, floored to keep a tiny deadline from busy-waiting.
        let poll = Duration::from_nanos((deadline_ns / 4).max(1_000_000));
        std::thread::sleep(poll.min(Duration::from_millis(250)));
    }
}

/// The watchdog's current verdict, as `svtd`'s `/healthz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogStatus {
    /// Whether the watchdog is armed.
    pub armed: bool,
    /// The stall deadline.
    pub deadline: Duration,
    /// Tasks past the deadline as of the last monitor scan.
    pub stalled_now: u64,
    /// Cumulative stuck-task detections since process start.
    pub stall_events: u64,
}

impl WatchdogStatus {
    /// Healthy = not armed, or armed with nothing currently stalled.
    #[must_use]
    pub fn healthy(&self) -> bool {
        !self.armed || self.stalled_now == 0
    }
}

/// Reads the current watchdog status (atomics only; scrape-safe).
#[must_use]
pub fn status() -> WatchdogStatus {
    WatchdogStatus {
        armed: armed(),
        deadline: Duration::from_nanos(DEADLINE_NS.load(Ordering::Relaxed)),
        stalled_now: STALLED_NOW.load(Ordering::Relaxed),
        stall_events: STALL_EVENTS.load(Ordering::Relaxed),
    }
}

/// Publishes the watchdog verdict as gauges, so the sampler thread can
/// put `pool.armed` / `pool.deadline_ms` beside the scan-maintained
/// `pool.stalled` in the time-series store each tick.
pub fn publish_status_gauges() {
    let st = status();
    gauge!("pool.armed").set(i64::from(st.armed));
    gauge!("pool.deadline_ms").set(i64::try_from(st.deadline.as_millis()).unwrap_or(i64::MAX));
    gauge!("pool.stalled").set(i64::try_from(st.stalled_now).unwrap_or(i64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Heartbeat slots and the armed flag are process-global; tests that
    // manipulate them run under this lock (the integration test in
    // `tests/watchdog.rs` is a separate process).
    fn state_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn scan_flags_each_stuck_task_once() {
        let _guard = state_lock();
        let events_before = STALL_EVENTS.load(Ordering::Relaxed);
        // Latch the trace epoch, then let it advance past the deadline so
        // a heartbeat backdated to the epoch reads as stalled.
        let _ = now_ns();
        std::thread::sleep(Duration::from_millis(5));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                task_begin();
                // Backdate the heartbeat instead of sleeping.
                MY_SLOT.with(|cell| {
                    let idx = cell.borrow().as_ref().unwrap().idx;
                    SLOTS[idx].task_started_ns.store(1, Ordering::Relaxed);
                });
                assert_eq!(scan(1_000_000), 1, "backdated task counts as stalled");
                assert_eq!(scan(1_000_000), 1, "still stalled on rescan");
                task_end();
                assert_eq!(scan(1_000_000), 0, "finished task clears the gauge");
            });
        });
        assert_eq!(
            STALL_EVENTS.load(Ordering::Relaxed),
            events_before + 1,
            "one stuck task is one event, not one per scan"
        );
    }

    #[test]
    fn nested_tasks_keep_the_outer_heartbeat() {
        let _guard = state_lock();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                task_begin();
                let started = MY_SLOT.with(|cell| {
                    let idx = cell.borrow().as_ref().unwrap().idx;
                    SLOTS[idx].task_started_ns.load(Ordering::Relaxed)
                });
                assert!(started > 0);
                task_begin(); // inner batch on the same thread
                task_end();
                let after_inner = MY_SLOT.with(|cell| {
                    let idx = cell.borrow().as_ref().unwrap().idx;
                    SLOTS[idx].task_started_ns.load(Ordering::Relaxed)
                });
                assert_eq!(
                    after_inner, started,
                    "inner task_end must not clear the outer heartbeat"
                );
                task_end();
            });
        });
    }

    #[test]
    fn slots_recycle_when_threads_exit() {
        let _guard = state_lock();
        let claimed = |idx: usize| SLOTS[idx].in_use.load(Ordering::Relaxed);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let idx = std::thread::spawn(|| {
                task_begin();
                let idx = MY_SLOT.with(|cell| cell.borrow().as_ref().unwrap().idx);
                task_end();
                idx
            })
            .join()
            .unwrap();
            assert!(!claimed(idx), "slot must free on thread exit");
            seen.push(idx);
        }
        // Sequential threads reuse the freed slot instead of leaking one
        // per thread (bounded by peak concurrency, like timeline rings).
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[1], seen[2]);
    }

    #[test]
    fn status_reports_armed_state_and_deadline() {
        let _guard = state_lock();
        assert!(status().healthy(), "disarmed watchdog is always healthy");
        arm(Duration::from_secs(5));
        let s = status();
        assert!(s.armed);
        assert_eq!(s.deadline, Duration::from_secs(5));
        disarm();
        assert!(!status().armed);
        assert_eq!(status().stalled_now, 0);
    }
}
