//! Stable cache keys from floating-point simulation parameters.
//!
//! Two regimes, chosen per use site:
//!
//! * **Exact** — [`qf64`] keys on the raw bit pattern. Used when the cached
//!   value is a pure function of the exact input (e.g. pupil-transfer
//!   tables keyed by defocus), so no two distinct inputs may share a key.
//! * **Quantized** — [`quantize_f64`] snaps a parameter to a micro-unit
//!   grid (1e-6 of the parameter's unit). The cached computation must then
//!   be run on the *reconstructed* value ([`unquantize_f64`]), never the
//!   original: every input that lands in a bucket maps to one
//!   representative, so the result is independent of which caller filled
//!   the cache first. For the nm/% magnitudes used across the pipeline the
//!   snap error is far below physical meaning (attometers, 1e-6 %).

/// Quantization scale: buckets of one millionth of the parameter's unit.
pub const QUANT_SCALE: f64 = 1e6;

/// Exact key for an `f64`: its bit pattern, with `-0.0` folded into `0.0`
/// so the two zero representations share a cache line.
#[must_use]
pub fn qf64(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Snaps `x` to the micro-unit grid, returning the integer bucket.
///
/// # Panics
///
/// Panics on non-finite input — NaN/inf parameters indicate an upstream
/// bug and must never silently collide in a cache bucket.
#[must_use]
pub fn quantize_f64(x: f64) -> i64 {
    assert!(x.is_finite(), "cannot quantize non-finite parameter {x}");
    #[allow(clippy::cast_possible_truncation)]
    let bucket = (x * QUANT_SCALE).round() as i64;
    bucket
}

/// Reconstructs the representative value of a bucket.
///
/// All cached computation must use this value, not the caller's raw input;
/// that makes memoized results independent of fill order.
#[must_use]
pub fn unquantize_f64(bucket: i64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let x = bucket as f64 / QUANT_SCALE;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_round_trips_typical_values() {
        for &x in &[0.0, 90.0, 250.5, 1e4, -35.75, 0.000_001] {
            let q = quantize_f64(x);
            assert!(
                (unquantize_f64(q) - x).abs() <= 0.5 / QUANT_SCALE,
                "{x} snapped too far"
            );
        }
        // Values already on the grid reconstruct exactly.
        assert_eq!(unquantize_f64(quantize_f64(90.0)), 90.0);
        assert_eq!(unquantize_f64(quantize_f64(-120.25)), -120.25);
    }

    #[test]
    fn nearby_values_share_a_bucket_and_representative() {
        let a = 90.0;
        let b = 90.0 + 1e-9;
        assert_eq!(quantize_f64(a), quantize_f64(b));
        assert_eq!(
            unquantize_f64(quantize_f64(a)),
            unquantize_f64(quantize_f64(b))
        );
    }

    #[test]
    fn exact_keys_distinguish_but_merge_zeros() {
        assert_ne!(qf64(1.0), qf64(1.0 + f64::EPSILON));
        assert_eq!(qf64(0.0), qf64(-0.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        let _ = quantize_f64(f64::NAN);
    }
}
