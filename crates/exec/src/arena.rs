//! Bump-allocated scratch arena for allocation-free hot paths.
//!
//! [`ScratchArena`] owns one large `Vec<u8>`-backed block and hands out
//! typed slice carve-outs ([`ScratchArena::alloc_slice_fill`]) by bumping
//! an offset — no per-carve-out heap traffic. When the block is too small
//! the arena *spills*: the oversized carve-out gets its own boxed block
//! (address-stable, freed on reset) and the shortfall is recorded so the
//! next [`ScratchArena::reset`] grows the main block to fit. A warmed-up
//! arena therefore serves every cycle of a steady-state workload — e.g.
//! the six corner analyses of a sign-off run, repeated across ECO
//! iterations — without touching the allocator at all.
//!
//! [`ScratchPool`] is the thread-safe checkout front: each borrower takes
//! a whole arena for the duration of one analysis (RAII guard), and the
//! guard resets and returns the arena on drop. Concurrent borrowers get
//! distinct arenas, so the pool's steady-state size equals the peak
//! concurrency it has seen.
//!
//! Safety model: carve-outs borrow the arena (`&mut [T]` tied to
//! `&self`), regions are disjoint because the offset only grows, and the
//! types are `Copy` (no drop obligations). Resetting requires `&mut self`,
//! so no carve-out can outlive the memory it points into.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ptr::NonNull;
use std::sync::Mutex;

/// A bump allocator over one contiguous byte block with typed carve-outs.
///
/// # Examples
///
/// ```
/// use svt_exec::ScratchArena;
///
/// let mut arena = ScratchArena::with_capacity(4096);
/// let counts = arena.alloc_slice_fill::<u32>(100, 0);
/// counts[7] = 42;
/// let flags = arena.alloc_slice_fill::<bool>(100, false);
/// assert!(!flags[7], "carve-outs are disjoint and initialized");
/// assert_eq!(counts[7], 42);
/// arena.reset(); // all carve-outs are dead here; memory is reused
/// ```
pub struct ScratchArena {
    /// Base of the main block; dangling when `cap == 0`.
    base: NonNull<u8>,
    /// Byte capacity of the main block.
    cap: usize,
    /// Bump offset into the main block.
    offset: Cell<usize>,
    /// Bytes (incl. alignment headroom) served by spill blocks since the
    /// last reset; the next reset grows the main block by this much.
    deficit: Cell<usize>,
    /// Overflow blocks; box contents are address-stable even as the vec
    /// holding the boxes reallocates.
    spill: RefCell<Vec<Box<[u8]>>>,
}

// SAFETY: the arena is a plain memory resource. `Cell`/`RefCell` make it
// !Sync (enforcing single-threaded use at any one time), but moving the
// whole arena between threads — which checkout from a shared pool does —
// is sound: there are no thread-affine resources inside.
unsafe impl Send for ScratchArena {}

impl ScratchArena {
    /// Creates an empty arena; the first carve-outs spill and the first
    /// [`ScratchArena::reset`] sizes the main block to what was used.
    #[must_use]
    pub fn new() -> ScratchArena {
        ScratchArena::with_capacity(0)
    }

    /// Creates an arena whose main block holds at least `bytes` bytes.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> ScratchArena {
        let (base, cap) = alloc_block(bytes);
        ScratchArena {
            base,
            cap,
            offset: Cell::new(0),
            deficit: Cell::new(0),
            spill: RefCell::new(Vec::new()),
        }
    }

    /// Carves a `len`-element slice out of the arena, every element set to
    /// `fill`. Falls back to a spill block (one heap allocation, repaid at
    /// the next reset) when the main block is exhausted.
    ///
    /// The returned slice borrows the arena: it dies before any
    /// [`ScratchArena::reset`] (which needs `&mut self`) can recycle it.
    #[allow(clippy::mut_from_ref)] // disjoint bump carve-outs; see module docs
    pub fn alloc_slice_fill<T: Copy>(&self, len: usize, fill: T) -> &mut [T] {
        if len == 0 {
            return &mut [];
        }
        let size = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("scratch carve-out size overflows");
        let align = std::mem::align_of::<T>();
        let offset = self.offset.get();
        let addr = self.base.as_ptr() as usize + offset;
        let pad = addr.next_multiple_of(align) - addr;
        let start = if offset + pad + size <= self.cap {
            self.offset.set(offset + pad + size);
            // SAFETY: `offset + pad + size <= cap`, so the region is inside
            // the main block; the bump guarantees it overlaps no earlier
            // carve-out.
            unsafe { self.base.as_ptr().add(offset + pad) }
        } else {
            self.spill_alloc(size, align)
        };
        // SAFETY: `start` is `align`-aligned and points at `size` bytes
        // exclusively ours; `T: Copy` means no drop obligations, and every
        // element is initialized below before the slice is formed.
        unsafe {
            let ptr = start.cast::<T>();
            for i in 0..len {
                ptr.add(i).write(fill);
            }
            std::slice::from_raw_parts_mut(ptr, len)
        }
    }

    /// Allocates an overflow block and returns an aligned pointer into it.
    fn spill_alloc(&self, size: usize, align: usize) -> *mut u8 {
        self.deficit.set(self.deficit.get() + size + align);
        let mut block = vec![0u8; size + align].into_boxed_slice();
        let addr = block.as_mut_ptr() as usize;
        let pad = addr.next_multiple_of(align) - addr;
        // SAFETY: `pad < align <= block.len() - size`, so the aligned
        // region stays inside the block.
        let ptr = unsafe { block.as_mut_ptr().add(pad) };
        self.spill.borrow_mut().push(block);
        ptr
    }

    /// Rewinds the bump offset and frees spill blocks, growing the main
    /// block by the recorded deficit so the same workload fits without
    /// spilling next cycle. Requires `&mut self`, which proves no
    /// carve-out is still alive.
    pub fn reset(&mut self) {
        let deficit = self.deficit.get();
        if deficit > 0 {
            let grown = alloc_block(self.cap + deficit);
            self.free_main_block();
            (self.base, self.cap) = grown;
            self.deficit.set(0);
        }
        self.spill.get_mut().clear();
        self.offset.set(0);
    }

    /// Bytes currently carved out of the main block.
    #[must_use]
    pub fn used(&self) -> usize {
        self.offset.get()
    }

    /// Byte capacity of the main block.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether any carve-out since the last reset missed the main block.
    #[must_use]
    pub fn spilled(&self) -> bool {
        self.deficit.get() > 0
    }

    /// Frees the main block (leaves `base`/`cap` stale — callers must
    /// overwrite or never touch them again).
    fn free_main_block(&mut self) {
        if self.cap > 0 {
            // SAFETY: `base`/`cap` came from `alloc_block`'s forgotten Vec
            // and the block holds no live carve-outs (`&mut self`).
            unsafe { drop(Vec::from_raw_parts(self.base.as_ptr(), 0, self.cap)) };
        }
    }
}

/// Allocates a zero-length `Vec<u8>` block of at least `bytes` capacity
/// and leaks it into raw parts.
fn alloc_block(bytes: usize) -> (NonNull<u8>, usize) {
    let mut block: Vec<u8> = Vec::with_capacity(bytes);
    let base = NonNull::new(block.as_mut_ptr()).expect("Vec pointer is never null");
    let cap = block.capacity();
    std::mem::forget(block);
    (base, cap)
}

impl Default for ScratchArena {
    fn default() -> ScratchArena {
        ScratchArena::new()
    }
}

impl Drop for ScratchArena {
    fn drop(&mut self) {
        self.free_main_block();
    }
}

impl fmt::Debug for ScratchArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchArena")
            .field("capacity", &self.cap)
            .field("used", &self.offset.get())
            .field("deficit", &self.deficit.get())
            .finish()
    }
}

/// A thread-safe pool of [`ScratchArena`]s with RAII checkout.
///
/// # Examples
///
/// ```
/// use svt_exec::ScratchPool;
///
/// let pool = ScratchPool::new();
/// {
///     let scratch = pool.checkout();
///     let ids = scratch.alloc_slice_fill::<u32>(8, 0);
///     ids[0] = 1;
/// } // guard drop: arena is reset and returned
/// let again = pool.checkout(); // reuses the warmed arena
/// assert_eq!(again.used(), 0);
/// ```
#[derive(Default)]
pub struct ScratchPool {
    arenas: Mutex<Vec<ScratchArena>>,
}

impl ScratchPool {
    /// Creates an empty pool; arenas are created on first checkout and
    /// retained (warm) thereafter.
    #[must_use]
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Borrows an arena for the duration of the guard. Concurrent
    /// checkouts get distinct arenas; the guard resets and returns its
    /// arena on drop.
    pub fn checkout(&self) -> ScratchGuard<'_> {
        let arena = self
            .arenas
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            pool: self,
            arena: Some(arena),
        }
    }

    /// Number of idle arenas currently parked in the pool.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.arenas.lock().expect("scratch pool poisoned").len()
    }
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

/// RAII checkout of one [`ScratchArena`] from a [`ScratchPool`]; resets
/// the arena and parks it back on drop.
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    arena: Option<ScratchArena>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = ScratchArena;

    fn deref(&self) -> &ScratchArena {
        self.arena.as_ref().expect("arena present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut arena) = self.arena.take() {
            arena.reset();
            self.pool
                .arenas
                .lock()
                .expect("scratch pool poisoned")
                .push(arena);
        }
    }
}

impl fmt::Debug for ScratchGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchGuard")
            .field("arena", &self.arena)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_outs_are_disjoint_and_initialized() {
        let arena = ScratchArena::with_capacity(1024);
        let a = arena.alloc_slice_fill::<u64>(10, 7);
        let b = arena.alloc_slice_fill::<u8>(3, 1);
        let c = arena.alloc_slice_fill::<u64>(5, 9);
        a[0] = 100;
        c[4] = 200;
        assert_eq!(&a[..3], &[100, 7, 7]);
        assert_eq!(b, &[1, 1, 1]);
        assert_eq!(c[4], 200);
        assert_eq!(c[0], 9);
    }

    #[test]
    fn alignment_is_respected_after_odd_sizes() {
        let arena = ScratchArena::with_capacity(1024);
        let _odd = arena.alloc_slice_fill::<u8>(3, 0);
        let aligned = arena.alloc_slice_fill::<u64>(4, 0);
        assert_eq!(aligned.as_ptr() as usize % std::mem::align_of::<u64>(), 0);
    }

    #[test]
    fn spill_then_reset_grows_the_main_block() {
        let mut arena = ScratchArena::new(); // zero capacity: everything spills
        let s = arena.alloc_slice_fill::<u32>(100, 3);
        assert_eq!(s[99], 3);
        assert!(arena.spilled());
        arena.reset();
        assert!(!arena.spilled());
        assert!(arena.capacity() >= 400, "reset repaid the deficit");
        let t = arena.alloc_slice_fill::<u32>(100, 4);
        assert_eq!(t[0], 4);
        assert!(!arena.spilled(), "warm cycle fits the main block");
    }

    #[test]
    fn zero_length_carve_outs_cost_nothing() {
        let arena = ScratchArena::new();
        let s = arena.alloc_slice_fill::<u64>(0, 0);
        assert!(s.is_empty());
        assert_eq!(arena.used(), 0);
        assert!(!arena.spilled());
    }

    #[test]
    fn pool_checkout_reuses_warm_arenas() {
        let pool = ScratchPool::new();
        {
            let g = pool.checkout();
            let _ = g.alloc_slice_fill::<u64>(64, 0);
            assert!(g.spilled());
        }
        assert_eq!(pool.idle(), 1);
        {
            let g = pool.checkout();
            assert!(g.capacity() >= 512, "returned arena kept its growth");
            let _ = g.alloc_slice_fill::<u64>(64, 0);
            assert!(!g.spilled(), "warm checkout serves without spilling");
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_arenas() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let g = pool.checkout();
                    let s = g.alloc_slice_fill::<u32>(1000, 5);
                    assert!(s.iter().all(|&v| v == 5));
                });
            }
        });
        assert!(pool.idle() >= 1);
    }
}
