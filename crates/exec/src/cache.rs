//! Sharded, lock-striped memoization cache.
//!
//! `MemoCache<K, V>` spreads entries over a fixed power-of-two number of
//! `Mutex<HashMap>` shards selected by key hash, so concurrent workers
//! rarely contend on the same lock. The value factory in
//! [`MemoCache::get_or_insert_with`] runs *outside* any lock — two threads
//! racing on the same missing key may both compute, and the first writer
//! wins; this is safe because memoized computations are pure, and it keeps
//! an expensive simulation from serializing every other shard user.
//!
//! Hashing uses the std `DefaultHasher` via `BuildHasherDefault`, which is
//! deterministic across runs (no per-process random state), so shard
//! assignment — and therefore eviction behaviour — is reproducible.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

type Shard<K, V> = Mutex<HashMap<K, V, BuildHasherDefault<DefaultHasher>>>;

/// Snapshot of cache activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the factory.
    pub misses: u64,
    /// Entries written into the cache.
    pub inserts: u64,
    /// Entries dropped by capacity resets.
    pub evictions: u64,
    /// Entries dropped by keyed invalidation ([`MemoCache::remove`] /
    /// [`MemoCache::retain`]).
    pub removals: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when the cache is untouched.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let rate = self.hits as f64 / total as f64;
            rate
        }
    }
}

/// A sharded memoization cache for pure computations.
///
/// # Examples
///
/// ```
/// use svt_exec::MemoCache;
///
/// let cache: MemoCache<(u64, u64), f64> = MemoCache::default();
/// let v = cache.get_or_insert_with((90, 250), || f64::from(90u32).sin());
/// // A repeat lookup is a hit and returns the identical bits.
/// let w = cache.get_or_insert_with((90, 250), || unreachable!());
/// assert_eq!(v.to_bits(), w.to_bits());
///
/// // Keyed invalidation (the ECO path): drop exactly one entry so the
/// // next lookup recomputes it, while every other entry stays warm.
/// assert_eq!(cache.remove(&(90, 250)), Some(v));
/// assert_eq!(cache.get(&(90, 250)), None);
/// assert_eq!(cache.stats().removals, 1);
/// ```
pub struct MemoCache<K, V> {
    shards: Vec<Shard<K, V>>,
    /// Entry cap per shard; a full shard is cleared before inserting
    /// (wholesale reset is cheaper and more predictable than LRU for the
    /// sweep-style workloads this serves).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    removals: AtomicU64,
}

/// Default shard count; power of two so hash bits select shards evenly.
const DEFAULT_SHARDS: usize = 16;
/// Default per-shard entry cap (≈64k entries total at 16 shards).
const DEFAULT_SHARD_CAPACITY: usize = 4096;

impl<K: Hash + Eq, V: Clone> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }
}

impl<K: Hash + Eq, V: Clone> MemoCache<K, V> {
    /// Creates a cache with `shards` lock stripes (rounded up to a power
    /// of two, minimum 1) holding at most `shard_capacity` entries each.
    #[must_use]
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        MemoCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_capacity: shard_capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            removals: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Shard<K, V> {
        let hash = BuildHasherDefault::<DefaultHasher>::default().hash_one(key);
        // Shard index from the high bits: the low bits also pick the
        // bucket inside the shard's HashMap, and reusing them would leave
        // every map populated in only 1/shards of its buckets.
        let idx = (hash >> 32) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Returns the cached value for `key`, running `compute` on a miss.
    ///
    /// `compute` executes outside the shard lock; on a race the first
    /// completed insert wins and later computations of the same key are
    /// discarded (all callers still receive a value for the key).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        let shard = self.shard_for(&key);
        if let Some(value) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return value.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // In Chrome trace mode a miss drops an instant marker, so cache-miss
        // stalls line up with the task spans around them in Perfetto.
        svt_obs::instant("cache.miss");
        let value = compute();
        let mut map = shard.lock().expect("cache shard poisoned");
        if let Some(existing) = map.get(&key) {
            // Lost the race; keep the first writer's value so every caller
            // observes one canonical result per key.
            return existing.clone();
        }
        if map.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(map.len() as u64, Ordering::Relaxed);
            map.clear();
        }
        map.insert(key, value.clone());
        self.inserts.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Stores a precomputed value without touching the hit/miss counters
    /// (for fallible computations where only successes are cacheable). An
    /// existing entry wins, mirroring [`MemoCache::get_or_insert_with`].
    pub fn insert(&self, key: K, value: V) {
        let mut map = self.shard_for(&key).lock().expect("cache shard poisoned");
        if map.contains_key(&key) {
            return;
        }
        if map.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(map.len() as u64, Ordering::Relaxed);
            map.clear();
        }
        map.insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the cached value without computing, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let hit = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Removes the entry for `key`, returning its value if one was cached.
    ///
    /// This is the keyed-invalidation hook for incremental flows: when an
    /// edit changes the inputs a key stands for, dropping exactly that
    /// entry forces the next lookup to recompute while every other entry
    /// stays warm. Because memoized computations are pure, removal can
    /// only cost time, never change a result.
    pub fn remove(&self, key: &K) -> Option<V> {
        let removed = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .remove(key);
        if removed.is_some() {
            self.removals.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Keeps only the entries for which `keep` returns `true`, returning
    /// how many entries were dropped.
    ///
    /// The predicate runs under one shard lock at a time, so it must be
    /// cheap and must not touch the cache. Use this for invalidating a
    /// *family* of keys (e.g. every pitch-table pair that involves an
    /// edited neighbor spacing) where the exact key set is not enumerable
    /// up front.
    pub fn retain<F: FnMut(&K, &V) -> bool>(&self, mut keep: F) -> usize {
        let mut dropped = 0usize;
        for shard in &self.shards {
            let mut map = shard.lock().expect("cache shard poisoned");
            let before = map.len();
            map.retain(|k, v| keep(k, v));
            dropped += before - map.len();
        }
        self.removals.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Clones out every resident entry, shard by shard — the snapshot
    /// capture hook. Entry order is shard-major and otherwise
    /// unspecified; callers that need a canonical byte stream (the
    /// `svt-snap` persistence layer does) sort by key afterwards.
    ///
    /// Shards are locked one at a time, so a concurrent writer may land
    /// an entry in an already-visited shard and be missed — acceptable
    /// for snapshots, which are conservative by design: a missed entry
    /// costs one recomputation after restore, never a wrong value.
    pub fn export_entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("cache shard poisoned");
            out.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Bulk-inserts restored entries — the snapshot restore hook.
    /// Existing entries win (same policy as [`MemoCache::insert`]), and
    /// the hit/miss counters are untouched so post-restore hit rates
    /// reflect real traffic. Returns how many entries were written.
    pub fn preload<I: IntoIterator<Item = (K, V)>>(&self, entries: I) -> usize {
        let mut loaded = 0usize;
        for (k, v) in entries {
            let mut map = self.shard_for(&k).lock().expect("cache shard poisoned");
            if map.contains_key(&k) {
                continue;
            }
            if map.len() >= self.shard_capacity {
                self.evictions
                    .fetch_add(map.len() as u64, Ordering::Relaxed);
                map.clear();
            }
            map.insert(k, v);
            self.inserts.fetch_add(1, Ordering::Relaxed);
            loaded += 1;
        }
        loaded
    }

    /// Current hit/miss/insert/eviction/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            removals: self.removals.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len())
                .sum(),
        }
    }
}

impl From<CacheStats> for svt_obs::CacheCounters {
    fn from(s: CacheStats) -> svt_obs::CacheCounters {
        svt_obs::CacheCounters {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            evictions: s.evictions,
            entries: s.entries,
        }
    }
}

/// Registers `cache` as a named telemetry probe on the `svt-obs` registry.
///
/// The probe reads the cache's own live counters only when a snapshot is
/// taken, so instrumentation costs the cache nothing on its hot path.
/// Re-registration replaces the probe, so calling this from a `OnceLock`
/// initializer (the usual pattern for global caches) is safe even when the
/// initializer re-runs after a test clears state.
pub fn register_cache_telemetry<K, V>(name: &str, cache: &'static MemoCache<K, V>)
where
    K: Hash + Eq + Send,
    V: Clone + Send,
{
    svt_obs::register_cache(name, || cache.stats().into());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_returns_identical_value_without_recompute() {
        let cache: MemoCache<(i64, i64), f64> = MemoCache::default();
        let computed = AtomicUsize::new(0);
        let f = |x: f64| {
            computed.fetch_add(1, Ordering::Relaxed);
            x.sin() * 1e-9 + x
        };
        let a = cache.get_or_insert_with((90, 250), || f(90.0));
        let b = cache.get_or_insert_with((90, 250), || f(90.0));
        assert_eq!(a.to_bits(), b.to_bits(), "hit must be bit-identical");
        assert_eq!(computed.load(Ordering::Relaxed), 1, "second call was a hit");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.inserts, stats.evictions), (1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache: MemoCache<u64, u64> = MemoCache::new(8, 1024);
        for k in 0..2000u64 {
            assert_eq!(cache.get_or_insert_with(k, || k * 3), k * 3);
        }
        for k in 0..2000u64 {
            assert_eq!(cache.get(&k), Some(k * 3), "key {k}");
        }
    }

    #[test]
    fn capacity_cap_clears_full_shards() {
        let cache: MemoCache<u64, u64> = MemoCache::new(1, 4);
        for k in 0..100u64 {
            cache.get_or_insert_with(k, || k);
        }
        assert!(cache.stats().entries <= 4, "cap must bound residency");
        let stats = cache.stats();
        assert_eq!(stats.inserts, 100, "every miss inserted");
        assert!(
            stats.evictions >= stats.inserts - 4,
            "capacity resets must account for dropped entries"
        );
        // Still correct after eviction: recompute yields the same value.
        assert_eq!(cache.get_or_insert_with(0, || 0), 0);
    }

    #[test]
    fn remove_invalidates_exactly_one_key() {
        let cache: MemoCache<u64, u64> = MemoCache::default();
        for k in 0..50u64 {
            cache.get_or_insert_with(k, || k * 3);
        }
        assert_eq!(cache.remove(&7), Some(21));
        assert_eq!(cache.remove(&7), None, "second removal is a no-op");
        assert_eq!(cache.get(&7), None, "removed key misses");
        assert_eq!(cache.get(&8), Some(24), "neighbors stay warm");
        let stats = cache.stats();
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.entries, 49);
        // Recompute after invalidation re-populates the same key.
        assert_eq!(cache.get_or_insert_with(7, || 21), 21);
        assert_eq!(cache.stats().entries, 50);
    }

    #[test]
    fn retain_drops_a_key_family() {
        let cache: MemoCache<(u64, u64), u64> = MemoCache::default();
        for a in 0..10u64 {
            for b in 0..10u64 {
                cache.get_or_insert_with((a, b), || a * 100 + b);
            }
        }
        // Invalidate every pair touching "spacing" 3 on either side.
        let dropped = cache.retain(|&(a, b), _| a != 3 && b != 3);
        assert_eq!(dropped, 19, "10 + 10 - shared (3,3)");
        assert_eq!(cache.stats().entries, 81);
        assert_eq!(cache.stats().removals, 19);
        assert_eq!(cache.get(&(3, 5)), None);
        assert_eq!(cache.get(&(5, 3)), None);
        assert_eq!(cache.get(&(5, 5)), Some(505));
    }

    #[test]
    fn export_and_preload_round_trip_bit_identically() {
        let cache: MemoCache<(u64, u64), f64> = MemoCache::default();
        for k in 0..100u64 {
            cache.get_or_insert_with((k, k * 2), || (k as f64).sin());
        }
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 100);

        let restored: MemoCache<(u64, u64), f64> = MemoCache::default();
        assert_eq!(restored.preload(exported.clone()), 100);
        for (k, v) in &exported {
            assert_eq!(
                restored.get(k).unwrap().to_bits(),
                v.to_bits(),
                "restored entry must be bit-identical"
            );
        }
        // Existing entries win on a second preload; counters stay sane.
        assert_eq!(restored.preload(exported), 0);
        let stats = restored.stats();
        assert_eq!((stats.inserts, stats.entries), (100, 100));
        assert_eq!(stats.misses, 0, "preload must not skew hit rates");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: MemoCache<u64, u64> = MemoCache::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let key = (i + t) % 200;
                        assert_eq!(cache.get_or_insert_with(key, || key * 7), key * 7);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 200);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
