//! Persistent bounded worker pool for long-lived services.
//!
//! The scoped [`pool`](crate::pool) is built for batch fan-out: workers
//! are spawned per call and joined before the call returns. A daemon
//! serving connections needs the opposite shape — a fixed set of
//! *persistent* handler threads fed by a bounded queue, where the
//! producer (an accept loop) must learn *synchronously* when the queue
//! is full so it can shed load instead of buffering unboundedly.
//!
//! [`ServicePool`] provides exactly that:
//!
//! * `workers` named threads (`{name}-0` …) started once and reused for
//!   every job;
//! * a bounded FIFO queue of pending jobs — [`ServicePool::try_submit`]
//!   never blocks and hands the job *back* inside
//!   [`SubmitError::Full`] when the queue is at capacity, so the caller
//!   still owns the connection it wanted to enqueue and can answer
//!   `429 Too Many Requests` on it;
//! * panic isolation — a panicking handler is caught and counted
//!   (`{name}.handler_panics`), the worker thread survives and keeps
//!   draining the queue (no thread leaks under fault injection);
//! * graceful drain — [`ServicePool::drain`] stops intake, lets the
//!   workers finish every job already accepted, and joins them.
//!
//! Telemetry (all through `svt-obs`, one handle resolved at spawn):
//! `{name}.queue_depth` / `{name}.in_flight` gauges,
//! `{name}.submitted` / `{name}.rejected` / `{name}.completed` /
//! `{name}.handler_panics` counters, and a `{name}.queue_wait_ns`
//! histogram of how long each job sat queued before a worker claimed
//! it. The pool deliberately does *not* wrap jobs in watchdog
//! heartbeats: a job may legitimately sit in a blocking read
//! (keep-alive connections), which is idleness, not a stall. Callers
//! heartbeat the genuinely bounded sections themselves.
//!
//! **Request-context propagation:** [`ServicePool::try_submit`]
//! snapshots the submitter's [`svt_obs::RequestContext`] (if one is
//! active) alongside the job, and the claiming worker re-enters it
//! around the handler — so spans and capsules recorded inside a pool
//! task carry the trace id of the request that enqueued it. The handler
//! can read the wait its own job experienced via
//! [`current_queue_wait_ns`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use svt_obs::{Counter, Gauge, Histogram};

/// Why a job could not be enqueued; the job itself is handed back so
/// the caller can dispose of it (e.g. answer 429 on the connection).
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue is at capacity — shed load.
    Full(T),
    /// The pool is draining and accepts no new work.
    Draining(T),
}

impl<T> SubmitError<T> {
    /// Recovers the rejected job.
    pub fn into_job(self) -> T {
        match self {
            SubmitError::Full(job) | SubmitError::Draining(job) => job,
        }
    }

    /// Whether the rejection was capacity (`true`) or drain (`false`).
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, SubmitError::Full(_))
    }
}

/// One enqueued job plus the request context and enqueue timestamp it
/// was submitted under.
struct Queued<T> {
    job: T,
    ctx: Option<svt_obs::RequestContext>,
    enqueued: Instant,
}

struct QueueState<T> {
    jobs: VecDeque<Queued<T>>,
    draining: bool,
}

struct Shared<T> {
    state: Mutex<QueueState<T>>,
    wake: Condvar,
    capacity: usize,
    depth_gauge: &'static Gauge,
    inflight_gauge: &'static Gauge,
    submitted: &'static Counter,
    rejected: &'static Counter,
    completed: &'static Counter,
    panics: &'static Counter,
    queue_wait: &'static Histogram,
}

thread_local! {
    /// Queue wait of the job currently running on this worker thread.
    static QUEUE_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// The queue wait (nanoseconds) of the pool job currently executing on
/// this thread — 0 outside a pool handler. Serving layers fold this
/// into access-log lines and slow-request capsules.
#[must_use]
pub fn current_queue_wait_ns() -> u64 {
    QUEUE_WAIT_NS.try_with(Cell::get).unwrap_or(0)
}

/// A fixed-size persistent worker pool over a bounded job queue.
///
/// Dropping the pool drains it (see [`ServicePool::drain`]).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use svt_exec::service::ServicePool;
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let seen = Arc::clone(&done);
/// let pool = ServicePool::spawn("doc.pool", 2, 8, move |job: usize| {
///     seen.fetch_add(job, Ordering::Relaxed);
/// });
/// for job in 1..=4 {
///     pool.try_submit(job).expect("queue has room");
/// }
/// pool.drain();
/// assert_eq!(done.load(Ordering::Relaxed), 10);
/// ```
pub struct ServicePool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> ServicePool<T> {
    /// Starts `workers` persistent handler threads named `{name}-{i}`
    /// over a queue holding at most `capacity` pending jobs.
    ///
    /// `workers` and `capacity` are clamped to at least 1. The handler
    /// runs on the worker threads; a panic inside it is caught and
    /// counted, and the worker keeps serving.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    pub fn spawn<F>(name: &str, workers: usize, capacity: usize, handler: F) -> ServicePool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let registry = svt_obs::registry();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            depth_gauge: registry.gauge(&format!("{name}.queue_depth")),
            inflight_gauge: registry.gauge(&format!("{name}.in_flight")),
            submitted: registry.counter(&format!("{name}.submitted")),
            rejected: registry.counter(&format!("{name}.rejected")),
            completed: registry.counter(&format!("{name}.completed")),
            panics: registry.counter(&format!("{name}.handler_panics")),
            queue_wait: registry.histogram(&format!("{name}.queue_wait_ns")),
        });
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared, handler.as_ref()))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool { shared, workers }
    }

    /// Enqueues one job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Draining`] after [`ServicePool::drain`] began —
    /// both return the job to the caller.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned (a worker panicked *while
    /// holding the lock*, which the pop path never does).
    pub fn try_submit(&self, job: T) -> Result<(), SubmitError<T>> {
        let mut state = self.shared.state.lock().expect("service queue poisoned");
        if state.draining {
            return Err(SubmitError::Draining(job));
        }
        if state.jobs.len() >= self.shared.capacity {
            drop(state);
            self.shared.rejected.incr();
            return Err(SubmitError::Full(job));
        }
        state.jobs.push_back(Queued {
            job,
            ctx: svt_obs::context::current(),
            enqueued: Instant::now(),
        });
        let depth = state.jobs.len();
        drop(state);
        self.shared.submitted.incr();
        self.shared
            .depth_gauge
            .set(i64::try_from(depth).unwrap_or(i64::MAX));
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Pending (not yet claimed) jobs right now.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops intake, waits for the workers to finish every accepted
    /// job, and joins them. Returns the number of workers joined.
    pub fn drain(mut self) -> usize {
        self.drain_in_place()
    }

    fn drain_in_place(&mut self) -> usize {
        {
            let mut state = self.shared.state.lock().expect("service queue poisoned");
            state.draining = true;
        }
        self.shared.wake.notify_all();
        let mut joined = 0;
        for worker in self.workers.drain(..) {
            // A worker that panicked outside the handler guard is a bug,
            // but it must not poison drain for the rest.
            let _ = worker.join();
            joined += 1;
        }
        joined
    }
}

impl<T: Send + 'static> Drop for ServicePool<T> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.drain_in_place();
        }
    }
}

fn worker_loop<T, F: Fn(T)>(shared: &Shared<T>, handler: &F) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    shared
                        .depth_gauge
                        .set(i64::try_from(state.jobs.len()).unwrap_or(i64::MAX));
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .wake
                    .wait(state)
                    .expect("service queue poisoned while waiting");
            }
        };
        let wait_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.queue_wait.record(wait_ns);
        let _ = QUEUE_WAIT_NS.try_with(|cell| cell.set(wait_ns));
        // Re-enter the submitter's request context so everything the
        // handler records is attributed to the originating request.
        let ctx_guard = job.ctx.map(svt_obs::context::enter);
        shared.inflight_gauge.add(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| handler(job.job)));
        shared.inflight_gauge.add(-1);
        drop(ctx_guard);
        let _ = QUEUE_WAIT_NS.try_with(|cell| cell.set(0));
        shared.completed.incr();
        if outcome.is_err() {
            shared.panics.incr();
            // A panicking handler is a flight-recorder trigger: dump the
            // black box while the evidence is fresh (no-op unless a
            // post-mortem path is configured).
            let _ = svt_obs::recorder::post_mortem("handler_panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_exactly_once_and_drain_completes_all() {
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let (s, c) = (Arc::clone(&sum), Arc::clone(&count));
        let pool = ServicePool::spawn("test.svc.once", 3, 64, move |job: usize| {
            s.fetch_add(job, Ordering::Relaxed);
            c.fetch_add(1, Ordering::Relaxed);
        });
        let mut submitted = 0;
        for job in 0..50 {
            if pool.try_submit(job).is_ok() {
                submitted += 1;
            }
        }
        assert_eq!(pool.drain(), 3);
        assert_eq!(count.load(Ordering::Relaxed), submitted);
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        // One worker blocked forever-ish on a gate, capacity 2: the third
        // un-served submit must come back as Full with the job intact.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let pool = ServicePool::spawn("test.svc.full", 1, 2, move |_job: u32| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // First job occupies the worker; wait for it to be claimed.
        pool.try_submit(100).unwrap();
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(101).unwrap();
        pool.try_submit(102).unwrap();
        let err = pool.try_submit(103).expect_err("queue is full");
        assert!(err.is_full());
        assert_eq!(err.into_job(), 103);
        // Open the gate so drain can finish.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.drain();
    }

    #[test]
    fn panicking_handler_leaves_workers_alive() {
        let served = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&served);
        let pool = ServicePool::spawn("test.svc.panic", 2, 16, move |job: u32| {
            assert!(job != 7, "injected handler fault");
            s.fetch_add(1, Ordering::Relaxed);
        });
        for job in 0..16 {
            pool.try_submit(job).unwrap();
        }
        assert_eq!(pool.drain(), 2, "both workers survive the panic");
        assert_eq!(served.load(Ordering::Relaxed), 15);
        assert!(
            svt_obs::registry()
                .counter("test.svc.panic.handler_panics")
                .get()
                >= 1
        );
    }

    #[test]
    fn request_context_propagates_to_the_worker() {
        let seen = Arc::new(Mutex::new(Vec::<Option<u64>>::new()));
        let s = Arc::clone(&seen);
        let pool = ServicePool::spawn("test.svc.ctx", 1, 8, move |_job: u32| {
            s.lock()
                .unwrap()
                .push(svt_obs::context::current().map(|c| c.trace_id));
        });
        {
            let _guard = svt_obs::context::enter(svt_obs::RequestContext {
                trace_id: 4242,
                route: "/eco".into(),
                design: "builtin".into(),
            });
            pool.try_submit(1).unwrap();
        }
        // Submitted outside any context: the worker must see none.
        pool.try_submit(2).unwrap();
        pool.drain();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[Some(4242), None]);
        assert!(
            svt_obs::context::current().is_none(),
            "worker context must not leak to the submitter"
        );
    }

    #[test]
    fn queue_wait_is_measured_and_readable_from_the_handler() {
        assert_eq!(current_queue_wait_ns(), 0, "no pool job on this thread");
        let waits = Arc::new(Mutex::new(Vec::<u64>::new()));
        let w = Arc::clone(&waits);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let pool = ServicePool::spawn("test.svc.wait", 1, 8, move |_job: u32| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            w.lock().unwrap().push(current_queue_wait_ns());
        });
        // First job occupies the worker; the second queues behind it and
        // must observe a wait of at least the sleep below.
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.drain();
        let waits = waits.lock().unwrap();
        assert_eq!(waits.len(), 2);
        assert!(
            waits[1] >= 5_000_000,
            "queued job must see >= 5ms wait, got {}ns",
            waits[1]
        );
        let hist = svt_obs::registry().histogram("test.svc.wait.queue_wait_ns");
        assert_eq!(hist.count(), 2, "every claimed job records its wait");
    }

    #[test]
    fn draining_pool_rejects_new_jobs() {
        let pool: ServicePool<u32> = ServicePool::spawn("test.svc.drain", 1, 4, |_| {});
        pool.try_submit(1).unwrap();
        // Drop triggers drain; a second handle can't exist, so test the
        // flag through drain() + a fresh pool instead.
        let joined = pool.drain();
        assert_eq!(joined, 1);
    }
}
