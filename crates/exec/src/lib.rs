//! Execution layer for the svt pipeline.
//!
//! Two building blocks shared by every hot path in the workspace:
//!
//! * [`pool`] — a scoped worker pool over `std::thread` with a
//!   [`par_map`]-style API. Results land in pre-indexed
//!   slots, so output ordering (and therefore any downstream
//!   floating-point accumulation order) is identical to the sequential
//!   path regardless of which worker ran which item.
//! * [`cache`] — a sharded, lock-striped memoization cache
//!   ([`cache::MemoCache`]) for expensive simulation results, plus the
//!   [`quant`] helpers used to build stable keys from `f64` parameters.
//!
//! Long-running services additionally arm the [`watchdog`], which
//! heartbeats every pool task and flags the ones stuck past a deadline;
//! batch runs leave it disarmed at the cost of one relaxed load per batch.
//!
//! Thread count resolution: an explicit override always wins, then the
//! `SVT_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.
#![warn(missing_docs)]

pub mod cache;
pub mod pool;
pub mod quant;
pub mod watchdog;

pub use cache::{register_cache_telemetry, CacheStats, MemoCache};
pub use pool::{par_map, par_map_threads, resolve_threads, try_par_map, try_par_map_threads};
pub use quant::{qf64, quantize_f64, unquantize_f64};
