//! Execution layer for the svt pipeline.
//!
//! Three building blocks shared by every hot path in the workspace:
//!
//! * [`pool`] — a scoped worker pool over `std::thread` with a
//!   [`par_map`]-style API. Results land in pre-indexed
//!   slots, so output ordering (and therefore any downstream
//!   floating-point accumulation order) is identical to the sequential
//!   path regardless of which worker ran which item. [`try_par_chunks`]
//!   batches cheap per-index work into contiguous range tasks.
//! * [`cache`] — a sharded, lock-striped memoization cache
//!   ([`cache::MemoCache`]) for expensive simulation results, plus the
//!   [`quant`] helpers used to build stable keys from `f64` parameters.
//! * [`arena`] — a bump-allocated scratch arena ([`ScratchArena`]) with a
//!   thread-safe checkout pool ([`ScratchPool`]), serving the sign-off
//!   hot path's per-analysis temporaries without heap traffic.
//!
//! Long-running services build on two more pieces: [`service`] — a
//! *persistent* bounded worker pool ([`service::ServicePool`]) whose
//! non-blocking `try_submit` hands rejected jobs back for load
//! shedding — and the [`watchdog`], which
//! heartbeats every pool task and flags the ones stuck past a deadline;
//! batch runs leave it disarmed at the cost of one relaxed load per batch.
//!
//! Thread count resolution: an explicit override always wins, then the
//! `SVT_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod pool;
pub mod quant;
pub mod service;
pub mod watchdog;

pub use arena::{ScratchArena, ScratchGuard, ScratchPool};
pub use cache::{register_cache_telemetry, CacheStats, MemoCache};
pub use pool::{
    par_map, par_map_threads, resolve_threads, try_par_chunks, try_par_map, try_par_map_threads,
};
pub use quant::{qf64, quantize_f64, unquantize_f64};
pub use service::{ServicePool, SubmitError};
