//! Gate-level netlists for the `svt` workspace.
//!
//! The paper's evaluation synthesizes ISCAS85 benchmark circuits onto the
//! 10-cell library and times them. This crate provides the chain up to
//! technology mapping:
//!
//! * [`Netlist`] — a validated combinational gate network in the ISCAS85
//!   `.bench` vocabulary (AND/NAND/OR/NOR/NOT/BUFF/XOR/XNOR),
//! * [`mod@bench`] — parser and writer for the `.bench` text format,
//! * [`generate_benchmark`] — a deterministic, seeded generator producing
//!   circuits with the published ISCAS85 gate/PI/PO counts (the original
//!   netlists are not redistributable in this offline environment; the
//!   methodology only depends on circuit scale, depth, and connectivity
//!   statistics, which the generator reproduces — see DESIGN.md),
//! * [`technology_map`] — structural mapping onto the svt90 cell library,
//!   producing the [`MappedNetlist`] the placer and timer consume.
//!
//! # Examples
//!
//! ```
//! use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
//! use svt_stdcell::Library;
//!
//! let profile = BenchmarkProfile::iscas85("c432").expect("known benchmark");
//! let netlist = generate_benchmark(&profile);
//! assert_eq!(netlist.gates().len(), 160);
//! let lib = Library::svt90();
//! let mapped = technology_map(&netlist, &lib)?;
//! assert!(mapped.instances().len() >= netlist.gates().len());
//! # Ok::<(), svt_netlist::NetlistError>(())
//! ```

pub mod bench;
mod error;
mod gate;
mod generator;
mod mapped;
mod netlist;
mod techmap;
pub mod verilog;

pub use error::NetlistError;
pub use gate::{Gate, GateKind};
pub use generator::{generate_benchmark, BenchmarkProfile, ISCAS85_PROFILES, SCALING_PROFILES};
pub use mapped::{MappedInstance, MappedNetlist};
pub use netlist::{Netlist, NetlistStats};
pub use techmap::technology_map;
