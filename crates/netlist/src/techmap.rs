use svt_stdcell::Library;

use crate::{GateKind, MappedInstance, MappedNetlist, Netlist, NetlistError};

/// Structurally maps a `.bench`-vocabulary netlist onto the svt90 library.
///
/// Mapping rules ("synthesize ISCAS85 benchmark circuits with the 10
/// cells", paper §4):
///
/// * `NOT` → `INVX1`; `BUFF` → `BUFX2`
/// * `NAND` of 2–4 inputs → `NANDnX1`; wider NANDs decompose into an AND
///   tree followed by a final NAND
/// * `AND` → NAND + INVX1
/// * `NOR` of 2–3 inputs → `NORnX1`; wider NORs decompose likewise
/// * `OR` → NOR + INVX1
/// * `XOR(a,b)` → `NOR2X1` + `AOI21X1` (`!((a·b) + !(a+b))`); wider XORs
///   chain; `XNOR(a,b)` → `NAND2X1` + `OAI21X1` (`!((a+b)·!(a·b))`)
/// * a post-pass upsizes `INVX1` instances driving four or more loads to
///   `INVX2`
///
/// Intermediate nets are named `<output>__m<k>` and instances `u<k>`.
///
/// # Errors
///
/// Returns [`NetlistError::UnmappableGate`] for arities the decomposition
/// cannot handle (none exist for valid netlists) and
/// [`NetlistError::InvalidNetlist`] if the result fails validation.
pub fn technology_map(netlist: &Netlist, library: &Library) -> Result<MappedNetlist, NetlistError> {
    let _span = svt_obs::span("netlist.techmap");
    let mut mapper = Mapper {
        library,
        instances: Vec::new(),
        fresh: 0,
    };
    for gate in netlist.gates() {
        mapper.map_gate(&gate.output, gate.kind, &gate.inputs)?;
    }
    upsize_inverters(&mut mapper.instances, library);
    MappedNetlist::new(
        netlist.name(),
        netlist.inputs().to_vec(),
        netlist.outputs().to_vec(),
        mapper.instances,
        library,
    )
}

/// Replaces `INVX1` instances driving four or more input pins with the
/// double-strength `INVX2` (same A/Z interface).
fn upsize_inverters(instances: &mut [MappedInstance], library: &Library) {
    use std::collections::HashMap;
    let mut fanout: HashMap<&str, usize> = HashMap::new();
    for inst in instances.iter() {
        let Some(cell) = library.cell(&inst.cell) else {
            continue;
        };
        for pin in cell.input_pins() {
            if let Some(net) = inst.net_of(&pin.name) {
                *fanout.entry(net).or_default() += 1;
            }
        }
    }
    let upsized: Vec<usize> = instances
        .iter()
        .enumerate()
        .filter(|(_, inst)| {
            inst.cell == "INVX1"
                && inst
                    .net_of("Z")
                    .map(|net| fanout.get(net).copied().unwrap_or(0) >= 4)
                    .unwrap_or(false)
        })
        .map(|(i, _)| i)
        .collect();
    for i in upsized {
        instances[i].cell = "INVX2".to_string();
    }
}

struct Mapper<'a> {
    library: &'a Library,
    instances: Vec<MappedInstance>,
    fresh: usize,
}

impl Mapper<'_> {
    fn fresh_net(&mut self, base: &str) -> String {
        let id = self.fresh;
        self.fresh += 1;
        format!("{base}__m{id}")
    }

    fn emit(&mut self, cell: &str, inputs: &[String], output: &str) {
        let cell_def = self
            .library
            .cell(cell)
            .unwrap_or_else(|| panic!("svt90 library is missing `{cell}`"));
        let mut connections: Vec<(String, String)> = cell_def
            .input_pins()
            .zip(inputs)
            .map(|(pin, net)| (pin.name.clone(), net.clone()))
            .collect();
        assert_eq!(
            connections.len(),
            inputs.len(),
            "cell `{cell}` pin count mismatch for {inputs:?}"
        );
        connections.push((cell_def.output_pin().name.clone(), output.to_string()));
        let name = format!("u{}", self.instances.len());
        self.instances.push(MappedInstance {
            name,
            cell: cell.to_string(),
            connections,
        });
    }

    fn map_gate(
        &mut self,
        output: &str,
        kind: GateKind,
        inputs: &[String],
    ) -> Result<(), NetlistError> {
        match kind {
            GateKind::Not => self.emit("INVX1", inputs, output),
            GateKind::Buff => self.emit("BUFX2", inputs, output),
            GateKind::Nand => self.nand_into(output, inputs)?,
            GateKind::And => {
                let n = self.fresh_net(output);
                self.nand_into(&n, inputs)?;
                self.emit("INVX1", &[n], output);
            }
            GateKind::Nor => self.nor_into(output, inputs)?,
            GateKind::Or => {
                let n = self.fresh_net(output);
                self.nor_into(&n, inputs)?;
                self.emit("INVX1", &[n], output);
            }
            GateKind::Xor => self.xor_into(output, inputs)?,
            GateKind::Xnor => {
                if inputs.len() == 2 {
                    // XNOR(a,b) = !((a+b)·!(a·b)) = OAI21(a, b, NAND(a,b)).
                    let t = self.fresh_net(output);
                    self.emit("NAND2X1", inputs, &t);
                    self.emit(
                        "OAI21X1",
                        &[inputs[0].clone(), inputs[1].clone(), t],
                        output,
                    );
                } else {
                    let n = self.fresh_net(output);
                    self.xor_into(&n, inputs)?;
                    self.emit("INVX1", &[n], output);
                }
            }
        }
        Ok(())
    }

    /// NAND of any arity ≥ 2 into `output`.
    fn nand_into(&mut self, output: &str, inputs: &[String]) -> Result<(), NetlistError> {
        match inputs.len() {
            0 | 1 => Err(NetlistError::UnmappableGate {
                gate: output.to_string(),
                reason: format!("NAND of {} inputs", inputs.len()),
            }),
            2 => {
                self.emit("NAND2X1", inputs, output);
                Ok(())
            }
            3 => {
                self.emit("NAND3X1", inputs, output);
                Ok(())
            }
            4 => {
                self.emit("NAND4X1", inputs, output);
                Ok(())
            }
            _ => {
                // AND the first 4, then NAND the reduced list.
                let head = self.fresh_net(output);
                let nand_head = self.fresh_net(output);
                self.emit("NAND4X1", &inputs[..4], &nand_head);
                self.emit("INVX1", &[nand_head], &head);
                let mut rest = vec![head];
                rest.extend_from_slice(&inputs[4..]);
                self.nand_into(output, &rest)
            }
        }
    }

    /// NOR of any arity ≥ 2 into `output`.
    fn nor_into(&mut self, output: &str, inputs: &[String]) -> Result<(), NetlistError> {
        match inputs.len() {
            0 | 1 => Err(NetlistError::UnmappableGate {
                gate: output.to_string(),
                reason: format!("NOR of {} inputs", inputs.len()),
            }),
            2 => {
                self.emit("NOR2X1", inputs, output);
                Ok(())
            }
            3 => {
                self.emit("NOR3X1", inputs, output);
                Ok(())
            }
            _ => {
                // OR the first 3, then NOR the reduced list.
                let head = self.fresh_net(output);
                let nor_head = self.fresh_net(output);
                self.emit("NOR3X1", &inputs[..3], &nor_head);
                self.emit("INVX1", &[nor_head], &head);
                let mut rest = vec![head];
                rest.extend_from_slice(&inputs[3..]);
                self.nor_into(output, &rest)
            }
        }
    }

    /// XOR of any arity ≥ 2 into `output`: two-input XORs chained.
    fn xor_into(&mut self, output: &str, inputs: &[String]) -> Result<(), NetlistError> {
        if inputs.len() < 2 {
            return Err(NetlistError::UnmappableGate {
                gate: output.to_string(),
                reason: format!("XOR of {} inputs", inputs.len()),
            });
        }
        let mut acc = inputs[0].clone();
        for (k, b) in inputs[1..].iter().enumerate() {
            let target = if k + 2 == inputs.len() {
                output.to_string()
            } else {
                self.fresh_net(output)
            };
            self.xor2_into(&target, &acc, b);
            acc = target;
        }
        Ok(())
    }

    /// Two-input XOR via the complex gate:
    /// `XOR(a,b) = !((a·b) + !(a+b)) = AOI21(a, b, NOR(a,b))`.
    fn xor2_into(&mut self, output: &str, a: &str, b: &str) {
        let t = self.fresh_net(output);
        self.emit("NOR2X1", &[a.to_string(), b.to_string()], &t);
        self.emit("AOI21X1", &[a.to_string(), b.to_string(), t], output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench, generate_benchmark, BenchmarkProfile, Gate};

    fn lib() -> Library {
        Library::svt90()
    }

    fn map_one(kind: GateKind, arity: usize) -> MappedNetlist {
        let inputs: Vec<String> = (0..arity).map(|i| format!("i{i}")).collect();
        let n = Netlist::new(
            "t",
            inputs.clone(),
            vec!["z".into()],
            vec![Gate::new("z", kind, inputs).unwrap()],
        )
        .unwrap();
        technology_map(&n, &lib()).unwrap()
    }

    #[test]
    fn direct_mappings_use_single_cells() {
        assert_eq!(map_one(GateKind::Not, 1).instances()[0].cell, "INVX1");
        assert_eq!(map_one(GateKind::Buff, 1).instances()[0].cell, "BUFX2");
        assert_eq!(map_one(GateKind::Nand, 2).instances()[0].cell, "NAND2X1");
        assert_eq!(map_one(GateKind::Nand, 3).instances()[0].cell, "NAND3X1");
        assert_eq!(map_one(GateKind::Nand, 4).instances()[0].cell, "NAND4X1");
        assert_eq!(map_one(GateKind::Nor, 2).instances()[0].cell, "NOR2X1");
        assert_eq!(map_one(GateKind::Nor, 3).instances()[0].cell, "NOR3X1");
    }

    #[test]
    fn composite_mappings_decompose() {
        assert_eq!(map_one(GateKind::And, 2).instances().len(), 2);
        assert_eq!(map_one(GateKind::Or, 3).instances().len(), 2);
        // XOR = NOR2 + AOI21; XNOR = NAND2 + OAI21.
        let xor = map_one(GateKind::Xor, 2);
        assert_eq!(xor.instances().len(), 2);
        assert!(xor.instances().iter().any(|i| i.cell == "AOI21X1"));
        let xnor = map_one(GateKind::Xnor, 2);
        assert_eq!(xnor.instances().len(), 2);
        assert!(xnor.instances().iter().any(|i| i.cell == "OAI21X1"));
        // 3-input XOR chains two 2-input XORs.
        assert_eq!(map_one(GateKind::Xor, 3).instances().len(), 4);
        // NAND6 = NAND4 + INV + NAND3(head, i4, i5).
        let m = map_one(GateKind::Nand, 6);
        assert_eq!(m.instances().len(), 3);
        // NOR5 = NOR3 + INV + NOR3(head, i3, i4).
        let m = map_one(GateKind::Nor, 5);
        assert_eq!(m.instances().len(), 3);
    }

    #[test]
    fn mapping_preserves_logic_on_c17() {
        // The mapped netlist is structural; spot-check by evaluating the
        // bench netlist and checking instance connectivity shape.
        let text = "# c17\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\nOUTPUT(G22)\nOUTPUT(G23)\nG10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\nG19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n";
        let n = bench::parse(text).unwrap();
        let m = technology_map(&n, &lib()).unwrap();
        assert_eq!(m.instances().len(), 6);
        assert!(m.instances().iter().all(|i| i.cell == "NAND2X1"));
        // Every net in the original netlist exists in the mapped one.
        let drivers = m.net_drivers(&lib());
        for g in n.gates() {
            assert!(drivers.contains_key(&g.output), "missing net {}", g.output);
        }
    }

    #[test]
    fn high_fanout_inverters_are_upsized() {
        // One inverter driving four other inverters.
        let inputs = vec!["a".to_string()];
        let mut gates = vec![Gate::new("n", GateKind::Not, inputs.clone()).unwrap()];
        let mut outs = Vec::new();
        for k in 0..4 {
            let name = format!("z{k}");
            gates.push(Gate::new(&name, GateKind::Not, vec!["n".into()]).unwrap());
            outs.push(name);
        }
        let n = Netlist::new("fan", inputs, outs, gates).unwrap();
        let m = technology_map(&n, &lib()).unwrap();
        let driver = m
            .instances()
            .iter()
            .find(|i| i.net_of("Z") == Some("n"))
            .unwrap();
        assert_eq!(driver.cell, "INVX2");
        // The leaf inverters stay X1.
        assert!(m.instances().iter().any(|i| i.cell == "INVX1"));
    }

    #[test]
    fn full_benchmark_maps_and_validates() {
        let p = BenchmarkProfile::iscas85("c432").unwrap();
        let n = generate_benchmark(&p);
        let m = technology_map(&n, &lib()).unwrap();
        // Mapping only adds instances (XOR decomposition etc.).
        assert!(m.instances().len() >= n.gates().len());
        let usage = m.cell_usage();
        assert!(usage.keys().all(|c| lib().cell(c).is_some()));
    }
}
