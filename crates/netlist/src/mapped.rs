use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use svt_stdcell::Library;

use crate::NetlistError;

/// One placed-and-routable cell instance of a mapped netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedInstance {
    /// Instance name, unique in the netlist.
    pub name: String,
    /// Library cell name (e.g. `NAND2X1`).
    pub cell: String,
    /// `(pin, net)` connections; inputs in library pin order, then the
    /// output.
    pub connections: Vec<(String, String)>,
}

impl MappedInstance {
    /// The net connected to a pin, if any.
    #[must_use]
    pub fn net_of(&self, pin: &str) -> Option<&str> {
        self.connections
            .iter()
            .find(|(p, _)| p == pin)
            .map(|(_, n)| n.as_str())
    }
}

/// A technology-mapped netlist: instances of library cells connected by
/// nets.
///
/// # Examples
///
/// ```
/// use svt_netlist::{bench, technology_map};
/// use svt_stdcell::Library;
///
/// let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let mapped = technology_map(&n, &Library::svt90())?;
/// assert_eq!(mapped.instances().len(), 1);
/// assert_eq!(mapped.instances()[0].cell, "INVX1");
/// # Ok::<(), svt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedNetlist {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    instances: Vec<MappedInstance>,
}

impl MappedNetlist {
    /// Creates and validates a mapped netlist against a library.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNetlist`] on unknown cells, missing
    /// or extra pin connections, multiply driven nets, or undriven loads.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        outputs: Vec<String>,
        instances: Vec<MappedInstance>,
        library: &Library,
    ) -> Result<MappedNetlist, NetlistError> {
        let netlist = MappedNetlist {
            name: name.into(),
            inputs,
            outputs,
            instances,
        };
        netlist.validate(library)?;
        Ok(netlist)
    }

    fn validate(&self, library: &Library) -> Result<(), NetlistError> {
        let mut driven: HashSet<&str> = self.inputs.iter().map(String::as_str).collect();
        let mut names: HashSet<&str> = HashSet::new();
        for inst in &self.instances {
            if !names.insert(&inst.name) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("duplicate instance name `{}`", inst.name),
                });
            }
            let cell = library
                .cell(&inst.cell)
                .ok_or_else(|| NetlistError::InvalidNetlist {
                    reason: format!("instance `{}` uses unknown cell `{}`", inst.name, inst.cell),
                })?;
            for pin in cell.pins() {
                if inst.net_of(&pin.name).is_none() {
                    return Err(NetlistError::InvalidNetlist {
                        reason: format!(
                            "instance `{}` leaves pin `{}` unconnected",
                            inst.name, pin.name
                        ),
                    });
                }
            }
            if inst.connections.len() != cell.pins().len() {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("instance `{}` has extra connections", inst.name),
                });
            }
            let out_net = inst.net_of(&cell.output_pin().name).expect("checked above");
            if !driven.insert(out_net) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("net `{out_net}` has multiple drivers"),
                });
            }
        }
        for inst in &self.instances {
            let cell = library.cell(&inst.cell).expect("checked above");
            for pin in cell.input_pins() {
                let net = inst.net_of(&pin.name).expect("checked above");
                if !driven.contains(net) {
                    return Err(NetlistError::InvalidNetlist {
                        reason: format!("instance `{}` input net `{net}` is undriven", inst.name),
                    });
                }
            }
        }
        for po in &self.outputs {
            if !driven.contains(po.as_str()) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("primary output `{po}` is undriven"),
                });
            }
        }
        Ok(())
    }

    /// Re-masters one instance to a pin-compatible cell (an ECO cell
    /// swap), returning the instance index.
    ///
    /// The new cell must exist in the library and expose *exactly* the
    /// pin names the current master does, so every `(pin, net)`
    /// connection — and therefore the whole net graph — is untouched.
    /// This is what keeps downstream incremental timing sound: a swap
    /// can change delays, slews, and pin loads, never connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNetlist`] if the instance or cell
    /// is unknown, or the pin names differ.
    pub fn swap_cell(
        &mut self,
        instance: &str,
        new_cell: &str,
        library: &Library,
    ) -> Result<usize, NetlistError> {
        let idx = self
            .instances
            .iter()
            .position(|i| i.name == instance)
            .ok_or_else(|| NetlistError::InvalidNetlist {
                reason: format!("unknown instance `{instance}`"),
            })?;
        let cell = library
            .cell(new_cell)
            .ok_or_else(|| NetlistError::InvalidNetlist {
                reason: format!("unknown cell `{new_cell}`"),
            })?;
        let inst = &self.instances[idx];
        let mut connected: Vec<&str> = inst.connections.iter().map(|(p, _)| p.as_str()).collect();
        let mut pins: Vec<&str> = cell.pins().iter().map(|p| p.name.as_str()).collect();
        connected.sort_unstable();
        pins.sort_unstable();
        if connected != pins {
            return Err(NetlistError::InvalidNetlist {
                reason: format!(
                    "cannot swap `{instance}` ({}) to `{new_cell}`: pin names differ \
                     ({connected:?} vs {pins:?})",
                    inst.cell
                ),
            });
        }
        self.instances[idx].cell = new_cell.to_string();
        Ok(idx)
    }

    /// Circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// The instances.
    #[must_use]
    pub fn instances(&self) -> &[MappedInstance] {
        &self.instances
    }

    /// An instance by name.
    #[must_use]
    pub fn instance(&self, name: &str) -> Option<&MappedInstance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// For every net: the `(instance index, input pin)` sinks, keyed by net
    /// name. Used for load computation and timing-graph construction.
    #[must_use]
    pub fn net_sinks(&self, library: &Library) -> HashMap<String, Vec<(usize, String)>> {
        let mut sinks: HashMap<String, Vec<(usize, String)>> = HashMap::new();
        for (idx, inst) in self.instances.iter().enumerate() {
            let Some(cell) = library.cell(&inst.cell) else {
                continue;
            };
            for pin in cell.input_pins() {
                if let Some(net) = inst.net_of(&pin.name) {
                    sinks
                        .entry(net.to_string())
                        .or_default()
                        .push((idx, pin.name.clone()));
                }
            }
        }
        sinks
    }

    /// The driving `(instance index, output pin)` of every instance-driven
    /// net.
    #[must_use]
    pub fn net_drivers(&self, library: &Library) -> HashMap<String, (usize, String)> {
        let mut drivers = HashMap::new();
        for (idx, inst) in self.instances.iter().enumerate() {
            let Some(cell) = library.cell(&inst.cell) else {
                continue;
            };
            let out = &cell.output_pin().name;
            if let Some(net) = inst.net_of(out) {
                drivers.insert(net.to_string(), (idx, out.clone()));
            }
        }
        drivers
    }

    /// Cell-usage counts, for area/profile reporting.
    #[must_use]
    pub fn cell_usage(&self) -> HashMap<String, usize> {
        let mut usage: HashMap<String, usize> = HashMap::new();
        for inst in &self.instances {
            *usage.entry(inst.cell.clone()).or_default() += 1;
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(name: &str, cell: &str, conns: &[(&str, &str)]) -> MappedInstance {
        MappedInstance {
            name: name.into(),
            cell: cell.into(),
            connections: conns
                .iter()
                .map(|(p, n)| (p.to_string(), n.to_string()))
                .collect(),
        }
    }

    fn lib() -> Library {
        Library::svt90()
    }

    #[test]
    fn valid_netlist_constructs() {
        let m = MappedNetlist::new(
            "t",
            vec!["a".into(), "b".into()],
            vec!["z".into()],
            vec![
                inst("u1", "NAND2X1", &[("A", "a"), ("B", "b"), ("Z", "n1")]),
                inst("u2", "INVX1", &[("A", "n1"), ("Z", "z")]),
            ],
            &lib(),
        )
        .unwrap();
        assert_eq!(m.instances().len(), 2);
        assert!(m.instance("u1").is_some());
        assert_eq!(m.cell_usage().get("INVX1"), Some(&1));
        let sinks = m.net_sinks(&lib());
        assert_eq!(sinks.get("n1").map(Vec::len), Some(1));
        let drivers = m.net_drivers(&lib());
        assert_eq!(drivers.get("z").map(|(i, _)| *i), Some(1));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let err = MappedNetlist::new(
            "t",
            vec!["a".into()],
            vec!["z".into()],
            vec![inst("u1", "MYSTERY", &[("A", "a"), ("Z", "z")])],
            &lib(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn unconnected_pin_is_rejected() {
        let err = MappedNetlist::new(
            "t",
            vec!["a".into()],
            vec!["z".into()],
            vec![inst("u1", "NAND2X1", &[("A", "a"), ("Z", "z")])],
            &lib(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn double_driver_is_rejected() {
        let err = MappedNetlist::new(
            "t",
            vec!["a".into()],
            vec!["z".into()],
            vec![
                inst("u1", "INVX1", &[("A", "a"), ("Z", "z")]),
                inst("u2", "INVX1", &[("A", "a"), ("Z", "z")]),
            ],
            &lib(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn undriven_load_is_rejected() {
        let err = MappedNetlist::new(
            "t",
            vec!["a".into()],
            vec!["z".into()],
            vec![inst("u1", "INVX1", &[("A", "ghost"), ("Z", "z")])],
            &lib(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn swap_cell_requires_pin_compatibility() {
        let library = lib();
        let mut m = MappedNetlist::new(
            "t",
            vec!["a".into()],
            vec!["z".into()],
            vec![inst("u1", "INVX1", &[("A", "a"), ("Z", "z")])],
            &library,
        )
        .unwrap();
        // INVX1 -> INVX2 shares pin names A/Z: allowed, connections kept.
        let idx = m.swap_cell("u1", "INVX2", &library).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(m.instances()[0].cell, "INVX2");
        assert_eq!(m.instances()[0].net_of("A"), Some("a"));
        m.validate(&library).expect("swap keeps the netlist valid");
        // NAND2X1 has pins A/B/Z: rejected, netlist untouched.
        assert!(m.swap_cell("u1", "NAND2X1", &library).is_err());
        assert_eq!(m.instances()[0].cell, "INVX2");
        // Unknown instance / cell.
        assert!(m.swap_cell("ghost", "INVX1", &library).is_err());
        assert!(m.swap_cell("u1", "GHOST", &library).is_err());
    }
}
