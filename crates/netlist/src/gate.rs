use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::NetlistError;

/// Gate types of the ISCAS85 `.bench` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Inverter.
    Not,
    /// Buffer.
    Buff,
    /// Two-or-more-input exclusive OR.
    Xor,
    /// Complemented XOR.
    Xnor,
}

impl GateKind {
    /// All kinds.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buff,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Whether exactly one input is allowed.
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buff)
    }

    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input count is invalid for the kind.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        if self.is_unary() {
            assert_eq!(inputs.len(), 1, "{self} takes exactly one input");
        } else {
            assert!(inputs.len() >= 2, "{self} takes at least two inputs");
        }
        match self {
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Not => !inputs[0],
            GateKind::Buff => inputs[0],
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buff => "BUFF",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        f.write_str(s)
    }
}

impl FromStr for GateKind {
    type Err = NetlistError;

    fn from_str(s: &str) -> Result<GateKind, NetlistError> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUFF" | "BUF" => Ok(GateKind::Buff),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            other => Err(NetlistError::UnknownGateKind {
                kind: other.to_string(),
            }),
        }
    }
}

/// One gate of a netlist: `output = KIND(inputs…)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Output signal name (unique in the netlist).
    pub output: String,
    /// Gate kind.
    pub kind: GateKind,
    /// Input signal names.
    pub inputs: Vec<String>,
}

impl Gate {
    /// Creates a gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidGate`] if the input count is invalid
    /// for the kind.
    pub fn new(
        output: impl Into<String>,
        kind: GateKind,
        inputs: Vec<String>,
    ) -> Result<Gate, NetlistError> {
        let output = output.into();
        let ok = if kind.is_unary() {
            inputs.len() == 1
        } else {
            inputs.len() >= 2
        };
        if !ok {
            return Err(NetlistError::InvalidGate {
                gate: output,
                reason: format!("{kind} cannot take {} inputs", inputs.len()),
            });
        }
        Ok(Gate {
            output,
            kind,
            inputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("inv".parse::<GateKind>().unwrap(), GateKind::Not);
        assert_eq!("buf".parse::<GateKind>().unwrap(), GateKind::Buff);
        assert!("MUX".parse::<GateKind>().is_err());
    }

    #[test]
    fn truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buff.eval(&[true]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
    }

    #[test]
    fn arity_is_validated() {
        assert!(Gate::new("g", GateKind::Not, vec!["a".into()]).is_ok());
        assert!(Gate::new("g", GateKind::Not, vec!["a".into(), "b".into()]).is_err());
        assert!(Gate::new("g", GateKind::Nand, vec!["a".into()]).is_err());
        assert!(Gate::new(
            "g",
            GateKind::Nand,
            vec!["a".into(), "b".into(), "c".into()]
        )
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn eval_checks_arity() {
        let _ = GateKind::Nand.eval(&[true]);
    }
}
