//! The ISCAS85 `.bench` text format.
//!
//! ```text
//! # c17 example
//! INPUT(G1)
//! INPUT(G2)
//! OUTPUT(G22)
//! G22 = NAND(G1, G2)
//! ```
//!
//! # Examples
//!
//! ```
//! use svt_netlist::bench;
//!
//! let text = "# tiny\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
//! let netlist = bench::parse(text)?;
//! assert_eq!(netlist.gates().len(), 1);
//! let round_trip = bench::parse(&bench::write(&netlist))?;
//! assert_eq!(round_trip, netlist);
//! # Ok::<(), svt_netlist::NetlistError>(())
//! ```

use crate::{Gate, GateKind, Netlist, NetlistError};

/// Serializes a netlist as `.bench` text.
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        netlist.inputs().len(),
        netlist.outputs().len(),
        netlist.gates().len()
    ));
    for pi in netlist.inputs() {
        out.push_str(&format!("INPUT({pi})\n"));
    }
    for po in netlist.outputs() {
        out.push_str(&format!("OUTPUT({po})\n"));
    }
    for g in netlist.gates() {
        out.push_str(&format!(
            "{} = {}({})\n",
            g.output,
            g.kind,
            g.inputs.join(", ")
        ));
    }
    out
}

/// Parses `.bench` text. The circuit name is taken from the first comment
/// line, if any.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBenchError`] with the failing line on
/// malformed text, and [`NetlistError::InvalidNetlist`] if the parsed
/// structure is inconsistent.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut name: Option<String> = None;
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if name.is_none() {
                let c = comment.trim();
                if !c.is_empty() {
                    name = Some(c.split_whitespace().next().unwrap_or("bench").to_string());
                }
            }
            continue;
        }
        let err = |reason: &str| NetlistError::ParseBenchError {
            line: lineno,
            reason: reason.to_string(),
        };
        if let Some(rest) = strip_keyword(line, "INPUT") {
            inputs.push(parse_paren_name(rest).ok_or_else(|| err("malformed INPUT()"))?);
        } else if let Some(rest) = strip_keyword(line, "OUTPUT") {
            outputs.push(parse_paren_name(rest).ok_or_else(|| err("malformed OUTPUT()"))?);
        } else {
            // `out = KIND(in1, in2, …)`
            let (lhs, rhs) = line.split_once('=').ok_or_else(|| err("expected `=`"))?;
            let output = lhs.trim();
            if output.is_empty() {
                return Err(err("empty gate output name"));
            }
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| err("expected `(`"))?;
            let close = rhs.rfind(')').ok_or_else(|| err("expected `)`"))?;
            if close < open {
                return Err(err("mismatched parentheses"));
            }
            let kind: GateKind = rhs[..open].trim().parse().map_err(|e: NetlistError| {
                NetlistError::ParseBenchError {
                    line: lineno,
                    reason: e.to_string(),
                }
            })?;
            let args: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let gate =
                Gate::new(output, kind, args).map_err(|e| NetlistError::ParseBenchError {
                    line: lineno,
                    reason: e.to_string(),
                })?;
            gates.push(gate);
        }
    }

    Netlist::new(
        name.unwrap_or_else(|| "bench".into()),
        inputs,
        outputs,
        gates,
    )
}

fn strip_keyword<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?;
    // Keyword must be followed directly by the parenthesized name.
    rest.trim_start().starts_with('(').then_some(rest)
}

fn parse_paren_name(rest: &str) -> Option<String> {
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let name = inner.trim();
    (!name.is_empty()).then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parses_the_classic_c17() {
        let n = parse(C17).unwrap();
        assert_eq!(n.name(), "c17");
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.gates().len(), 6);
        assert_eq!(n.stats().depth, 3);
    }

    #[test]
    fn c17_evaluates_correctly() {
        use std::collections::HashMap;
        let n = parse(C17).unwrap();
        let mut a: HashMap<String, bool> = HashMap::new();
        for (pi, v) in [
            ("G1", true),
            ("G2", false),
            ("G3", true),
            ("G6", true),
            ("G7", false),
        ] {
            a.insert(pi.into(), v);
        }
        // G10 = !(1&1)=0, G11 = !(1&1)=0, G16 = !(0&0)=1, G19 = !(0&0)=1,
        // G22 = !(0&1)=1, G23 = !(1&1)=0.
        assert_eq!(n.evaluate(&a).unwrap(), vec![true, false]);
    }

    #[test]
    fn round_trip_is_lossless() {
        let n = parse(C17).unwrap();
        let text = write(&n);
        let n2 = parse(&text).unwrap();
        assert_eq!(n, n2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n";
        match parse(text) {
            Err(NetlistError::ParseBenchError { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("INPUT a\n").is_err());
        assert!(parse("x NAND(a,b)\n").is_err());
        assert!(parse("INPUT(a)\nOUTPUT(z)\nz = NAND(a)\n").is_err());
    }

    #[test]
    fn whitespace_and_blank_lines_are_tolerated() {
        let text = "  # spaced \n\n INPUT( a )\n OUTPUT( z )\n z  =  NOT( a )\n";
        let n = parse(text).unwrap();
        assert_eq!(n.name(), "spaced");
        assert_eq!(n.inputs()[0], "a");
    }

    #[test]
    fn semantic_errors_surface_after_parsing() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::InvalidNetlist { .. })
        ));
    }
}
