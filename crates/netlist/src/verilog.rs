//! Gate-level structural Verilog for mapped netlists.
//!
//! The paper's flow synthesizes benchmarks onto the cell library; the
//! industry interchange for that artifact is structural Verilog. This
//! module writes and parses the small subset such netlists use:
//!
//! ```text
//! module c432 (I0, I1, N12);
//!   input I0, I1;
//!   output N12;
//!   wire n1;
//!   NAND2X1 u0 (.A(I0), .B(I1), .Z(n1));
//!   INVX1 u1 (.A(n1), .Z(N12));
//! endmodule
//! ```
//!
//! # Examples
//!
//! ```
//! use svt_netlist::{bench, technology_map, verilog};
//! use svt_stdcell::Library;
//!
//! let lib = Library::svt90();
//! let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
//! let mapped = technology_map(&n, &lib)?;
//! let text = verilog::write(&mapped, &lib);
//! let round_trip = verilog::parse(&text, &lib)?;
//! assert_eq!(round_trip, mapped);
//! # Ok::<(), svt_netlist::NetlistError>(())
//! ```

use std::collections::BTreeSet;

use svt_stdcell::Library;

use crate::{MappedInstance, MappedNetlist, NetlistError};

/// Sanitizes a net name into a Verilog identifier. The workspace's own
/// names are already clean; this guards against exotic bench names.
fn ident(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Serializes a mapped netlist as structural Verilog.
#[must_use]
pub fn write(netlist: &MappedNetlist, library: &Library) -> String {
    let mut out = String::new();
    let ports: Vec<String> = netlist
        .inputs()
        .iter()
        .chain(netlist.outputs())
        .map(|n| ident(n))
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        ident(netlist.name()),
        ports.join(", ")
    ));
    for pi in netlist.inputs() {
        out.push_str(&format!("  input {};\n", ident(pi)));
    }
    for po in netlist.outputs() {
        out.push_str(&format!("  output {};\n", ident(po)));
    }
    // Internal wires: every connected net that is neither a PI nor a PO.
    let mut ports_set: BTreeSet<String> = netlist.inputs().iter().map(|n| ident(n)).collect();
    ports_set.extend(netlist.outputs().iter().map(|n| ident(n)));
    let mut wires: BTreeSet<String> = BTreeSet::new();
    for inst in netlist.instances() {
        for (_, net) in &inst.connections {
            let w = ident(net);
            if !ports_set.contains(&w) {
                wires.insert(w);
            }
        }
    }
    for w in &wires {
        out.push_str(&format!("  wire {w};\n"));
    }
    for inst in netlist.instances() {
        let conns: Vec<String> = inst
            .connections
            .iter()
            .map(|(pin, net)| format!(".{pin}({})", ident(net)))
            .collect();
        out.push_str(&format!(
            "  {} {} ({});\n",
            inst.cell,
            ident(&inst.name),
            conns.join(", ")
        ));
    }
    out.push_str("endmodule\n");
    let _ = library; // the writer needs no library data; kept for symmetry
    out
}

/// Parses structural Verilog back into a mapped netlist, validated against
/// the library.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBenchError`] (reused for line-tagged syntax
/// failures) or [`NetlistError::InvalidNetlist`] for semantic problems.
pub fn parse(text: &str, library: &Library) -> Result<MappedNetlist, NetlistError> {
    // Statement-oriented: strip comments, split on `;`, keep the module
    // header and `endmodule` special.
    let mut name = String::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut instances = Vec::new();

    let mut lineno = 0usize;
    let mut buffer = String::new();
    let mut statements: Vec<(usize, String)> = Vec::new();
    for line in text.lines() {
        lineno += 1;
        let line = match line.find("//") {
            Some(k) => &line[..k],
            None => line,
        };
        for c in line.chars() {
            if c == ';' {
                statements.push((lineno, buffer.trim().to_string()));
                buffer.clear();
            } else {
                buffer.push(c);
            }
        }
        buffer.push(' ');
    }
    let tail = buffer.trim().to_string();
    if !tail.is_empty() {
        statements.push((lineno, tail));
    }

    let err = |line: usize, reason: &str| NetlistError::ParseBenchError {
        line,
        reason: format!("verilog: {reason}"),
    };

    for (line, stmt) in statements {
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            let rest = rest.trim();
            let open = rest
                .find('(')
                .ok_or_else(|| err(line, "module missing ports"))?;
            name = rest[..open].trim().to_string();
            // Port list is re-derived from input/output declarations.
            continue;
        }
        if stmt == "endmodule" {
            break;
        }
        if let Some(rest) = stmt.strip_prefix("input") {
            for n in rest.split(',') {
                let n = n.trim();
                if n.is_empty() {
                    return Err(err(line, "empty input name"));
                }
                inputs.push(n.to_string());
            }
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("output") {
            for n in rest.split(',') {
                let n = n.trim();
                if n.is_empty() {
                    return Err(err(line, "empty output name"));
                }
                outputs.push(n.to_string());
            }
            continue;
        }
        if stmt.starts_with("wire") {
            continue; // wires are implied by connections
        }
        // Instance: `CELL name ( .PIN(net), … )`.
        let open = stmt
            .find('(')
            .ok_or_else(|| err(line, "instance missing `(`"))?;
        let close = stmt
            .rfind(')')
            .ok_or_else(|| err(line, "instance missing `)`"))?;
        if close < open {
            return Err(err(line, "mismatched parentheses"));
        }
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        let [cell, inst_name] = head.as_slice() else {
            return Err(err(line, "expected `CELL name (…)`"));
        };
        let mut connections = Vec::new();
        for conn in stmt[open + 1..close].split(',') {
            let conn = conn.trim();
            if conn.is_empty() {
                continue;
            }
            let conn = conn
                .strip_prefix('.')
                .ok_or_else(|| err(line, "expected named connection `.PIN(net)`"))?;
            let p_open = conn
                .find('(')
                .ok_or_else(|| err(line, "connection missing `(`"))?;
            let p_close = conn
                .rfind(')')
                .ok_or_else(|| err(line, "connection missing `)`"))?;
            let pin = conn[..p_open].trim().to_string();
            let net = conn[p_open + 1..p_close].trim().to_string();
            if pin.is_empty() || net.is_empty() {
                return Err(err(line, "empty pin or net in connection"));
            }
            connections.push((pin, net));
        }
        instances.push(MappedInstance {
            name: (*inst_name).to_string(),
            cell: (*cell).to_string(),
            connections,
        });
    }

    if name.is_empty() {
        return Err(err(1, "no module declaration"));
    }
    MappedNetlist::new(name, inputs, outputs, instances, library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench, generate_benchmark, technology_map, BenchmarkProfile};

    fn lib() -> Library {
        Library::svt90()
    }

    fn sample() -> MappedNetlist {
        let n = bench::parse("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = NAND(a, b)\nz = NOT(x)\n")
            .unwrap();
        technology_map(&n, &lib()).unwrap()
    }

    #[test]
    fn writes_recognizable_verilog() {
        let text = write(&sample(), &lib());
        assert!(text.starts_with("module t ("));
        assert!(text.contains("input a"));
        assert!(text.contains("output z"));
        assert!(text.contains("wire x"));
        assert!(text.contains("NAND2X1 u0 (.A(a), .B(b), .Z(x))"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn round_trips_a_small_netlist() {
        let m = sample();
        let text = write(&m, &lib());
        assert_eq!(parse(&text, &lib()).unwrap(), m);
    }

    #[test]
    fn round_trips_a_benchmark() {
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let m = technology_map(&n, &lib()).unwrap();
        let text = write(&m, &lib());
        let parsed = parse(&text, &lib()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn tolerates_comments_and_multiline_statements() {
        let text = "\
// a comment
module t (a,
          z);
  input a; // trailing comment
  output z;
  INVX1 u0 (.A(a),
            .Z(z));
endmodule
";
        let m = parse(text, &lib()).unwrap();
        assert_eq!(m.instances().len(), 1);
        assert_eq!(m.instances()[0].cell, "INVX1");
    }

    #[test]
    fn rejects_malformed_and_inconsistent_text() {
        assert!(parse("not verilog", &lib()).is_err());
        assert!(parse("module t (a); input a; endmodule", &lib()).is_ok());
        // Positional connections are not supported.
        let text = "module t (a, z);\n input a;\n output z;\n INVX1 u0 (a, z);\nendmodule\n";
        assert!(parse(text, &lib()).is_err());
        // Unknown cells are semantic errors.
        let text =
            "module t (a, z);\n input a;\n output z;\n GHOST u0 (.A(a), .Z(z));\nendmodule\n";
        assert!(matches!(
            parse(text, &lib()),
            Err(NetlistError::InvalidNetlist { .. })
        ));
    }

    #[test]
    fn exotic_net_names_are_sanitized_on_write() {
        let n = bench::parse("# t\nINPUT(a.b)\nOUTPUT(z)\nz = NOT(a.b)\n").unwrap();
        let m = technology_map(&n, &lib()).unwrap();
        let text = write(&m, &lib());
        assert!(text.contains("a_b"), "dots must be sanitized: {text}");
    }
}
