use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::{Gate, NetlistError};

/// A validated combinational gate network in the `.bench` vocabulary.
///
/// Invariants enforced at construction:
/// * every signal has exactly one driver (a primary input or one gate),
/// * every gate input and primary output is driven,
/// * the network is acyclic.
///
/// # Examples
///
/// ```
/// use svt_netlist::{Gate, GateKind, Netlist};
///
/// let netlist = Netlist::new(
///     "half_adder",
///     vec!["a".into(), "b".into()],
///     vec!["sum".into(), "carry".into()],
///     vec![
///         Gate::new("sum", GateKind::Xor, vec!["a".into(), "b".into()])?,
///         Gate::new("carry", GateKind::And, vec!["a".into(), "b".into()])?,
///     ],
/// )?;
/// assert_eq!(netlist.stats().depth, 1);
/// # Ok::<(), svt_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    gates: Vec<Gate>,
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Longest input-to-output path length in gates.
    pub depth: usize,
    /// Gate count per kind.
    pub by_kind: BTreeMap<String, usize>,
}

impl Netlist {
    /// Creates and validates a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNetlist`] on duplicate drivers,
    /// undriven signals, or combinational cycles.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        outputs: Vec<String>,
        gates: Vec<Gate>,
    ) -> Result<Netlist, NetlistError> {
        let netlist = Netlist {
            name: name.into(),
            inputs,
            outputs,
            gates,
        };
        netlist.validate()?;
        Ok(netlist)
    }

    fn validate(&self) -> Result<(), NetlistError> {
        let mut drivers: HashSet<&str> = HashSet::new();
        for pi in &self.inputs {
            if !drivers.insert(pi) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("duplicate primary input `{pi}`"),
                });
            }
        }
        for g in &self.gates {
            if !drivers.insert(&g.output) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("signal `{}` has multiple drivers", g.output),
                });
            }
        }
        for g in &self.gates {
            for i in &g.inputs {
                if !drivers.contains(i.as_str()) {
                    return Err(NetlistError::InvalidNetlist {
                        reason: format!("gate `{}` input `{i}` is undriven", g.output),
                    });
                }
            }
        }
        for po in &self.outputs {
            if !drivers.contains(po.as_str()) {
                return Err(NetlistError::InvalidNetlist {
                    reason: format!("primary output `{po}` is undriven"),
                });
            }
        }
        // Cycle check via the topological order.
        self.try_topological_order()?;
        Ok(())
    }

    /// Circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Gates in definition order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving a signal, if any (primary inputs have none).
    #[must_use]
    pub fn driver(&self, signal: &str) -> Option<&Gate> {
        self.gates.iter().find(|g| g.output == signal)
    }

    fn try_topological_order(&self) -> Result<Vec<usize>, NetlistError> {
        let index: HashMap<&str, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output.as_str(), i))
            .collect();
        let mut state = vec![0u8; self.gates.len()]; // 0 new, 1 visiting, 2 done
        let mut order = Vec::with_capacity(self.gates.len());
        // Iterative DFS to avoid recursion limits on deep circuits.
        for start in 0..self.gates.len() {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&(node, edge)) = stack.last() {
                let gate = &self.gates[node];
                if edge < gate.inputs.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    if let Some(&child) = index.get(gate.inputs[edge].as_str()) {
                        match state[child] {
                            0 => {
                                state[child] = 1;
                                stack.push((child, 0));
                            }
                            1 => {
                                return Err(NetlistError::InvalidNetlist {
                                    reason: format!(
                                        "combinational cycle through `{}`",
                                        self.gates[child].output
                                    ),
                                });
                            }
                            _ => {}
                        }
                    }
                } else {
                    state[node] = 2;
                    order.push(node);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Gate indices in topological (inputs-before-users) order.
    ///
    /// # Panics
    ///
    /// Never panics for netlists built through [`Netlist::new`], which
    /// rejects cycles.
    #[must_use]
    pub fn topological_order(&self) -> Vec<usize> {
        self.try_topological_order()
            .expect("Netlist::new rejects cyclic netlists")
    }

    /// Logic level of every gate (primary inputs at level 0; a gate is one
    /// above its deepest input), keyed by gate index.
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        let index: HashMap<&str, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output.as_str(), i))
            .collect();
        let order = self.topological_order();
        let mut level = vec![0usize; self.gates.len()];
        for &gi in &order {
            let deepest = self.gates[gi]
                .inputs
                .iter()
                .filter_map(|i| index.get(i.as_str()).map(|&ci| level[ci]))
                .max()
                .unwrap_or(0);
            level[gi] = deepest + 1;
        }
        level
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind.to_string()).or_default() += 1;
        }
        NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            gates: self.gates.len(),
            depth: self.levels().into_iter().max().unwrap_or(0),
            by_kind,
        }
    }

    /// Evaluates the circuit on an input assignment, returning the value of
    /// every primary output in order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNetlist`] if the assignment misses a
    /// primary input.
    pub fn evaluate(&self, assignment: &HashMap<String, bool>) -> Result<Vec<bool>, NetlistError> {
        let mut values: HashMap<&str, bool> = HashMap::new();
        for pi in &self.inputs {
            let v = assignment
                .get(pi)
                .ok_or_else(|| NetlistError::InvalidNetlist {
                    reason: format!("assignment missing input `{pi}`"),
                })?;
            values.insert(pi, *v);
        }
        for &gi in &self.topological_order() {
            let g = &self.gates[gi];
            let ins: Vec<bool> = g
                .inputs
                .iter()
                .map(|i| *values.get(i.as_str()).expect("topological order"))
                .collect();
            values.insert(&g.output, g.kind.eval(&ins));
        }
        Ok(self
            .outputs
            .iter()
            .map(|o| *values.get(o.as_str()).expect("validated drivers"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn gate(out: &str, kind: GateKind, ins: &[&str]) -> Gate {
        Gate::new(out, kind, ins.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    fn adder() -> Netlist {
        Netlist::new(
            "half_adder",
            vec!["a".into(), "b".into()],
            vec!["sum".into(), "carry".into()],
            vec![
                gate("sum", GateKind::Xor, &["a", "b"]),
                gate("carry", GateKind::And, &["a", "b"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_problems() {
        // Duplicate driver.
        let err = Netlist::new(
            "bad",
            vec!["a".into()],
            vec!["x".into()],
            vec![
                gate("x", GateKind::Not, &["a"]),
                gate("x", GateKind::Buff, &["a"]),
            ],
        );
        assert!(err.is_err());
        // Undriven input.
        let err = Netlist::new(
            "bad",
            vec!["a".into()],
            vec!["x".into()],
            vec![gate("x", GateKind::And, &["a", "ghost"])],
        );
        assert!(err.is_err());
        // Undriven output.
        let err = Netlist::new("bad", vec!["a".into()], vec!["zz".into()], vec![]);
        assert!(err.is_err());
        // Cycle.
        let err = Netlist::new(
            "bad",
            vec!["a".into()],
            vec!["x".into()],
            vec![
                gate("x", GateKind::And, &["a", "y"]),
                gate("y", GateKind::Not, &["x"]),
            ],
        );
        assert!(
            matches!(err, Err(NetlistError::InvalidNetlist { reason }) if reason.contains("cycle"))
        );
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let n = Netlist::new(
            "chain",
            vec!["a".into()],
            vec!["z".into()],
            vec![
                gate("z", GateKind::Not, &["y"]),
                gate("y", GateKind::Not, &["x"]),
                gate("x", GateKind::Not, &["a"]),
            ],
        )
        .unwrap();
        let order = n.topological_order();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&i| n.gates()[i].output == name)
                .unwrap()
        };
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
        assert_eq!(n.stats().depth, 3);
    }

    #[test]
    fn evaluation_matches_logic() {
        let n = adder();
        let mut assign = HashMap::new();
        assign.insert("a".to_string(), true);
        assign.insert("b".to_string(), true);
        assert_eq!(n.evaluate(&assign).unwrap(), vec![false, true]);
        assign.insert("b".to_string(), false);
        assert_eq!(n.evaluate(&assign).unwrap(), vec![true, false]);
        assign.remove("a");
        assert!(n.evaluate(&assign).is_err());
    }

    #[test]
    fn stats_count_kinds() {
        let s = adder().stats();
        assert_eq!(s.gates, 2);
        assert_eq!(s.by_kind.get("XOR"), Some(&1));
        assert_eq!(s.by_kind.get("AND"), Some(&1));
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 2);
    }

    #[test]
    fn primary_output_can_be_an_input() {
        // A feed-through: PO driven directly by a PI.
        let n = Netlist::new("wire", vec!["a".into()], vec!["a".into()], vec![]);
        assert!(n.is_ok());
    }

    #[test]
    fn driver_lookup() {
        let n = adder();
        assert_eq!(n.driver("sum").unwrap().kind, GateKind::Xor);
        assert!(n.driver("a").is_none());
    }
}
