use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Gate, GateKind, Netlist};

/// The size profile of a generated benchmark circuit.
///
/// The published ISCAS85 profiles are available through
/// [`BenchmarkProfile::iscas85`]; real netlists are not redistributable in
/// this offline environment, so the workspace regenerates circuits with the
/// same scale (PI / PO / gate counts), a NAND-dominated gate mix, and a
/// locality-biased connectivity that yields realistic logic depth. The
/// timing methodology's results depend only on these statistics (see
/// DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Circuit name (e.g. `c432`).
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

/// The ISCAS85 benchmark profiles: `(name, PIs, POs, gates)` as published
/// by Brglez & Fujiwara (1985).
pub const ISCAS85_PROFILES: [(&str, usize, usize, usize); 10] = [
    ("c432", 36, 7, 160),
    ("c499", 41, 32, 202),
    ("c880", 60, 26, 383),
    ("c1355", 41, 32, 546),
    ("c1908", 33, 25, 880),
    ("c2670", 233, 140, 1193),
    ("c3540", 50, 22, 1669),
    ("c5315", 178, 123, 2307),
    ("c6288", 32, 32, 2416),
    ("c7552", 207, 108, 3512),
];

/// Seeded scaling profiles past the ISCAS85 suite: `(name, PIs, POs,
/// gates)`. The PI/PO counts extrapolate the suite's boundary-to-gate
/// ratios so mapped depth and fanout statistics stay in the realistic
/// band; `bench_scale` uses these to publish the gates-vs-walltime
/// sign-off scaling curve.
pub const SCALING_PROFILES: [(&str, usize, usize, usize); 3] = [
    ("s10k", 512, 256, 10_000),
    ("s100k", 1536, 768, 100_000),
    ("s1m", 4096, 2048, 1_000_000),
];

impl BenchmarkProfile {
    /// The profile of a published ISCAS85 circuit, by name.
    #[must_use]
    pub fn iscas85(name: &str) -> Option<BenchmarkProfile> {
        ISCAS85_PROFILES
            .iter()
            .find(|(n, _, _, _)| *n == name)
            .map(|&(n, pi, po, gates)| BenchmarkProfile {
                name: n.to_string(),
                inputs: pi,
                outputs: po,
                gates,
                seed: seed_of(n),
            })
    }

    /// A seeded scaling profile ([`SCALING_PROFILES`]), by name.
    #[must_use]
    pub fn scaling(name: &str) -> Option<BenchmarkProfile> {
        SCALING_PROFILES
            .iter()
            .find(|(n, _, _, _)| *n == name)
            .map(|&(n, pi, po, gates)| BenchmarkProfile {
                name: n.to_string(),
                inputs: pi,
                outputs: po,
                gates,
                seed: seed_of(n),
            })
    }

    /// A custom profile.
    ///
    /// # Panics
    ///
    /// Panics unless `inputs ≥ 1`, `outputs ≥ 1`, and `gates ≥ outputs`.
    #[must_use]
    pub fn custom(
        name: &str,
        inputs: usize,
        outputs: usize,
        gates: usize,
        seed: u64,
    ) -> BenchmarkProfile {
        assert!(inputs >= 1 && outputs >= 1, "need at least one PI and PO");
        assert!(gates >= outputs, "need at least one gate per output");
        BenchmarkProfile {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            seed,
        }
    }
}

/// A stable seed derived from a benchmark name (FNV-1a).
fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Generates a benchmark circuit from a profile. The same profile always
/// yields the same netlist.
///
/// Structure: gates are created in order; each picks a NAND-heavy kind and
/// draws inputs preferentially from recently created signals (a sliding
/// locality window), which produces the deep, narrow cones typical of the
/// ISCAS85 suite. Primary outputs are the last `outputs` signals with no
/// fanout, topped up with random gates.
///
/// # Panics
///
/// Never panics for profiles built through the [`BenchmarkProfile`]
/// constructors.
#[must_use]
pub fn generate_benchmark(profile: &BenchmarkProfile) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut signals: Vec<String> = (0..profile.inputs).map(|i| format!("I{i}")).collect();
    let inputs = signals.clone();

    // NAND-dominated base mix; the XOR/XNOR share varies per benchmark
    // (seeded) the way real suites do — c6288-class arithmetic circuits
    // are XOR-rich, control logic is not. The share shifts the mapped
    // cell mixture (XORs map onto AOI21/OAI21 complex gates).
    let mut kind_pool = vec![
        GateKind::Nand,
        GateKind::Nand,
        GateKind::Nand,
        GateKind::Nand,
        GateKind::And,
        GateKind::Nor,
        GateKind::Or,
        GateKind::Not,
        GateKind::Buff,
        GateKind::Xor,
    ];
    for _ in 0..(profile.seed % 4) {
        kind_pool.push(GateKind::Xor);
        kind_pool.push(GateKind::Xnor);
    }

    let mut gates: Vec<Gate> = Vec::with_capacity(profile.gates);
    let mut has_fanout = vec![false; profile.inputs + profile.gates];

    for g in 0..profile.gates {
        // A gate can only draw as many distinct inputs as signals exist;
        // single-signal circuits fall back to unary gates.
        let kind = if signals.len() < 2 {
            GateKind::Not
        } else {
            kind_pool[rng.gen_range(0..kind_pool.len())]
        };
        let arity = if kind.is_unary() {
            1
        } else {
            // 2–4 inputs; 2 dominates, matching ISCAS statistics.
            let wanted = *[2usize, 2, 2, 3, 3, 4]
                .get(rng.gen_range(0usize..6))
                .expect("index in range");
            wanted.min(signals.len())
        };
        let mut ins: Vec<usize> = Vec::with_capacity(arity);
        while ins.len() < arity {
            // Locality window: 75% of inputs come from the most recent
            // quarter of the signal list, which builds depth.
            let n = signals.len();
            let idx = if rng.gen_bool(0.75) && n > 4 {
                rng.gen_range(3 * n / 4..n)
            } else {
                rng.gen_range(0..n)
            };
            if !ins.contains(&idx) {
                ins.push(idx);
            }
        }
        let output = format!("N{g}");
        for &i in &ins {
            has_fanout[i] = true;
        }
        let gate = Gate::new(
            output.clone(),
            kind,
            ins.iter().map(|&i| signals[i].clone()).collect(),
        )
        .expect("arity chosen to match the kind");
        gates.push(gate);
        signals.push(output);
    }

    // Primary outputs: dangling gate outputs first (they would otherwise be
    // dead logic), newest first; top up with random gate outputs. The
    // taken set is a bool vector, not a linear scan over the chosen
    // names — the scan made PO selection O(outputs²) and dominated
    // generation at the 100k–1M-gate scaling profiles.
    let mut outputs: Vec<String> = Vec::with_capacity(profile.outputs);
    let mut is_output = vec![false; profile.gates];
    for g in (0..profile.gates).rev() {
        if outputs.len() == profile.outputs {
            break;
        }
        let sig_index = profile.inputs + g;
        if !has_fanout[sig_index] {
            outputs.push(format!("N{g}"));
            is_output[g] = true;
        }
    }
    let mut probe = 0usize;
    while outputs.len() < profile.outputs && probe < profile.gates {
        let g = profile.gates - 1 - probe;
        if !is_output[g] {
            outputs.push(format!("N{g}"));
            is_output[g] = true;
        }
        probe += 1;
    }
    outputs.reverse();

    Netlist::new(profile.name.clone(), inputs, outputs, gates)
        .expect("generator produces valid netlists by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_iscas85_profiles_exist() {
        for (name, pi, po, gates) in ISCAS85_PROFILES {
            let p = BenchmarkProfile::iscas85(name).unwrap();
            assert_eq!((p.inputs, p.outputs, p.gates), (pi, po, gates));
        }
        assert!(BenchmarkProfile::iscas85("c9999").is_none());
    }

    #[test]
    fn generated_counts_match_the_profile() {
        for name in ["c432", "c880", "c3540"] {
            let p = BenchmarkProfile::iscas85(name).unwrap();
            let n = generate_benchmark(&p);
            assert_eq!(n.gates().len(), p.gates, "{name} gates");
            assert_eq!(n.inputs().len(), p.inputs, "{name} PIs");
            assert_eq!(n.outputs().len(), p.outputs, "{name} POs");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = BenchmarkProfile::iscas85("c432").unwrap();
        assert_eq!(generate_benchmark(&p), generate_benchmark(&p));
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let b = generate_benchmark(&BenchmarkProfile::iscas85("c499").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn depth_is_realistic() {
        // ISCAS85 circuits have logic depths in the tens of levels.
        let p = BenchmarkProfile::iscas85("c1908").unwrap();
        let n = generate_benchmark(&p);
        let depth = n.stats().depth;
        assert!(depth >= 10, "depth {depth} too shallow");
        assert!(depth <= 400, "depth {depth} implausible");
    }

    #[test]
    fn nand_dominates_the_mix() {
        let p = BenchmarkProfile::iscas85("c3540").unwrap();
        let stats = generate_benchmark(&p).stats();
        let nands = stats.by_kind.get("NAND").copied().unwrap_or(0);
        for (kind, count) in &stats.by_kind {
            if kind != "NAND" {
                assert!(
                    nands >= *count,
                    "NAND ({nands}) must dominate {kind} ({count})"
                );
            }
        }
    }

    #[test]
    fn scaling_profiles_generate_with_exact_counts() {
        let p = BenchmarkProfile::scaling("s10k").unwrap();
        let n = generate_benchmark(&p);
        assert_eq!(n.gates().len(), p.gates);
        assert_eq!(n.inputs().len(), p.inputs);
        assert_eq!(n.outputs().len(), p.outputs);
        assert!(BenchmarkProfile::scaling("s9k").is_none());
    }

    #[test]
    fn custom_profiles_validate() {
        let p = BenchmarkProfile::custom("tiny", 4, 2, 10, 42);
        let n = generate_benchmark(&p);
        assert_eq!(n.gates().len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one gate per output")]
    fn custom_rejects_more_outputs_than_gates() {
        let _ = BenchmarkProfile::custom("bad", 4, 5, 3, 0);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;

    #[test]
    fn tiny_input_counts_terminate() {
        // Regression: with 2 PIs, an early gate could demand 3–4 distinct
        // inputs and spin forever.
        for inputs in 1..4 {
            let p = BenchmarkProfile::custom("tiny", inputs, 1, 12, 99);
            let n = generate_benchmark(&p);
            assert_eq!(n.gates().len(), 12);
        }
    }
}
