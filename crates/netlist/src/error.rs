use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction, parsing, and mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate kind keyword was not recognized.
    UnknownGateKind {
        /// The offending keyword.
        kind: String,
    },
    /// A gate definition was malformed.
    InvalidGate {
        /// Output signal of the offending gate.
        gate: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The netlist as a whole was inconsistent (undriven signal, duplicate
    /// driver, combinational cycle, …).
    InvalidNetlist {
        /// Human-readable reason.
        reason: String,
    },
    /// `.bench` text could not be parsed.
    ParseBenchError {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Technology mapping hit a gate it cannot implement.
    UnmappableGate {
        /// Output signal of the offending gate.
        gate: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownGateKind { kind } => write!(f, "unknown gate kind `{kind}`"),
            NetlistError::InvalidGate { gate, reason } => {
                write!(f, "invalid gate `{gate}`: {reason}")
            }
            NetlistError::InvalidNetlist { reason } => write!(f, "invalid netlist: {reason}"),
            NetlistError::ParseBenchError { line, reason } => {
                write!(f, "bench parse error at line {line}: {reason}")
            }
            NetlistError::UnmappableGate { gate, reason } => {
                write!(f, "cannot map gate `{gate}`: {reason}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = NetlistError::ParseBenchError {
            line: 7,
            reason: "missing `=`".into(),
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
