use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};
use svt_exec::{qf64, CacheStats, MemoCache};

use crate::fft::{self, bin_frequency};
use crate::source::SourcePoint;
use crate::{Complex, Illumination, LithoError, MaskCutline, Pupil};

/// Key identifying one pupil-transfer table: pupil optics, grid size,
/// window length, defocus, and source-point frequency shift — all keyed on
/// exact `f64` bit patterns so distinct inputs never share a table.
type TransferKey = (u64, u64, usize, u64, u64, u64);

/// Sparse pupil-transfer table: `(bin, transfer)` for every bin the
/// shifted pupil passes. At 90 nm optics over a 2 µm window only a few
/// dozen of the ~1k bins survive the aperture, so storing the passband
/// (and zero-filling the rest of the field) beats recomputing the
/// trigonometry for every bin on every source point of every call.
type TransferTable = Arc<Vec<(u32, Complex)>>;

fn transfer_tables() -> &'static MemoCache<TransferKey, TransferTable> {
    static TABLES: OnceLock<MemoCache<TransferKey, TransferTable>> = OnceLock::new();
    static TELEMETRY: OnceLock<()> = OnceLock::new();
    let cache = TABLES.get_or_init(MemoCache::default);
    TELEMETRY.get_or_init(|| svt_exec::register_cache_telemetry("litho.transfer_tables", cache));
    cache
}

/// Key for a sampled 1-D source: variant tag, both σ parameters, count.
type SourceKey = (u8, u64, u64, usize);

fn source_tables() -> &'static MemoCache<SourceKey, Arc<Vec<SourcePoint>>> {
    static SOURCES: OnceLock<MemoCache<SourceKey, Arc<Vec<SourcePoint>>>> = OnceLock::new();
    static TELEMETRY: OnceLock<()> = OnceLock::new();
    let cache = SOURCES.get_or_init(|| MemoCache::new(4, 256));
    TELEMETRY.get_or_init(|| svt_exec::register_cache_telemetry("litho.sources", cache));
    cache
}

fn cached_source_points(source: Illumination, samples: usize) -> Arc<Vec<SourcePoint>> {
    let key = match source {
        Illumination::Conventional { sigma } => (0u8, qf64(sigma), 0, samples),
        Illumination::Annular {
            sigma_in,
            sigma_out,
        } => (1u8, qf64(sigma_in), qf64(sigma_out), samples),
    };
    source_tables().get_or_insert_with(key, || Arc::new(source.sample_1d(samples)))
}

fn cached_transfer_table(
    pupil: Pupil,
    n: usize,
    window: f64,
    defocus_nm: f64,
    f_shift: f64,
) -> TransferTable {
    let key = (
        qf64(pupil.wavelength_nm()),
        qf64(pupil.na()),
        n,
        qf64(window),
        qf64(defocus_nm),
        qf64(f_shift),
    );
    transfer_tables().get_or_insert_with(key, || {
        let table: Vec<(u32, Complex)> = (0..n)
            .filter_map(|k| {
                let f = bin_frequency(k, n, window) + f_shift;
                if pupil.passes(f) {
                    #[allow(clippy::cast_possible_truncation)]
                    let bin = k as u32;
                    Some((bin, pupil.transfer(f, defocus_nm)))
                } else {
                    None
                }
            })
            .collect();
        Arc::new(table)
    })
}

/// Drops every imaging-layer cache (transfer tables and sampled sources).
pub fn clear_imaging_caches() {
    transfer_tables().clear();
    source_tables().clear();
}

/// Hit/miss counters of the pupil-transfer table cache.
#[must_use]
pub fn transfer_cache_stats() -> CacheStats {
    transfer_tables().stats()
}

thread_local! {
    /// Per-thread FFT scratch (spectrum, field) reused across calls so the
    /// inner loop allocates nothing.
    static FFT_SCRATCH: RefCell<(Vec<Complex>, Vec<Complex>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Configuration of the partially coherent imaging system.
///
/// # Examples
///
/// ```
/// use svt_litho::{Illumination, ImagingConfig, Pupil};
///
/// let config = ImagingConfig::new(
///     Pupil::new(193.0, 0.7)?,
///     Illumination::annular(0.55, 0.85)?,
///     24,
///     2.0,
/// );
/// assert_eq!(config.grid_nm(), 2.0);
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImagingConfig {
    pupil: Pupil,
    source: Illumination,
    source_samples: usize,
    grid_nm: f64,
}

impl ImagingConfig {
    /// Creates an imaging configuration.
    ///
    /// `source_samples` controls the Abbe source discretization (accuracy vs
    /// runtime; 16–32 is ample for 1-D work) and `grid_nm` the spatial
    /// sampling of mask and image.
    ///
    /// # Panics
    ///
    /// Panics if `source_samples < 2` or `grid_nm ≤ 0`.
    #[must_use]
    pub fn new(
        pupil: Pupil,
        source: Illumination,
        source_samples: usize,
        grid_nm: f64,
    ) -> ImagingConfig {
        assert!(source_samples >= 2, "need at least 2 source samples");
        assert!(grid_nm > 0.0, "grid must be positive");
        ImagingConfig {
            pupil,
            source,
            source_samples,
            grid_nm,
        }
    }

    /// The lens pupil.
    #[must_use]
    pub fn pupil(&self) -> Pupil {
        self.pupil
    }

    /// The illumination source.
    #[must_use]
    pub fn source(&self) -> Illumination {
        self.source
    }

    /// Source discretization point count.
    #[must_use]
    pub fn source_samples(&self) -> usize {
        self.source_samples
    }

    /// Spatial sampling pitch in nanometres.
    #[must_use]
    pub fn grid_nm(&self) -> f64 {
        self.grid_nm
    }

    /// Returns a copy with a different source sampling density (used by the
    /// accuracy-vs-runtime ablation bench).
    #[must_use]
    pub fn with_source_samples(mut self, n: usize) -> ImagingConfig {
        assert!(n >= 2, "need at least 2 source samples");
        self.source_samples = n;
        self
    }

    /// Returns a copy with a different spatial grid (runtime/accuracy
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if the grid is not positive.
    #[must_use]
    pub fn with_grid(mut self, grid_nm: f64) -> ImagingConfig {
        assert!(grid_nm > 0.0, "grid must be positive");
        self.grid_nm = grid_nm;
        self
    }

    /// Returns a copy with a different illumination source (model
    /// miscalibration studies).
    #[must_use]
    pub fn with_source(mut self, source: Illumination) -> ImagingConfig {
        self.source = source;
        self
    }

    /// Computes the aerial image of a mask cutline at the given defocus.
    ///
    /// Abbe's method: for each sampled source point `s`, the mask spectrum is
    /// filtered by the pupil shifted to `f + s·NA/λ` (with the defocus phase
    /// evaluated at the *shifted* frequency, i.e. the true propagation
    /// angle), transformed back to space, and the intensities `|A_s(x)|²`
    /// are accumulated with the source weights. A fully clear mask images to
    /// intensity 1 everywhere, which anchors the resist-threshold scale.
    #[must_use]
    pub fn aerial_image(&self, mask: &MaskCutline, defocus_nm: f64) -> AerialImage {
        if svt_obs::enabled() {
            svt_obs::counter!("litho.aerial_images").incr();
            // An aerial-image simulation is the expensive leaf of every
            // litho cache miss — mark it on the Chrome timeline so miss
            // stalls are attributable in Perfetto.
            svt_obs::instant("litho.aerial_image");
        }
        let n = mask.samples().len();
        let window = mask.length();

        let f_cutoff = self.pupil.cutoff();
        let points = cached_source_points(self.source, self.source_samples);

        let mut intensity = vec![0.0f64; n];
        FFT_SCRATCH.with(|scratch| {
            let (spectrum, field) = &mut *scratch.borrow_mut();

            // Mask spectrum (unnormalized forward FFT).
            spectrum.clear();
            spectrum.extend(mask.samples().iter().map(|&t| Complex::from(t)));
            fft::forward(spectrum);

            field.clear();
            field.resize(n, Complex::ZERO);
            for p in points.iter() {
                let f_shift = p.s * f_cutoff;
                // Sparse fill: bins outside the shifted aperture are exact
                // zeros, so only the cached passband needs the product.
                let table = cached_transfer_table(self.pupil, n, window, defocus_nm, f_shift);
                field.fill(Complex::ZERO);
                for &(k, transfer) in table.iter() {
                    field[k as usize] = spectrum[k as usize] * transfer;
                }
                fft::inverse(field);
                for (i, a) in field.iter().enumerate() {
                    intensity[i] += p.weight * a.norm_sqr();
                }
            }
        });

        AerialImage {
            x0: mask.x0(),
            dx: mask.dx(),
            intensity,
        }
    }
}

/// A sampled aerial-image intensity profile.
///
/// Intensity 1.0 corresponds to the clear-field exposure at nominal dose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AerialImage {
    x0: f64,
    dx: f64,
    intensity: Vec<f64>,
}

impl AerialImage {
    /// Window start coordinate.
    #[must_use]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Sample pitch in nanometres.
    #[must_use]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// The intensity samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.intensity
    }

    /// The coordinate of sample `k`.
    #[must_use]
    pub fn position(&self, k: usize) -> f64 {
        self.x0 + k as f64 * self.dx
    }

    /// The sample index closest to `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::EdgeOutsideWindow`] if `x` is outside the
    /// window.
    pub fn index_of(&self, x: f64) -> Result<usize, LithoError> {
        let idx = ((x - self.x0) / self.dx).round();
        if idx < 0.0 || idx as usize >= self.intensity.len() {
            return Err(LithoError::EdgeOutsideWindow { at: x });
        }
        Ok(idx as usize)
    }

    /// Linearly interpolated intensity at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::EdgeOutsideWindow`] if `x` is outside the
    /// window.
    pub fn intensity_at(&self, x: f64) -> Result<f64, LithoError> {
        let t = (x - self.x0) / self.dx;
        if t < 0.0 || t > (self.intensity.len() - 1) as f64 {
            return Err(LithoError::EdgeOutsideWindow { at: x });
        }
        let i = t.floor() as usize;
        let frac = t - i as f64;
        if i + 1 >= self.intensity.len() {
            return Ok(self.intensity[i]);
        }
        Ok(self.intensity[i] * (1.0 - frac) + self.intensity[i + 1] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ImagingConfig {
        ImagingConfig::new(
            Pupil::new(193.0, 0.7).unwrap(),
            Illumination::annular(0.55, 0.85).unwrap(),
            16,
            2.0,
        )
    }

    #[test]
    fn clear_field_images_to_unity() {
        let mask = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        for &i in img.samples() {
            assert!((i - 1.0).abs() < 1e-9, "clear field intensity {i}");
        }
    }

    #[test]
    fn clear_field_is_unity_even_defocused() {
        let mask = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 300.0);
        for &i in img.samples() {
            assert!((i - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chrome_line_creates_a_dip_at_its_center() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        let center = img.intensity_at(0.0).unwrap();
        let far = img.intensity_at(800.0).unwrap();
        assert!(center < 0.3, "center intensity {center} should be dark");
        assert!(far > 0.8, "far field {far} should be bright");
    }

    #[test]
    fn image_is_symmetric_for_symmetric_mask() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let img = config().aerial_image(&mask, 150.0);
        for x in [50.0, 100.0, 200.0, 400.0] {
            let a = img.intensity_at(x).unwrap();
            let b = img.intensity_at(-x).unwrap();
            assert!((a - b).abs() < 1e-6, "asymmetry at ±{x}: {a} vs {b}");
        }
    }

    #[test]
    fn defocus_degrades_contrast() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let cfg = config();
        let focused = cfg.aerial_image(&mask, 0.0);
        let blurred = cfg.aerial_image(&mask, 400.0);
        let c0 = focused.intensity_at(0.0).unwrap();
        let c1 = blurred.intensity_at(0.0).unwrap();
        assert!(
            c1 > c0,
            "defocus should lift the dark-line floor: {c0} -> {c1}"
        );
    }

    #[test]
    fn intensity_interpolation_and_bounds() {
        let mask = MaskCutline::from_lines(0.0, 64.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        assert!(img.intensity_at(3.0).is_ok());
        assert!(img.intensity_at(-1.0).is_err());
        assert!(img.intensity_at(1e6).is_err());
        assert!(img.index_of(4.0).is_ok());
        assert!(img.index_of(-5.0).is_err());
        assert_eq!(img.position(0), 0.0);
    }

    #[test]
    fn denser_source_sampling_converges() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let coarse = config().with_source_samples(8).aerial_image(&mask, 100.0);
        let fine = config().with_source_samples(64).aerial_image(&mask, 100.0);
        let finer = config().with_source_samples(128).aerial_image(&mask, 100.0);
        let d_coarse = (coarse.intensity_at(0.0).unwrap() - finer.intensity_at(0.0).unwrap()).abs();
        let d_fine = (fine.intensity_at(0.0).unwrap() - finer.intensity_at(0.0).unwrap()).abs();
        assert!(d_fine <= d_coarse + 1e-12, "refinement must not diverge");
    }
}
