use serde::{Deserialize, Serialize};

use crate::fft::{self, bin_frequency};
use crate::source::SourcePoint;
use crate::{Complex, Illumination, LithoError, MaskCutline, Pupil};

/// Configuration of the partially coherent imaging system.
///
/// # Examples
///
/// ```
/// use svt_litho::{Illumination, ImagingConfig, Pupil};
///
/// let config = ImagingConfig::new(
///     Pupil::new(193.0, 0.7)?,
///     Illumination::annular(0.55, 0.85)?,
///     24,
///     2.0,
/// );
/// assert_eq!(config.grid_nm(), 2.0);
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImagingConfig {
    pupil: Pupil,
    source: Illumination,
    source_samples: usize,
    grid_nm: f64,
}

impl ImagingConfig {
    /// Creates an imaging configuration.
    ///
    /// `source_samples` controls the Abbe source discretization (accuracy vs
    /// runtime; 16–32 is ample for 1-D work) and `grid_nm` the spatial
    /// sampling of mask and image.
    ///
    /// # Panics
    ///
    /// Panics if `source_samples < 2` or `grid_nm ≤ 0`.
    #[must_use]
    pub fn new(pupil: Pupil, source: Illumination, source_samples: usize, grid_nm: f64) -> ImagingConfig {
        assert!(source_samples >= 2, "need at least 2 source samples");
        assert!(grid_nm > 0.0, "grid must be positive");
        ImagingConfig {
            pupil,
            source,
            source_samples,
            grid_nm,
        }
    }

    /// The lens pupil.
    #[must_use]
    pub fn pupil(&self) -> Pupil {
        self.pupil
    }

    /// The illumination source.
    #[must_use]
    pub fn source(&self) -> Illumination {
        self.source
    }

    /// Source discretization point count.
    #[must_use]
    pub fn source_samples(&self) -> usize {
        self.source_samples
    }

    /// Spatial sampling pitch in nanometres.
    #[must_use]
    pub fn grid_nm(&self) -> f64 {
        self.grid_nm
    }

    /// Returns a copy with a different source sampling density (used by the
    /// accuracy-vs-runtime ablation bench).
    #[must_use]
    pub fn with_source_samples(mut self, n: usize) -> ImagingConfig {
        assert!(n >= 2, "need at least 2 source samples");
        self.source_samples = n;
        self
    }

    /// Returns a copy with a different spatial grid (runtime/accuracy
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if the grid is not positive.
    #[must_use]
    pub fn with_grid(mut self, grid_nm: f64) -> ImagingConfig {
        assert!(grid_nm > 0.0, "grid must be positive");
        self.grid_nm = grid_nm;
        self
    }

    /// Returns a copy with a different illumination source (model
    /// miscalibration studies).
    #[must_use]
    pub fn with_source(mut self, source: Illumination) -> ImagingConfig {
        self.source = source;
        self
    }

    /// Computes the aerial image of a mask cutline at the given defocus.
    ///
    /// Abbe's method: for each sampled source point `s`, the mask spectrum is
    /// filtered by the pupil shifted to `f + s·NA/λ` (with the defocus phase
    /// evaluated at the *shifted* frequency, i.e. the true propagation
    /// angle), transformed back to space, and the intensities `|A_s(x)|²`
    /// are accumulated with the source weights. A fully clear mask images to
    /// intensity 1 everywhere, which anchors the resist-threshold scale.
    #[must_use]
    pub fn aerial_image(&self, mask: &MaskCutline, defocus_nm: f64) -> AerialImage {
        let n = mask.samples().len();
        let window = mask.length();

        // Mask spectrum (unnormalized forward FFT).
        let mut spectrum: Vec<Complex> = mask.samples().iter().map(|&t| Complex::from(t)).collect();
        fft::forward(&mut spectrum);

        let f_cutoff = self.pupil.cutoff();
        let points: Vec<SourcePoint> = self.source.sample_1d(self.source_samples);

        let mut intensity = vec![0.0f64; n];
        let mut field = vec![Complex::ZERO; n];
        for p in &points {
            let f_shift = p.s * f_cutoff;
            for (k, out) in field.iter_mut().enumerate() {
                let f = bin_frequency(k, n, window);
                *out = spectrum[k] * self.pupil.transfer(f + f_shift, defocus_nm);
            }
            fft::inverse(&mut field);
            for (i, a) in field.iter().enumerate() {
                intensity[i] += p.weight * a.norm_sqr();
            }
        }

        AerialImage {
            x0: mask.x0(),
            dx: mask.dx(),
            intensity,
        }
    }
}

/// A sampled aerial-image intensity profile.
///
/// Intensity 1.0 corresponds to the clear-field exposure at nominal dose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AerialImage {
    x0: f64,
    dx: f64,
    intensity: Vec<f64>,
}

impl AerialImage {
    /// Window start coordinate.
    #[must_use]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Sample pitch in nanometres.
    #[must_use]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// The intensity samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.intensity
    }

    /// The coordinate of sample `k`.
    #[must_use]
    pub fn position(&self, k: usize) -> f64 {
        self.x0 + k as f64 * self.dx
    }

    /// The sample index closest to `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::EdgeOutsideWindow`] if `x` is outside the
    /// window.
    pub fn index_of(&self, x: f64) -> Result<usize, LithoError> {
        let idx = ((x - self.x0) / self.dx).round();
        if idx < 0.0 || idx as usize >= self.intensity.len() {
            return Err(LithoError::EdgeOutsideWindow { at: x });
        }
        Ok(idx as usize)
    }

    /// Linearly interpolated intensity at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::EdgeOutsideWindow`] if `x` is outside the
    /// window.
    pub fn intensity_at(&self, x: f64) -> Result<f64, LithoError> {
        let t = (x - self.x0) / self.dx;
        if t < 0.0 || t > (self.intensity.len() - 1) as f64 {
            return Err(LithoError::EdgeOutsideWindow { at: x });
        }
        let i = t.floor() as usize;
        let frac = t - i as f64;
        if i + 1 >= self.intensity.len() {
            return Ok(self.intensity[i]);
        }
        Ok(self.intensity[i] * (1.0 - frac) + self.intensity[i + 1] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ImagingConfig {
        ImagingConfig::new(
            Pupil::new(193.0, 0.7).unwrap(),
            Illumination::annular(0.55, 0.85).unwrap(),
            16,
            2.0,
        )
    }

    #[test]
    fn clear_field_images_to_unity() {
        let mask = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        for &i in img.samples() {
            assert!((i - 1.0).abs() < 1e-9, "clear field intensity {i}");
        }
    }

    #[test]
    fn clear_field_is_unity_even_defocused() {
        let mask = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 300.0);
        for &i in img.samples() {
            assert!((i - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chrome_line_creates_a_dip_at_its_center() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        let center = img.intensity_at(0.0).unwrap();
        let far = img.intensity_at(800.0).unwrap();
        assert!(center < 0.3, "center intensity {center} should be dark");
        assert!(far > 0.8, "far field {far} should be bright");
    }

    #[test]
    fn image_is_symmetric_for_symmetric_mask() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let img = config().aerial_image(&mask, 150.0);
        for x in [50.0, 100.0, 200.0, 400.0] {
            let a = img.intensity_at(x).unwrap();
            let b = img.intensity_at(-x).unwrap();
            assert!((a - b).abs() < 1e-6, "asymmetry at ±{x}: {a} vs {b}");
        }
    }

    #[test]
    fn defocus_degrades_contrast() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let cfg = config();
        let focused = cfg.aerial_image(&mask, 0.0);
        let blurred = cfg.aerial_image(&mask, 400.0);
        let c0 = focused.intensity_at(0.0).unwrap();
        let c1 = blurred.intensity_at(0.0).unwrap();
        assert!(c1 > c0, "defocus should lift the dark-line floor: {c0} -> {c1}");
    }

    #[test]
    fn intensity_interpolation_and_bounds() {
        let mask = MaskCutline::from_lines(0.0, 64.0, 2.0, &[]).unwrap();
        let img = config().aerial_image(&mask, 0.0);
        assert!(img.intensity_at(3.0).is_ok());
        assert!(img.intensity_at(-1.0).is_err());
        assert!(img.intensity_at(1e6).is_err());
        assert!(img.index_of(4.0).is_ok());
        assert!(img.index_of(-5.0).is_err());
        assert_eq!(img.position(0), 0.0);
    }

    #[test]
    fn denser_source_sampling_converges() {
        let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-65.0, 65.0)]).unwrap();
        let coarse = config().with_source_samples(8).aerial_image(&mask, 100.0);
        let fine = config().with_source_samples(64).aerial_image(&mask, 100.0);
        let finer = config().with_source_samples(128).aerial_image(&mask, 100.0);
        let d_coarse = (coarse.intensity_at(0.0).unwrap() - finer.intensity_at(0.0).unwrap()).abs();
        let d_fine = (fine.intensity_at(0.0).unwrap() - finer.intensity_at(0.0).unwrap()).abs();
        assert!(d_fine <= d_coarse + 1e-12, "refinement must not diverge");
    }
}
