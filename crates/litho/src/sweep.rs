use serde::{Deserialize, Serialize};
use svt_exec::try_par_map;

use crate::{LithoError, LithoSimulator};

/// One point of a through-pitch CD characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PitchCdPoint {
    /// Line pitch in nanometres.
    pub pitch_nm: f64,
    /// Printed CD of the center line in nanometres.
    pub cd_nm: f64,
}

/// A through-pitch CD curve (paper Fig. 1): printed linewidth versus pitch
/// for a fixed drawn width.
///
/// # Examples
///
/// ```
/// use svt_litho::{pitch_sweep, LithoSimulator, Process};
///
/// let p = Process::nm130();
/// let sim = p.simulator();
/// let curve = pitch_sweep(&sim, 130.0, &[300.0, 400.0, 600.0], 0.0, 1.0)?;
/// assert_eq!(curve.points().len(), 3);
/// assert!(curve.cd_range() >= 0.0);
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PitchCdCurve {
    drawn_width_nm: f64,
    points: Vec<PitchCdPoint>,
}

impl PitchCdCurve {
    /// Drawn line width of the sweep.
    #[must_use]
    pub fn drawn_width_nm(&self) -> f64 {
        self.drawn_width_nm
    }

    /// The sweep points in ascending pitch order.
    #[must_use]
    pub fn points(&self) -> &[PitchCdPoint] {
        &self.points
    }

    /// Total CD excursion over the sweep (max − min).
    #[must_use]
    pub fn cd_range(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            lo = lo.min(p.cd_nm);
            hi = hi.max(p.cd_nm);
        }
        if self.points.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }

    /// Linear interpolation of CD at an arbitrary pitch (clamped to the
    /// sweep range).
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    #[must_use]
    pub fn cd_at(&self, pitch_nm: f64) -> f64 {
        assert!(!self.points.is_empty(), "empty pitch-CD curve");
        let pts = &self.points;
        if pitch_nm <= pts[0].pitch_nm {
            return pts[0].cd_nm;
        }
        if pitch_nm >= pts[pts.len() - 1].pitch_nm {
            return pts[pts.len() - 1].cd_nm;
        }
        let i = pts.partition_point(|p| p.pitch_nm <= pitch_nm) - 1;
        let (a, b) = (pts[i], pts[i + 1]);
        let t = (pitch_nm - a.pitch_nm) / (b.pitch_nm - a.pitch_nm);
        a.cd_nm * (1.0 - t) + b.cd_nm * t
    }
}

/// Sweeps printed CD versus pitch for equal-width parallel lines.
///
/// # Errors
///
/// Propagates the first simulation failure; see
/// [`LithoSimulator::print_line_array`].
pub fn pitch_sweep(
    sim: &LithoSimulator,
    width_nm: f64,
    pitches_nm: &[f64],
    defocus_nm: f64,
    dose: f64,
) -> Result<PitchCdCurve, LithoError> {
    let mut points = try_par_map(pitches_nm, |&pitch| {
        let cd_nm = sim.print_line_array(width_nm, pitch, defocus_nm, dose)?;
        Ok(PitchCdPoint {
            pitch_nm: pitch,
            cd_nm,
        })
    })?;
    points.sort_by(|a, b| a.pitch_nm.total_cmp(&b.pitch_nm));
    Ok(PitchCdCurve {
        drawn_width_nm: width_nm,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Process;

    fn sim() -> LithoSimulator {
        let p = Process::nm90();
        p.simulator()
    }

    #[test]
    fn sweep_is_sorted_and_complete() {
        let curve = pitch_sweep(&sim(), 90.0, &[600.0, 240.0, 400.0], 0.0, 1.0).unwrap();
        let pitches: Vec<f64> = curve.points().iter().map(|p| p.pitch_nm).collect();
        assert_eq!(pitches, vec![240.0, 400.0, 600.0]);
        assert_eq!(curve.drawn_width_nm(), 90.0);
    }

    #[test]
    fn cd_varies_systematically_with_pitch() {
        let pitches: Vec<f64> = (0..8).map(|i| 240.0 + 60.0 * i as f64).collect();
        let curve = pitch_sweep(&sim(), 90.0, &pitches, 0.0, 1.0).unwrap();
        assert!(
            curve.cd_range() > 1.0,
            "expect several nm of through-pitch variation, got {}",
            curve.cd_range()
        );
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        let curve = pitch_sweep(&sim(), 90.0, &[240.0, 480.0], 0.0, 1.0).unwrap();
        let a = curve.points()[0].cd_nm;
        let b = curve.points()[1].cd_nm;
        assert_eq!(curve.cd_at(100.0), a);
        assert_eq!(curve.cd_at(900.0), b);
        let mid = curve.cd_at(360.0);
        assert!((mid - 0.5 * (a + b)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty pitch-CD curve")]
    fn empty_curve_panics_on_query() {
        let curve = pitch_sweep(&sim(), 90.0, &[], 0.0, 1.0).unwrap();
        let _ = curve.cd_at(300.0);
    }
}
