//! 1-D partially coherent aerial-image simulation for the `svt` workspace.
//!
//! The DAC 2004 methodology this workspace reproduces consumed a commercial
//! lithography simulator (PROLITH 8.0). This crate replaces it with a
//! from-scratch Abbe imaging engine specialised to the 1-D line/space
//! patterns that matter for polysilicon gates:
//!
//! * [`fft`] — radix-2 complex FFT (no external FFT crate exists in the
//!   approved dependency set),
//! * [`Illumination`] — conventional and annular sources with the correct
//!   1-D projected weighting of a 2-D source shape,
//! * [`Pupil`] — ideal lens pupil with exact (non-paraxial) defocus phase,
//! * [`MaskCutline`] / [`AerialImage`] — sampled mask transmission and the
//!   resulting image intensity,
//! * [`ThresholdResist`] + [`measure_cd_at`] — constant-threshold resist
//!   model and CD metrology with sub-grid edge interpolation,
//! * [`pitch_sweep`], [`bossung`], [`FocusExposureMatrix`] — the
//!   through-pitch (paper Fig. 1) and through-focus (paper Figs. 2 and 6)
//!   characterizations the timing methodology is built on.
//!
//! # Examples
//!
//! Print a dense line array and measure the centre line's CD:
//!
//! ```
//! use svt_litho::Process;
//!
//! let sim = Process::nm90().simulator();
//! let cd = sim.print_line_array(90.0, 240.0, 0.0, 1.0)?;
//! assert!(cd > 40.0 && cd < 160.0, "CD {cd} out of plausible range");
//! # Ok::<(), svt_litho::LithoError>(())
//! ```

mod bossung;
mod cd;
mod complex;
mod error;
mod fem;
pub mod fft;
mod imaging;
mod mask;
mod metrics;
mod process;
mod pupil;
mod simulator;
mod snap_impls;
mod source;
mod sweep;

pub use bossung::{bossung, BossungCurve, BossungFamily};
pub use cd::{measure_cd_at, PrintedCd, ThresholdResist};
pub use complex::Complex;
pub use error::LithoError;
pub use fem::{FemPoint, FocusExposureMatrix};
pub use imaging::{clear_imaging_caches, transfer_cache_stats, AerialImage, ImagingConfig};
pub use simulator::{cd_cache_stats, clear_cd_cache};

/// Drops every cache in the crate: FFT plans are kept (they are tiny and
/// size-keyed), pupil-transfer tables, sampled sources, and memoized CDs
/// are cleared. Benchmarks call this between cold-cache measurements.
pub fn clear_litho_caches() {
    clear_imaging_caches();
    clear_cd_cache();
}
pub use mask::MaskCutline;
pub use metrics::{depth_of_focus, image_metrics, meef, ImageMetrics};
pub use process::Process;
pub use pupil::Pupil;
pub use simulator::LithoSimulator;
pub use source::Illumination;
pub use sweep::{pitch_sweep, PitchCdCurve, PitchCdPoint};
