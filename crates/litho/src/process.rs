use serde::{Deserialize, Serialize};

use crate::{Illumination, ImagingConfig, Pupil, ThresholdResist};

/// The process assumptions of the reproduced 90 nm-class technology.
///
/// This bundles the optical column (193 nm annular-illumination stepper at
/// NA = 0.7, as in paper Fig. 1), the resist model, and the design rules the
/// methodology quotes: a ~600 nm radius of influence, a 300 nm contacted
/// pitch separating "dense" from "isolated" devices, and a ±300 nm focus
/// corner range.
///
/// # Examples
///
/// ```
/// use svt_litho::Process;
///
/// let p = Process::nm90();
/// assert_eq!(p.gate_length_nm(), 90.0);
/// assert_eq!(p.radius_of_influence_nm(), 600.0);
/// let config = p.imaging();
/// assert_eq!(config.pupil().na(), 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    wavelength_nm: f64,
    na: f64,
    sigma_in: f64,
    sigma_out: f64,
    source_samples: usize,
    grid_nm: f64,
    resist_threshold: f64,
    etch_bias_nm: f64,
    gate_length_nm: f64,
    min_space_nm: f64,
    contacted_pitch_nm: f64,
    radius_of_influence_nm: f64,
    focus_corner_nm: f64,
}

impl Process {
    /// The 90 nm-class process used throughout the reproduction: λ=193 nm,
    /// NA=0.7, annular 0.55/0.85 illumination, 90 nm drawn gates at a 150 nm
    /// minimum space (paper Fig. 2's dense pattern), 300 nm contacted pitch,
    /// 600 nm radius of influence, ±300 nm focus corners.
    #[must_use]
    pub fn nm90() -> Process {
        Process {
            wavelength_nm: 193.0,
            na: 0.7,
            sigma_in: 0.55,
            sigma_out: 0.85,
            source_samples: 24,
            grid_nm: 2.0,
            resist_threshold: 0.52,
            etch_bias_nm: 40.0,
            gate_length_nm: 90.0,
            min_space_nm: 150.0,
            contacted_pitch_nm: 300.0,
            radius_of_influence_nm: 600.0,
            focus_corner_nm: 300.0,
        }
    }

    /// The 130 nm-drawn-CD configuration of paper Fig. 1 (same optical
    /// column, larger drawn gate).
    #[must_use]
    pub fn nm130() -> Process {
        let mut p = Process::nm90();
        p.gate_length_nm = 130.0;
        p.min_space_nm = 170.0;
        p
    }

    /// Exposure wavelength in nanometres.
    #[must_use]
    pub fn wavelength_nm(&self) -> f64 {
        self.wavelength_nm
    }

    /// Numerical aperture.
    #[must_use]
    pub fn na(&self) -> f64 {
        self.na
    }

    /// Drawn gate length (target CD) in nanometres.
    #[must_use]
    pub fn gate_length_nm(&self) -> f64 {
        self.gate_length_nm
    }

    /// Minimum poly space in nanometres.
    #[must_use]
    pub fn min_space_nm(&self) -> f64 {
        self.min_space_nm
    }

    /// Minimum (dense) poly pitch: gate length + minimum space.
    #[must_use]
    pub fn min_pitch_nm(&self) -> f64 {
        self.gate_length_nm + self.min_space_nm
    }

    /// Contacted poly pitch: the iso/dense classification boundary of the
    /// methodology (paper §3.2: "dense spacing is less than the
    /// contacted pitch, anything larger is isolated").
    #[must_use]
    pub fn contacted_pitch_nm(&self) -> f64 {
        self.contacted_pitch_nm
    }

    /// Optical radius of influence: features farther away have negligible
    /// impact on printing (paper quotes <600 nm for 193 nm steppers).
    #[must_use]
    pub fn radius_of_influence_nm(&self) -> f64 {
        self.radius_of_influence_nm
    }

    /// The focus-corner excursion (±) in nanometres used for through-focus
    /// characterization.
    #[must_use]
    pub fn focus_corner_nm(&self) -> f64 {
        self.focus_corner_nm
    }

    /// Simulation grid in nanometres.
    #[must_use]
    pub fn grid_nm(&self) -> f64 {
        self.grid_nm
    }

    /// Builds the imaging configuration.
    ///
    /// # Panics
    ///
    /// Panics if the stored optical parameters are inconsistent; the named
    /// constructors always produce valid parameters.
    #[must_use]
    pub fn imaging(&self) -> ImagingConfig {
        let pupil = Pupil::new(self.wavelength_nm, self.na)
            .expect("process optics are valid by construction");
        let source = Illumination::annular(self.sigma_in, self.sigma_out)
            .expect("process source is valid by construction");
        ImagingConfig::new(pupil, source, self.source_samples, self.grid_nm)
    }

    /// The resist model.
    #[must_use]
    pub fn resist(&self) -> ThresholdResist {
        ThresholdResist::new(self.resist_threshold)
    }

    /// The resist-to-device etch bias in nanometres: the resist line prints
    /// wider than the final gate by this amount and the etch trims it back.
    ///
    /// The bias is what makes dense lines *smile* through focus in a
    /// constant-threshold model: the resist line targets
    /// `gate CD + etch bias`, which exceeds the half-pitch of the dense
    /// pattern, so defocus (contrast loss) pinches the space and widens the
    /// line. Isolated lines keep frowning regardless. This reproduces the
    /// smile/frown dichotomy of paper Fig. 2 with purely physical knobs.
    #[must_use]
    pub fn etch_bias_nm(&self) -> f64 {
        self.etch_bias_nm
    }

    /// Returns a copy with a different resist threshold (used by model
    /// calibration).
    #[must_use]
    pub fn with_resist_threshold(mut self, threshold: f64) -> Process {
        self.resist_threshold = threshold;
        self
    }

    /// Returns a copy with a coarser or finer simulation grid (runtime
    /// ablation).
    #[must_use]
    pub fn with_grid_nm(mut self, grid_nm: f64) -> Process {
        assert!(grid_nm > 0.0, "grid must be positive");
        self.grid_nm = grid_nm;
        self
    }

    /// Builds the fully configured lithography simulator for this process
    /// (imaging column, resist, etch bias).
    #[must_use]
    pub fn simulator(&self) -> crate::LithoSimulator {
        crate::LithoSimulator::new(self.imaging())
            .with_resist(self.resist())
            .with_etch_bias(self.etch_bias_nm)
    }
}

impl Default for Process {
    fn default() -> Process {
        Process::nm90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm90_constants_match_paper() {
        let p = Process::nm90();
        assert_eq!(p.wavelength_nm(), 193.0);
        assert_eq!(p.na(), 0.7);
        assert_eq!(p.min_pitch_nm(), 240.0); // 90 nm line + 150 nm space (Fig. 2)
        assert_eq!(p.contacted_pitch_nm(), 300.0);
        assert_eq!(p.focus_corner_nm(), 300.0);
    }

    #[test]
    fn nm130_changes_only_the_drawn_cd_rules() {
        let p = Process::nm130();
        assert_eq!(p.gate_length_nm(), 130.0);
        assert_eq!(p.wavelength_nm(), 193.0);
        assert_eq!(p.min_pitch_nm(), 300.0);
    }

    #[test]
    fn builders_apply() {
        let p = Process::nm90()
            .with_resist_threshold(0.25)
            .with_grid_nm(4.0);
        assert_eq!(p.resist().threshold(), 0.25);
        assert_eq!(p.grid_nm(), 4.0);
        assert_eq!(p.imaging().grid_nm(), 4.0);
    }

    #[test]
    fn default_is_nm90() {
        assert_eq!(Process::default(), Process::nm90());
    }
}
