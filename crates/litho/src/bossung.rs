use serde::{Deserialize, Serialize};

use crate::{LithoError, LithoSimulator};

/// CD versus defocus at a fixed dose for one pattern — one curve of a
/// Bossung plot (paper Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BossungCurve {
    /// Relative exposure dose of this curve (1.0 = nominal).
    pub dose: f64,
    /// `(defocus_nm, cd_nm)` samples in ascending defocus order.
    pub samples: Vec<(f64, f64)>,
}

impl BossungCurve {
    /// CD at nominal focus (the sample closest to zero defocus).
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    #[must_use]
    pub fn cd_at_focus(&self) -> f64 {
        self.samples
            .iter()
            .min_by(|a, b| a.0.abs().total_cmp(&b.0.abs()))
            .expect("empty Bossung curve")
            .1
    }

    /// The maximum CD deviation from the in-focus CD over the curve — the
    /// `lvar_focus` contribution of this pattern.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    #[must_use]
    pub fn max_focus_excursion(&self) -> f64 {
        let nominal = self.cd_at_focus();
        self.samples
            .iter()
            .map(|&(_, cd)| (cd - nominal).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the curve smiles (CD grows away from focus, the dense-line
    /// signature) rather than frowns (isolated-line signature). Judged at
    /// the extreme defocus samples.
    ///
    /// # Panics
    ///
    /// Panics if the curve has fewer than two samples.
    #[must_use]
    pub fn is_smiling(&self) -> bool {
        assert!(self.samples.len() >= 2, "need at least two Bossung samples");
        let nominal = self.cd_at_focus();
        let first = self.samples.first().expect("nonempty").1;
        let last = self.samples.last().expect("nonempty").1;
        0.5 * (first + last) > nominal
    }
}

/// A family of Bossung curves over several doses for one pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BossungFamily {
    /// Drawn line width in nanometres.
    pub drawn_width_nm: f64,
    /// Pitch in nanometres; `None` for an isolated line.
    pub pitch_nm: Option<f64>,
    /// One curve per dose.
    pub curves: Vec<BossungCurve>,
}

/// Computes a Bossung family: CD through focus for each dose.
///
/// `pitch_nm = None` simulates an isolated line; otherwise an equal-pitch
/// array. Focus points where the feature fails to print are skipped (deep
/// defocus can wash out marginal features), so curves may be shorter than
/// `focus_nm`.
///
/// # Errors
///
/// Returns an error only if *no* focus point of some dose prints, which
/// indicates a misconfigured pattern rather than normal process-window
/// behaviour.
pub fn bossung(
    sim: &LithoSimulator,
    width_nm: f64,
    pitch_nm: Option<f64>,
    focus_nm: &[f64],
    doses: &[f64],
) -> Result<BossungFamily, LithoError> {
    let mut focus: Vec<f64> = focus_nm.to_vec();
    focus.sort_by(f64::total_cmp);
    let mut curves = Vec::with_capacity(doses.len());
    for &dose in doses {
        let mut samples = Vec::with_capacity(focus.len());
        for &z in &focus {
            let printed = match pitch_nm {
                Some(p) => sim.print_line_array(width_nm, p, z, dose),
                None => sim.print_isolated_line(width_nm, z, dose),
            };
            match printed {
                Ok(cd) => samples.push((z, cd)),
                Err(LithoError::FeatureNotPrinted { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        if samples.is_empty() {
            return Err(LithoError::FeatureNotPrinted { at: 0.0 });
        }
        curves.push(BossungCurve { dose, samples });
    }
    Ok(BossungFamily {
        drawn_width_nm: width_nm,
        pitch_nm,
        curves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Process;

    fn sim() -> LithoSimulator {
        let p = Process::nm90();
        p.simulator()
    }

    fn focus_grid() -> Vec<f64> {
        (-6..=6).map(|i| i as f64 * 50.0).collect()
    }

    #[test]
    fn family_has_one_curve_per_dose() {
        let fam = bossung(&sim(), 90.0, Some(240.0), &focus_grid(), &[0.95, 1.0, 1.05]).unwrap();
        assert_eq!(fam.curves.len(), 3);
        assert_eq!(fam.pitch_nm, Some(240.0));
        for c in &fam.curves {
            assert!(c.samples.len() >= 5, "curve at dose {} too short", c.dose);
        }
    }

    #[test]
    fn curves_are_even_in_focus() {
        let fam = bossung(&sim(), 90.0, Some(240.0), &focus_grid(), &[1.0]).unwrap();
        let c = &fam.curves[0];
        for &(z, cd) in &c.samples {
            let mirrored = c
                .samples
                .iter()
                .find(|&&(z2, _)| (z2 + z).abs() < 1e-9)
                .map(|&(_, cd2)| cd2);
            if let Some(cd2) = mirrored {
                assert!(
                    (cd - cd2).abs() < 0.2,
                    "focus asymmetry at ±{z}: {cd} vs {cd2}"
                );
            }
        }
    }

    #[test]
    fn dense_and_iso_have_opposite_focus_signatures() {
        let s = sim();
        let dense = bossung(&s, 90.0, Some(240.0), &focus_grid(), &[1.0]).unwrap();
        let iso = bossung(&s, 90.0, None, &focus_grid(), &[1.0]).unwrap();
        let dense_smiles = dense.curves[0].is_smiling();
        let iso_smiles = iso.curves[0].is_smiling();
        assert_ne!(
            dense_smiles, iso_smiles,
            "dense and isolated must have opposite Bossung curvature (dense smiling={dense_smiles})"
        );
    }

    #[test]
    fn focus_excursion_is_positive() {
        let fam = bossung(&sim(), 90.0, Some(240.0), &focus_grid(), &[1.0]).unwrap();
        assert!(fam.curves[0].max_focus_excursion() > 0.1);
    }

    #[test]
    fn higher_dose_prints_thinner_lines_at_all_focus() {
        let fam = bossung(&sim(), 90.0, Some(240.0), &focus_grid(), &[0.9, 1.1]).unwrap();
        let low = fam.curves[0].cd_at_focus();
        let high = fam.curves[1].cd_at_focus();
        assert!(
            low > high,
            "dose 0.9 CD {low} should exceed dose 1.1 CD {high}"
        );
    }
}
