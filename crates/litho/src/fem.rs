use serde::{Deserialize, Serialize};
use svt_exec::try_par_map;

use crate::bossung::{bossung, BossungFamily};
use crate::{LithoError, LithoSimulator};

/// One entry of a focus-exposure matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FemPoint {
    /// Pitch in nanometres (`f64::INFINITY` encodes an isolated line).
    pub pitch_nm: f64,
    /// Defocus in nanometres.
    pub defocus_nm: f64,
    /// Relative dose.
    pub dose: f64,
    /// Printed CD in nanometres.
    pub cd_nm: f64,
}

/// A focus-exposure matrix (FEM) over a set of pitches.
///
/// The paper builds its `lvar_focus` corner contribution "using the FEM
/// curves built from fabrication of test structures … for a number of
/// pitches ranging from minimum pitch to a pitch slightly larger than the
/// contacted pitch" (§3.3). Here the matrix is built by simulation instead
/// of fabrication; its consumers are identical.
///
/// # Examples
///
/// ```
/// use svt_litho::{FocusExposureMatrix, LithoSimulator, Process};
///
/// let p = Process::nm90();
/// let sim = p.simulator();
/// let fem = FocusExposureMatrix::build(
///     &sim, 90.0, &[240.0, 320.0], &[-200.0, 0.0, 200.0], &[1.0],
/// )?;
/// assert!(fem.lvar_focus() > 0.0);
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocusExposureMatrix {
    drawn_width_nm: f64,
    families: Vec<BossungFamily>,
}

impl FocusExposureMatrix {
    /// Builds the matrix by simulating a Bossung family for every pitch,
    /// with pitches distributed across the worker pool. Use
    /// `f64::INFINITY` in `pitches_nm` to include an isolated line.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation failure (by pitch order, matching
    /// the sequential loop).
    pub fn build(
        sim: &LithoSimulator,
        width_nm: f64,
        pitches_nm: &[f64],
        focus_nm: &[f64],
        doses: &[f64],
    ) -> Result<FocusExposureMatrix, LithoError> {
        let _build = svt_obs::span("litho.fem.build");
        let families = try_par_map(pitches_nm, |&pitch| {
            // Worker threads root their own span stack, so this aggregates
            // under "litho.fem.pitch" rather than under the build span.
            let _pitch = svt_obs::span("litho.fem.pitch");
            let p = if pitch.is_finite() { Some(pitch) } else { None };
            bossung(sim, width_nm, p, focus_nm, doses)
        })?;
        Ok(FocusExposureMatrix {
            drawn_width_nm: width_nm,
            families,
        })
    }

    /// Drawn line width of the matrix.
    #[must_use]
    pub fn drawn_width_nm(&self) -> f64 {
        self.drawn_width_nm
    }

    /// The Bossung family for each characterized pitch.
    #[must_use]
    pub fn families(&self) -> &[BossungFamily] {
        &self.families
    }

    /// All matrix entries flattened.
    #[must_use]
    pub fn points(&self) -> Vec<FemPoint> {
        let mut out = Vec::new();
        for fam in &self.families {
            let pitch_nm = fam.pitch_nm.unwrap_or(f64::INFINITY);
            for curve in &fam.curves {
                for &(defocus_nm, cd_nm) in &curve.samples {
                    out.push(FemPoint {
                        pitch_nm,
                        defocus_nm,
                        dose: curve.dose,
                        cd_nm,
                    });
                }
            }
        }
        out
    }

    /// The through-focus linewidth-variation half-range `lvar_focus`: the
    /// worst CD excursion from the in-focus CD over all pitches and doses
    /// (paper §3.3).
    #[must_use]
    pub fn lvar_focus(&self) -> f64 {
        self.families
            .iter()
            .flat_map(|f| f.curves.iter())
            .map(|c| c.max_focus_excursion())
            .fold(0.0, f64::max)
    }

    /// Whether the pattern at a given pitch smiles through focus (nominal
    /// dose curve). Isolated queries use `f64::INFINITY`. Returns `None` if
    /// the pitch was not characterized.
    #[must_use]
    pub fn smiles_at(&self, pitch_nm: f64) -> Option<bool> {
        self.smiles_at_dose(pitch_nm, 1.0)
    }

    /// Whether the pattern at a given pitch smiles through focus at the
    /// characterized dose closest to `dose`. Exposure variation can move a
    /// pattern across its isofocal dose and flip the curvature — the
    /// effect the paper's §6 flags as future work ("exposure variation can
    /// alter the nature of devices").
    #[must_use]
    pub fn smiles_at_dose(&self, pitch_nm: f64, dose: f64) -> Option<bool> {
        self.family_at(pitch_nm).and_then(|f| {
            f.curves
                .iter()
                .min_by(|a, b| (a.dose - dose).abs().total_cmp(&(b.dose - dose).abs()))
                .map(|c| c.is_smiling())
        })
    }

    /// CD sensitivity to dose at focus, `dCD/d(dose)` in nm per unit
    /// relative dose, estimated from the extreme characterized doses of the
    /// given pitch. Returns `None` if the pitch is unknown or only one dose
    /// was characterized.
    #[must_use]
    pub fn dose_sensitivity(&self, pitch_nm: f64) -> Option<f64> {
        let family = self.family_at(pitch_nm)?;
        if family.curves.len() < 2 {
            return None;
        }
        let lo = family
            .curves
            .iter()
            .min_by(|a, b| a.dose.total_cmp(&b.dose))
            .expect("nonempty");
        let hi = family
            .curves
            .iter()
            .max_by(|a, b| a.dose.total_cmp(&b.dose))
            .expect("nonempty");
        Some((hi.cd_at_focus() - lo.cd_at_focus()) / (hi.dose - lo.dose))
    }

    fn family_at(&self, pitch_nm: f64) -> Option<&BossungFamily> {
        self.families.iter().find(|f| match f.pitch_nm {
            Some(p) => (p - pitch_nm).abs() < 1e-9,
            None => pitch_nm.is_infinite(),
        })
    }
}

impl svt_snap::Serialize for FocusExposureMatrix {
    fn serialize(&self, out: &mut svt_snap::Serializer) {
        self.drawn_width_nm.serialize(out);
        self.families.serialize(out);
    }
}

impl svt_snap::Deserialize for FocusExposureMatrix {
    fn deserialize(
        input: &mut svt_snap::Deserializer<'_>,
    ) -> Result<FocusExposureMatrix, svt_snap::SnapError> {
        Ok(FocusExposureMatrix {
            drawn_width_nm: svt_snap::Deserialize::deserialize(input)?,
            families: svt_snap::Deserialize::deserialize(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Process;

    fn fem() -> FocusExposureMatrix {
        let p = Process::nm90();
        let sim = p.simulator();
        let focus: Vec<f64> = (-4..=4).map(|i| i as f64 * 75.0).collect();
        FocusExposureMatrix::build(
            &sim,
            90.0,
            &[240.0, 320.0, f64::INFINITY],
            &focus,
            &[0.95, 1.0, 1.05],
        )
        .unwrap()
    }

    #[test]
    fn matrix_covers_all_cells() {
        let m = fem();
        assert_eq!(m.families().len(), 3);
        let pts = m.points();
        // 3 pitches × 3 doses × up to 9 focus points.
        assert!(pts.len() > 3 * 3 * 5, "only {} FEM points", pts.len());
        assert!(pts.iter().any(|p| p.pitch_nm.is_infinite()));
    }

    #[test]
    fn lvar_focus_is_positive_and_bounded() {
        let m = fem();
        let v = m.lvar_focus();
        assert!(v > 0.5, "lvar_focus {v} too small");
        assert!(v < 80.0, "lvar_focus {v} implausibly large for 90 nm lines");
    }

    #[test]
    fn smile_lookup_distinguishes_dense_from_iso() {
        let m = fem();
        let dense = m.smiles_at(240.0).unwrap();
        let iso = m.smiles_at(f64::INFINITY).unwrap();
        assert_ne!(dense, iso, "dense and iso must disagree in curvature");
        assert_eq!(m.smiles_at(1234.0), None);
    }

    #[test]
    fn dose_queries_are_consistent() {
        let m = fem();
        // The nominal-dose query is the dose-1.0 query.
        assert_eq!(m.smiles_at(240.0), m.smiles_at_dose(240.0, 1.0));
        assert_eq!(m.smiles_at_dose(1234.0, 1.0), None);
        // Higher dose prints thinner lines, so dCD/ddose is negative.
        let s = m.dose_sensitivity(240.0).unwrap();
        assert!(s < 0.0, "dose sensitivity {s} should be negative");
        assert!(s.abs() > 10.0, "a 10% dose swing moves CD by several nm");
        assert_eq!(m.dose_sensitivity(1234.0), None);
    }

    #[test]
    fn single_dose_matrices_have_no_sensitivity() {
        let p = Process::nm90();
        let sim = p.simulator();
        let focus: Vec<f64> = vec![-150.0, 0.0, 150.0];
        let m = FocusExposureMatrix::build(&sim, 90.0, &[240.0], &focus, &[1.0]).unwrap();
        assert_eq!(m.dose_sensitivity(240.0), None);
    }
}
