//! `svt-snap` binary encodings of the litho types a warm-start snapshot
//! carries (Bossung curves and the focus-exposure matrix).
//!
//! Field order is the wire format (see `docs/SNAPSHOT_FORMAT.md`); all
//! CDs round-trip bit-exactly because `svt-snap` stores `f64` as raw
//! IEEE-754 bits.

use svt_snap::{Deserialize, Deserializer, Serialize, Serializer, SnapError};

use crate::bossung::{BossungCurve, BossungFamily};

impl Serialize for BossungCurve {
    fn serialize(&self, out: &mut Serializer) {
        self.dose.serialize(out);
        self.samples.serialize(out);
    }
}

impl Deserialize for BossungCurve {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<BossungCurve, SnapError> {
        let dose = f64::deserialize(input)?;
        let samples = Vec::<(f64, f64)>::deserialize(input)?;
        // The accessors (`cd_at_focus`, `is_smiling`) panic on curves with
        // fewer than two samples; refuse to materialize one from bytes.
        if samples.len() < 2 {
            return Err(SnapError::Malformed {
                what: format!("Bossung curve with {} samples", samples.len()),
            });
        }
        Ok(BossungCurve { dose, samples })
    }
}

impl Serialize for BossungFamily {
    fn serialize(&self, out: &mut Serializer) {
        self.drawn_width_nm.serialize(out);
        self.pitch_nm.serialize(out);
        self.curves.serialize(out);
    }
}

impl Deserialize for BossungFamily {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<BossungFamily, SnapError> {
        Ok(BossungFamily {
            drawn_width_nm: f64::deserialize(input)?,
            pitch_nm: Option::<f64>::deserialize(input)?,
            curves: Vec::<BossungCurve>::deserialize(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_snap::{from_bytes, to_bytes};

    #[test]
    fn bossung_family_round_trips_bit_exactly() {
        let fam = BossungFamily {
            drawn_width_nm: 90.0,
            pitch_nm: None,
            curves: vec![BossungCurve {
                dose: 1.05,
                samples: vec![(-150.0, 93.25), (0.0, 90.0 + f64::EPSILON), (150.0, 93.5)],
            }],
        };
        let back: BossungFamily = from_bytes(&to_bytes(&fam)).unwrap();
        assert_eq!(back, fam);
        assert_eq!(
            back.curves[0].samples[1].1.to_bits(),
            (90.0 + f64::EPSILON).to_bits()
        );
    }

    #[test]
    fn short_curves_are_rejected() {
        let bad = (1.0f64, vec![(0.0f64, 90.0f64)]);
        assert!(matches!(
            from_bytes::<BossungCurve>(&to_bytes(&bad)),
            Err(SnapError::Malformed { .. })
        ));
    }
}
