use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// The approved offline dependency set contains no complex-number crate, so
/// the imaging engine carries its own minimal implementation. Only the
/// operations the Abbe engine needs are provided.
///
/// # Examples
///
/// ```
/// use svt_litho::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// assert!((Complex::from_polar(2.0, 0.0) - Complex::new(2.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular components.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Creates `r·e^{iθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Creates the unit phasor `e^{iθ}`.
    #[must_use]
    pub fn cis(theta: f64) -> Complex {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` — the image intensity of a field amplitude.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
        assert_eq!(z - z, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let mut c = a;
        c *= b;
        assert_eq!(c, Complex::new(5.0, 5.0));
    }

    #[test]
    fn norms_and_conjugate() {
        let z = Complex::new(3.0, -4.0);
        assert!((z.norm() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        // z·z̄ = |z|²
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS);
        assert!((z.im - 2.0).abs() < EPS);
        assert!((Complex::cis(0.7).norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn scale_and_from_real() {
        assert_eq!(Complex::new(1.0, -2.0).scale(3.0), Complex::new(3.0, -6.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }
}
