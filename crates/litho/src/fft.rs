//! In-place radix-2 complex FFT.
//!
//! The imaging engine needs forward and inverse transforms on
//! power-of-two-length buffers (mask spectrum ↔ field amplitude). The
//! approved offline dependency set has no FFT crate, so this module
//! implements the iterative Cooley–Tukey algorithm with bit-reversal
//! permutation. Correctness is pinned against a direct `O(n²)` DFT in the
//! test suite.
//!
//! Convention: [`forward`] computes `X[k] = Σ_n x[n]·e^{-2πi kn/N}` (no
//! scaling); [`inverse`] computes `x[n] = (1/N)·Σ_k X[k]·e^{+2πi kn/N}`.
//!
//! Transforms of the same length share a cached plan (bit-reversal
//! permutation plus per-stage twiddle tables), so the trigonometry is paid
//! once per size instead of once per call. Twiddles are tabulated directly
//! as `cis(-2πk/len)` rather than by repeated multiplication, which is
//! also slightly more accurate than the incremental recurrence.

use std::f64::consts::PI;
use std::sync::{Arc, OnceLock};

use svt_exec::MemoCache;

use crate::Complex;

/// Precomputed machinery for one transform length.
struct Plan {
    /// `bitrev[i]` is the bit-reversed index of `i`.
    bitrev: Vec<u32>,
    /// `stages[s]` holds the `len/2` forward twiddles `cis(-2πk/len)` for
    /// butterfly length `len = 2^(s+1)`; the inverse pass conjugates them.
    stages: Vec<Vec<Complex>>,
}

impl Plan {
    fn build(n: usize) -> Plan {
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                let j = (i.reverse_bits() >> (usize::BITS - bits)) as u32;
                j
            })
            .collect();
        let mut stages = Vec::with_capacity(bits as usize);
        let mut len = 2usize;
        while len <= n {
            let ang = -2.0 * PI / len as f64;
            stages.push((0..len / 2).map(|k| Complex::cis(ang * k as f64)).collect());
            len <<= 1;
        }
        Plan { bitrev, stages }
    }
}

/// Cached plans keyed by transform length. Aerial imaging uses a handful
/// of sizes (one per mask window), so this stays tiny.
fn plan_for(n: usize) -> Arc<Plan> {
    static PLANS: OnceLock<MemoCache<usize, Arc<Plan>>> = OnceLock::new();
    PLANS
        .get_or_init(|| MemoCache::new(4, 64))
        .get_or_insert_with(n, || Arc::new(Plan::build(n)))
}

/// Returns the smallest power of two `≥ n` (and `≥ 1`).
///
/// # Examples
///
/// ```
/// assert_eq!(svt_litho::fft::next_pow2(1000), 1024);
/// assert_eq!(svt_litho::fft::next_pow2(1024), 1024);
/// assert_eq!(svt_litho::fft::next_pow2(0), 1);
/// ```
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn forward(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (including the `1/N` normalization).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn inverse(data: &mut [Complex]) {
    transform(data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    let plan = plan_for(n);

    // Bit-reversal permutation.
    for (i, &rev) in plan.bitrev.iter().enumerate() {
        let j = rev as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies, twiddles from the per-stage tables.
    let inverse_pass = sign > 0.0;
    for (stage, twiddles) in plan.stages.iter().enumerate() {
        let len = 2usize << stage;
        for start in (0..n).step_by(len) {
            for (k, &tw) in twiddles.iter().enumerate() {
                let w = if inverse_pass { tw.conj() } else { tw };
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
            }
        }
    }
}

/// The signed FFT bin frequency for bin `k` of an `n`-point transform over a
/// window of physical length `window` (same length unit as the result's
/// reciprocal): bins above `n/2` alias to negative frequencies.
///
/// # Examples
///
/// ```
/// use svt_litho::fft::bin_frequency;
/// assert_eq!(bin_frequency(0, 8, 800.0), 0.0);
/// assert_eq!(bin_frequency(1, 8, 800.0), 1.0 / 800.0);
/// assert_eq!(bin_frequency(7, 8, 800.0), -1.0 / 800.0);
/// ```
#[must_use]
pub fn bin_frequency(k: usize, n: usize, window: f64) -> f64 {
    let k = k as i64;
    let n = n as i64;
    let signed = if k <= n / 2 { k } else { k - n };
    signed as f64 / window
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_dft(x: &[Complex], sign: f64) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    let ang = sign * 2.0 * PI * (k * j) as f64 / n as f64;
                    acc += xj * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).norm() < tol,
                "bin {i}: {x} vs {y} differ by {}",
                (*x - *y).norm()
            );
        }
    }

    #[test]
    fn forward_matches_direct_dft() {
        // Deterministic pseudo-random input.
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((t * 0.37).sin() + 0.2 * t.cos(), (t * 1.7).cos())
            })
            .collect();
        let expected = direct_dft(&x, -1.0);
        let mut got = x.clone();
        forward(&mut got);
        assert_close(&got, &expected, 1e-9);
    }

    #[test]
    fn inverse_round_trips() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let mut y = x.clone();
        forward(&mut y);
        inverse(&mut y);
        assert_close(&y, &x, 1e-10);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        forward(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        forward(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.norm() < 1e-9, "leakage at bin {k}: {z}");
            }
        }
    }

    #[test]
    fn trivial_lengths() {
        let mut x = vec![Complex::new(3.0, 1.0)];
        forward(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 1.0));
        inverse(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_pow2() {
        let mut x = vec![Complex::ZERO; 12];
        forward(&mut x);
    }

    #[test]
    fn bin_frequencies_are_symmetric() {
        let n = 8;
        let w = 800.0;
        assert_eq!(bin_frequency(4, n, w), 4.0 / 800.0); // Nyquist stays positive
        assert_eq!(bin_frequency(5, n, w), -3.0 / 800.0);
        assert_eq!(bin_frequency(n - 1, n, w), -1.0 / 800.0);
    }

    #[test]
    fn next_pow2_edges() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4097), 8192);
    }
}
