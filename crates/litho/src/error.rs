use std::error::Error;
use std::fmt;

/// Errors produced by the lithography engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LithoError {
    /// An illumination source description was out of range.
    InvalidSource {
        /// Human-readable reason.
        reason: String,
    },
    /// Lens parameters were out of range.
    InvalidOptics {
        /// Human-readable reason.
        reason: String,
    },
    /// A mask window description was degenerate.
    InvalidWindow {
        /// Human-readable reason.
        reason: String,
    },
    /// The intensity never crossed the resist threshold around the requested
    /// measurement site — the feature failed to print.
    FeatureNotPrinted {
        /// Measurement abscissa in nanometres.
        at: f64,
    },
    /// The feature printed but one of its edges fell outside the simulated
    /// window, so its CD cannot be trusted.
    EdgeOutsideWindow {
        /// Measurement abscissa in nanometres.
        at: f64,
    },
    /// Model calibration failed to bracket the target CD.
    CalibrationFailed {
        /// Target CD in nanometres.
        target_cd: f64,
    },
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::InvalidSource { reason } => write!(f, "invalid source: {reason}"),
            LithoError::InvalidOptics { reason } => write!(f, "invalid optics: {reason}"),
            LithoError::InvalidWindow { reason } => write!(f, "invalid mask window: {reason}"),
            LithoError::FeatureNotPrinted { at } => {
                write!(
                    f,
                    "no printed feature at x = {at} nm (intensity above threshold)"
                )
            }
            LithoError::EdgeOutsideWindow { at } => {
                write!(
                    f,
                    "printed feature at x = {at} nm extends beyond the simulation window"
                )
            }
            LithoError::CalibrationFailed { target_cd } => {
                write!(
                    f,
                    "resist calibration could not reach target CD {target_cd} nm"
                )
            }
        }
    }
}

impl Error for LithoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = LithoError::FeatureNotPrinted { at: 450.0 };
        assert!(e.to_string().contains("450"));
        let e = LithoError::InvalidSource {
            reason: "sigma 2".into(),
        };
        assert!(e.to_string().contains("sigma 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<LithoError>();
    }
}
