use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

use crate::{Complex, LithoError};

/// The projection-lens pupil: a hard aperture at the numerical-aperture edge
/// with an exact (non-paraxial) defocus phase aberration.
///
/// For a plane-wave component with in-plane spatial frequency `f` (cycles per
/// nm), the propagation direction satisfies `sin θ = λ·f`. A defocus of `z`
/// nanometres adds the optical-path phase
///
/// `φ(f) = (2π·z/λ)·(√(1 − (λf)²) − 1)`,
///
/// which reduces to the familiar paraxial `−π·λ·z·f²` for small angles but
/// stays accurate at the NA = 0.7 angles the 90 nm process uses.
///
/// # Examples
///
/// ```
/// use svt_litho::Pupil;
///
/// let pupil = Pupil::new(193.0, 0.7)?;
/// assert!(pupil.passes(0.003));            // well inside NA/λ
/// assert!(!pupil.passes(0.004));           // cut off (NA/λ ≈ 0.00363)
/// let h = pupil.transfer(0.002, 200.0);    // 200 nm defocus
/// assert!((h.norm() - 1.0).abs() < 1e-12); // phase-only aberration
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pupil {
    wavelength_nm: f64,
    na: f64,
}

impl Pupil {
    /// Creates a pupil for the given exposure wavelength (nm) and numerical
    /// aperture.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidOptics`] unless `wavelength > 0` and
    /// `0 < NA < 1`.
    pub fn new(wavelength_nm: f64, na: f64) -> Result<Pupil, LithoError> {
        if wavelength_nm <= 0.0 || na <= 0.0 || na >= 1.0 {
            return Err(LithoError::InvalidOptics {
                reason: format!("wavelength {wavelength_nm} nm / NA {na} out of range"),
            });
        }
        Ok(Pupil { wavelength_nm, na })
    }

    /// Exposure wavelength in nanometres.
    #[must_use]
    pub fn wavelength_nm(&self) -> f64 {
        self.wavelength_nm
    }

    /// Numerical aperture.
    #[must_use]
    pub fn na(&self) -> f64 {
        self.na
    }

    /// The pupil cutoff frequency `NA/λ` in cycles per nanometre.
    #[must_use]
    pub fn cutoff(&self) -> f64 {
        self.na / self.wavelength_nm
    }

    /// Whether a spatial frequency is inside the aperture.
    #[must_use]
    pub fn passes(&self, f: f64) -> bool {
        f.abs() <= self.cutoff()
    }

    /// The complex pupil transfer at spatial frequency `f` with `defocus_nm`
    /// of focus error. Zero outside the aperture; a unit phasor inside.
    #[must_use]
    pub fn transfer(&self, f: f64, defocus_nm: f64) -> Complex {
        if !self.passes(f) {
            return Complex::ZERO;
        }
        if defocus_nm == 0.0 {
            return Complex::ONE;
        }
        let sin_theta = (self.wavelength_nm * f).clamp(-1.0, 1.0);
        let cos_theta = (1.0 - sin_theta * sin_theta).sqrt();
        let phase = 2.0 * PI * defocus_nm / self.wavelength_nm * (cos_theta - 1.0);
        Complex::cis(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pupil() -> Pupil {
        Pupil::new(193.0, 0.7).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Pupil::new(193.0, 0.7).is_ok());
        assert!(Pupil::new(0.0, 0.7).is_err());
        assert!(Pupil::new(193.0, 0.0).is_err());
        assert!(Pupil::new(193.0, 1.0).is_err());
        assert!(Pupil::new(-193.0, 0.5).is_err());
    }

    #[test]
    fn cutoff_matches_na_over_lambda() {
        let p = pupil();
        assert!((p.cutoff() - 0.7 / 193.0).abs() < 1e-15);
        assert!(p.passes(p.cutoff()));
        assert!(!p.passes(p.cutoff() * 1.001));
        assert!(p.passes(-p.cutoff() * 0.5));
    }

    #[test]
    fn in_focus_transfer_is_unity() {
        let p = pupil();
        assert_eq!(p.transfer(0.001, 0.0), Complex::ONE);
        assert_eq!(p.transfer(1.0, 0.0), Complex::ZERO);
    }

    #[test]
    fn defocus_is_phase_only_and_even_in_f() {
        let p = pupil();
        let h1 = p.transfer(0.002, 150.0);
        let h2 = p.transfer(-0.002, 150.0);
        assert!((h1.norm() - 1.0).abs() < 1e-12);
        assert!((h1 - h2).norm() < 1e-12, "defocus phase must be even in f");
    }

    #[test]
    fn defocus_phase_grows_with_angle() {
        let p = pupil();
        let z = 300.0;
        let phase_at = |f: f64| {
            let h = p.transfer(f, z);
            h.im.atan2(h.re).abs()
        };
        // Zero phase on axis, growing magnitude toward the aperture edge.
        assert!(phase_at(0.0) < 1e-12);
        assert!(phase_at(0.003) > phase_at(0.001));
    }

    #[test]
    fn defocus_phase_matches_paraxial_for_small_angles() {
        let p = pupil();
        let f = 5e-4; // sinθ ≈ 0.0965, still smallish
        let z = 100.0;
        let exact = p.transfer(f, z);
        let paraxial = Complex::cis(-PI * p.wavelength_nm() * z * f * f);
        assert!(
            (exact - paraxial).norm() < 1e-3,
            "exact {exact} vs paraxial {paraxial}"
        );
    }
}
