use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use svt_exec::{qf64, quantize_f64, unquantize_f64, CacheStats, MemoCache};

use crate::cd::{measure_cd_at, PrintedCd, ThresholdResist};
use crate::{AerialImage, Illumination, ImagingConfig, LithoError, MaskCutline};

/// Memo key for a printed CD: pattern kind, full simulator identity (exact
/// bit patterns of every field that influences the image), and the four
/// quantized pattern parameters.
type CdKey = (u8, [u64; 9], i64, i64, i64, i64);

const PATTERN_LINE_ARRAY: u8 = 0;
const PATTERN_ISOLATED: u8 = 1;

fn cd_cache() -> &'static MemoCache<CdKey, f64> {
    static CACHE: OnceLock<MemoCache<CdKey, f64>> = OnceLock::new();
    static TELEMETRY: OnceLock<()> = OnceLock::new();
    let cache = CACHE.get_or_init(MemoCache::default);
    TELEMETRY.get_or_init(|| svt_exec::register_cache_telemetry("litho.cd", cache));
    cache
}

/// Hit/miss counters of the printed-CD memo cache.
#[must_use]
pub fn cd_cache_stats() -> CacheStats {
    cd_cache().stats()
}

/// Drops every cached printed-CD result.
pub fn clear_cd_cache() {
    cd_cache().clear();
}

/// High-level lithography simulator: imaging + resist + etch + CD metrology.
///
/// This is the interface the OPC and characterization crates consume. It
/// wraps an [`ImagingConfig`], a [`ThresholdResist`], and a constant
/// resist-to-device etch bias, and provides the common pattern
/// constructions (isolated line, line array, arbitrary line sets) with
/// sensible simulation windows. All `print_*` methods return the **final
/// device CD** (resist CD minus etch bias).
///
/// # Examples
///
/// ```
/// use svt_litho::Process;
///
/// let sim = Process::nm90().simulator();
/// let semi_dense = sim.print_line_array(90.0, 300.0, 0.0, 1.0)?;
/// let sparse = sim.print_line_array(90.0, 600.0, 0.0, 1.0)?;
/// assert!((semi_dense - sparse).abs() > 0.5, "through-pitch bias should be visible");
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LithoSimulator {
    config: ImagingConfig,
    resist: ThresholdResist,
    etch_bias_nm: f64,
}

impl LithoSimulator {
    /// Default window half-width for single-feature simulations, generously
    /// beyond the radius of influence.
    const HALF_WINDOW_NM: f64 = 2048.0;

    /// Creates a simulator with a default 0.3 resist threshold and no etch
    /// bias. Use [`crate::Process::simulator`] for the calibrated 90 nm
    /// stack.
    #[must_use]
    pub fn new(config: ImagingConfig) -> LithoSimulator {
        LithoSimulator {
            config,
            resist: ThresholdResist::new(0.3),
            etch_bias_nm: 0.0,
        }
    }

    /// Replaces the resist model.
    #[must_use]
    pub fn with_resist(mut self, resist: ThresholdResist) -> LithoSimulator {
        self.resist = resist;
        self
    }

    /// Replaces the etch bias (resist CD − device CD).
    ///
    /// # Panics
    ///
    /// Panics if the bias is negative.
    #[must_use]
    pub fn with_etch_bias(mut self, etch_bias_nm: f64) -> LithoSimulator {
        assert!(etch_bias_nm >= 0.0, "etch bias must be non-negative");
        self.etch_bias_nm = etch_bias_nm;
        self
    }

    /// The imaging configuration.
    #[must_use]
    pub fn config(&self) -> &ImagingConfig {
        &self.config
    }

    /// The resist model.
    #[must_use]
    pub fn resist(&self) -> ThresholdResist {
        self.resist
    }

    /// The etch bias in nanometres.
    #[must_use]
    pub fn etch_bias_nm(&self) -> f64 {
        self.etch_bias_nm
    }

    /// Computes the aerial image of a mask cutline.
    #[must_use]
    pub fn aerial_image(&self, mask: &MaskCutline, defocus_nm: f64) -> AerialImage {
        self.config.aerial_image(mask, defocus_nm)
    }

    /// Prints an arbitrary set of chrome lines in the window
    /// `[x0, x0 + length]` and measures the *resist* feature at `measure_x`
    /// (no etch bias applied; use [`LithoSimulator::device_cd`] to convert).
    ///
    /// # Errors
    ///
    /// Propagates window construction and metrology errors; see
    /// [`MaskCutline::from_lines`] and [`measure_cd_at`].
    pub fn print_pattern(
        &self,
        x0: f64,
        length: f64,
        lines: &[(f64, f64)],
        measure_x: f64,
        defocus_nm: f64,
        dose: f64,
    ) -> Result<PrintedCd, LithoError> {
        let mask = MaskCutline::from_lines(x0, length, self.config.grid_nm(), lines)?;
        let image = self.aerial_image(&mask, defocus_nm);
        measure_cd_at(&image, measure_x, self.resist, dose)
    }

    /// Converts a printed resist feature to the final device CD by applying
    /// the etch bias.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::FeatureNotPrinted`] if the etch would consume
    /// the entire resist line.
    pub fn device_cd(&self, printed: PrintedCd) -> Result<f64, LithoError> {
        let cd = printed.cd() - self.etch_bias_nm;
        if cd <= 0.0 {
            return Err(LithoError::FeatureNotPrinted {
                at: printed.center(),
            });
        }
        Ok(cd)
    }

    /// Prints an arbitrary line set and returns the **device CD** of the
    /// feature at `measure_x`.
    ///
    /// # Errors
    ///
    /// See [`LithoSimulator::print_pattern`] and
    /// [`LithoSimulator::device_cd`].
    pub fn print_device_cd(
        &self,
        x0: f64,
        length: f64,
        lines: &[(f64, f64)],
        measure_x: f64,
        defocus_nm: f64,
        dose: f64,
    ) -> Result<f64, LithoError> {
        let printed = self.print_pattern(x0, length, lines, measure_x, defocus_nm, dose)?;
        self.device_cd(printed)
    }

    /// Exact identity of every simulator field that influences a printed
    /// CD, embedded in memo keys so distinct simulators never share one.
    /// Downstream crates (OPC, library expansion) fold this into their own
    /// cache keys for the same reason.
    #[must_use]
    pub fn identity(&self) -> [u64; 9] {
        let (tag, sigma_a, sigma_b) = match self.config.source() {
            Illumination::Conventional { sigma } => (0u64, qf64(sigma), 0),
            Illumination::Annular {
                sigma_in,
                sigma_out,
            } => (1, qf64(sigma_in), qf64(sigma_out)),
        };
        [
            qf64(self.config.pupil().wavelength_nm()),
            qf64(self.config.pupil().na()),
            tag,
            sigma_a,
            sigma_b,
            self.config.source_samples() as u64,
            qf64(self.config.grid_nm()),
            qf64(self.resist.threshold()),
            qf64(self.etch_bias_nm),
        ]
    }

    /// Memoizes a printed-CD computation on the quantized parameter grid.
    ///
    /// `compute` receives the bucket *representatives*, never the raw
    /// inputs: every parameter set that lands in a bucket maps to one
    /// canonical result, making cached values independent of fill order.
    /// Errors are never cached; non-finite parameters bypass the cache so
    /// the underlying computation reports them in its own terms.
    fn memoized_cd(
        &self,
        kind: u8,
        width_nm: f64,
        pitch_nm: f64,
        defocus_nm: f64,
        dose: f64,
        compute: impl FnOnce(&LithoSimulator, f64, f64, f64, f64) -> Result<f64, LithoError>,
    ) -> Result<f64, LithoError> {
        let finite = width_nm.is_finite()
            && pitch_nm.is_finite()
            && defocus_nm.is_finite()
            && dose.is_finite();
        if !finite {
            return compute(self, width_nm, pitch_nm, defocus_nm, dose);
        }
        let qw = quantize_f64(width_nm);
        let qp = quantize_f64(pitch_nm);
        let qf = quantize_f64(defocus_nm);
        let qd = quantize_f64(dose);
        let key = (kind, self.identity(), qw, qp, qf, qd);
        let cache = cd_cache();
        if let Some(cd) = cache.get(&key) {
            return Ok(cd);
        }
        let cd = compute(
            self,
            unquantize_f64(qw),
            unquantize_f64(qp),
            unquantize_f64(qf),
            unquantize_f64(qd),
        )?;
        cache.insert(key, cd);
        Ok(cd)
    }

    /// Prints an isolated line of the given drawn width centered at 0 and
    /// returns its device CD. Results are memoized on the quantized
    /// `(width, defocus, dose)` grid.
    ///
    /// # Errors
    ///
    /// See [`LithoSimulator::print_device_cd`].
    pub fn print_isolated_line(
        &self,
        width_nm: f64,
        defocus_nm: f64,
        dose: f64,
    ) -> Result<f64, LithoError> {
        self.memoized_cd(
            PATTERN_ISOLATED,
            width_nm,
            0.0,
            defocus_nm,
            dose,
            |sim, width_nm, _, defocus_nm, dose| {
                let lines = [(-width_nm / 2.0, width_nm / 2.0)];
                sim.print_device_cd(
                    -Self::HALF_WINDOW_NM,
                    2.0 * Self::HALF_WINDOW_NM,
                    &lines,
                    0.0,
                    defocus_nm,
                    dose,
                )
            },
        )
    }

    /// Prints an equal-pitch array of lines filling the window and returns
    /// the device CD of the center line. This is the paper's through-pitch
    /// test pattern ("parallel poly lines with fixed width and varying
    /// spacing").
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidWindow`] if `pitch ≤ width`; otherwise
    /// see [`LithoSimulator::print_device_cd`]. Results are memoized on the
    /// quantized `(width, pitch, defocus, dose)` grid.
    pub fn print_line_array(
        &self,
        width_nm: f64,
        pitch_nm: f64,
        defocus_nm: f64,
        dose: f64,
    ) -> Result<f64, LithoError> {
        if pitch_nm <= width_nm {
            return Err(LithoError::InvalidWindow {
                reason: format!("pitch {pitch_nm} must exceed line width {width_nm}"),
            });
        }
        self.memoized_cd(
            PATTERN_LINE_ARRAY,
            width_nm,
            pitch_nm,
            defocus_nm,
            dose,
            |sim, width_nm, pitch_nm, defocus_nm, dose| {
                // Fill the window with neighbors, leaving a clear margin at
                // the ends.
                let margin = 700.0;
                let count = ((Self::HALF_WINDOW_NM - margin) / pitch_nm).floor() as i64;
                let lines: Vec<(f64, f64)> = (-count..=count)
                    .map(|k| {
                        let c = k as f64 * pitch_nm;
                        (c - width_nm / 2.0, c + width_nm / 2.0)
                    })
                    .collect();
                sim.print_device_cd(
                    -Self::HALF_WINDOW_NM,
                    2.0 * Self::HALF_WINDOW_NM,
                    &lines,
                    0.0,
                    defocus_nm,
                    dose,
                )
            },
        )
    }

    /// Prints a line of `width_nm` centered at 0 with one neighbor line at
    /// edge-to-edge spacing `left_space` on the left and `right_space` on
    /// the right (`None` = no neighbor within the radius of influence), and
    /// returns the center device CD. This is the asymmetric-context pattern
    /// used to build the boundary-device CD lookup table.
    ///
    /// # Errors
    ///
    /// See [`LithoSimulator::print_device_cd`].
    pub fn print_with_neighbors(
        &self,
        width_nm: f64,
        left_space: Option<f64>,
        right_space: Option<f64>,
        defocus_nm: f64,
        dose: f64,
    ) -> Result<f64, LithoError> {
        let mut lines = vec![(-width_nm / 2.0, width_nm / 2.0)];
        if let Some(s) = left_space {
            let hi = -width_nm / 2.0 - s;
            lines.push((hi - width_nm, hi));
        }
        if let Some(s) = right_space {
            let lo = width_nm / 2.0 + s;
            lines.push((lo, lo + width_nm));
        }
        self.print_device_cd(
            -Self::HALF_WINDOW_NM,
            2.0 * Self::HALF_WINDOW_NM,
            &lines,
            0.0,
            defocus_nm,
            dose,
        )
    }

    /// Calibrates the resist threshold so that the anchor pattern (a line
    /// array of `width_nm` at `pitch_nm`) prints at a device CD of exactly
    /// `width_nm` at nominal focus and dose, mirroring how production OPC
    /// models are anchored. Returns the calibrated simulator.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::CalibrationFailed`] if no threshold in
    /// `(0.05, 0.95)` reaches the target.
    pub fn calibrated_to(
        mut self,
        width_nm: f64,
        pitch_nm: f64,
    ) -> Result<LithoSimulator, LithoError> {
        use std::cmp::Ordering;
        let mut lo = 0.05f64;
        let mut hi = 0.95f64;
        // Compares the printed CD at threshold `th` against the target.
        // A dark line grows with threshold, so the comparison is monotone:
        // washed-away features count as "too small", resist covering the
        // whole window counts as "too large".
        let compare = |sim: &LithoSimulator, th: f64| -> Result<Ordering, LithoError> {
            let probe = sim.clone().with_resist(ThresholdResist::new(th));
            match probe.print_line_array(width_nm, pitch_nm, 0.0, 1.0) {
                Ok(cd) => Ok(cd.total_cmp(&width_nm)),
                Err(LithoError::FeatureNotPrinted { .. }) => Ok(Ordering::Less),
                Err(LithoError::EdgeOutsideWindow { .. }) => Ok(Ordering::Greater),
                Err(e) => Err(e),
            }
        };
        if compare(&self, lo)? != Ordering::Less || compare(&self, hi)? != Ordering::Greater {
            return Err(LithoError::CalibrationFailed {
                target_cd: width_nm,
            });
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            match compare(&self, mid)? {
                Ordering::Less => lo = mid,
                Ordering::Greater => hi = mid,
                Ordering::Equal => {
                    lo = mid;
                    hi = mid;
                    break;
                }
            }
        }
        self.resist = ThresholdResist::new(0.5 * (lo + hi));
        // Bisection can converge onto a discontinuity (e.g. the space
        // pinching shut) without ever reaching the target; verify the
        // calibrated threshold actually prints to size.
        let check = self.print_line_array(width_nm, pitch_nm, 0.0, 1.0)?;
        if (check - width_nm).abs() > 0.5 {
            return Err(LithoError::CalibrationFailed {
                target_cd: width_nm,
            });
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Process;

    fn sim() -> LithoSimulator {
        Process::nm90().simulator()
    }

    #[test]
    fn through_pitch_bias_is_visible() {
        let s = sim();
        let dense = s.print_line_array(90.0, 240.0, 0.0, 1.0).unwrap();
        let semi = s.print_line_array(90.0, 300.0, 0.0, 1.0).unwrap();
        let sparse = s.print_line_array(90.0, 600.0, 0.0, 1.0).unwrap();
        let iso = s.print_isolated_line(90.0, 0.0, 1.0).unwrap();
        for (name, cd) in [
            ("dense", dense),
            ("semi", semi),
            ("sparse", sparse),
            ("iso", iso),
        ] {
            assert!(cd > 40.0 && cd < 180.0, "{name} CD {cd} implausible");
        }
        assert!(
            (semi - sparse).abs() > 0.5,
            "no through-pitch bias: {semi} vs {sparse}"
        );
    }

    #[test]
    fn line_array_requires_pitch_above_width() {
        assert!(sim().print_line_array(90.0, 80.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn memoized_cd_hit_is_bit_identical() {
        let s = sim();
        // Parameters no other test uses, so the first call is a miss.
        let a = s.print_line_array(91.0, 310.0, 25.0, 1.02).unwrap();
        let hits_before = cd_cache_stats().hits;
        let b = s.print_line_array(91.0, 310.0, 25.0, 1.02).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "cache hit changed the CD");
        assert!(
            cd_cache_stats().hits > hits_before,
            "repeat call missed the cache"
        );
        // A perturbation below the 1e-6 nm quantum lands in the same bucket
        // and returns the exact cached value.
        let c = s.print_line_array(91.0 + 1e-9, 310.0, 25.0, 1.02).unwrap();
        assert_eq!(
            a.to_bits(),
            c.to_bits(),
            "sub-quantum key missed the bucket"
        );
    }

    #[test]
    fn neighbor_context_changes_cd() {
        let s = sim();
        let both_close = s
            .print_with_neighbors(90.0, Some(150.0), Some(150.0), 0.0, 1.0)
            .unwrap();
        let alone = s.print_with_neighbors(90.0, None, None, 0.0, 1.0).unwrap();
        assert!(
            (both_close - alone).abs() > 0.5,
            "neighbors must matter: {both_close} vs {alone}"
        );
        // Beyond the radius of influence the neighbor should barely matter.
        let far = s
            .print_with_neighbors(90.0, Some(1400.0), Some(1400.0), 0.0, 1.0)
            .unwrap();
        assert!(
            (far - alone).abs() < 1.0,
            "1400 nm neighbors are outside the ROI: {far} vs {alone}"
        );
    }

    #[test]
    fn calibration_anchors_the_dense_pattern() {
        let s = sim().calibrated_to(90.0, 240.0).unwrap();
        let cd = s.print_line_array(90.0, 240.0, 0.0, 1.0).unwrap();
        assert!((cd - 90.0).abs() < 0.05, "calibrated dense CD {cd} != 90");
    }

    #[test]
    fn calibration_failure_is_reported() {
        // A 200 nm device target at a 210 nm pitch needs a 240 nm resist
        // line inside a 210 nm pitch: impossible, the space pinches first.
        let err = sim().calibrated_to(200.0, 210.0);
        assert!(err.is_err());
    }

    #[test]
    fn etch_bias_shifts_device_cd_exactly() {
        let p = Process::nm90();
        let biased = p.simulator();
        let unbiased = biased.clone().with_etch_bias(0.0);
        let a = biased.print_isolated_line(90.0, 0.0, 1.0).unwrap();
        let b = unbiased.print_isolated_line(90.0, 0.0, 1.0).unwrap();
        assert!((b - a - p.etch_bias_nm()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_etch_bias_rejected() {
        let _ = sim().with_etch_bias(-1.0);
    }
}
