use serde::{Deserialize, Serialize};

use crate::LithoError;

/// Illumination source shape for partially coherent imaging.
///
/// Source coordinates are expressed in pupil-filling units `σ` (a point at
/// `σ = 1` illuminates at the numerical-aperture edge). For 1-D line/space
/// imaging the 2-D source is projected onto the axis perpendicular to the
/// lines: the weight of a 1-D source point at abscissa `s` is the chord
/// length of the 2-D source at that abscissa. This keeps the partial
/// coherence of the 1-D engine faithful to the 2-D source shape — an annular
/// source, in particular, still has most of its energy at large `|s|`, which
/// is what creates the strong through-pitch behaviour of paper Fig. 1.
///
/// # Examples
///
/// ```
/// use svt_litho::Illumination;
///
/// let annular = Illumination::annular(0.55, 0.85)?;
/// let pts = annular.sample_1d(33);
/// let total: f64 = pts.iter().map(|p| p.weight).sum();
/// assert!((total - 1.0).abs() < 1e-12, "weights are normalized");
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Illumination {
    /// Disc source of radius `sigma`.
    Conventional {
        /// Partial-coherence factor (disc radius), in `(0, 1]`.
        sigma: f64,
    },
    /// Annulus between `sigma_in` and `sigma_out`.
    Annular {
        /// Inner radius of the annulus.
        sigma_in: f64,
        /// Outer radius of the annulus.
        sigma_out: f64,
    },
}

/// A sampled 1-D source point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourcePoint {
    /// Abscissa in σ units, in `[-σ_out, σ_out]`.
    pub s: f64,
    /// Normalized weight; all weights of a sampling sum to 1.
    pub weight: f64,
}

impl Illumination {
    /// Creates a conventional (disc) source.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidSource`] unless `0 < sigma ≤ 1`.
    pub fn conventional(sigma: f64) -> Result<Illumination, LithoError> {
        if !(sigma > 0.0 && sigma <= 1.0) {
            return Err(LithoError::InvalidSource {
                reason: format!("conventional sigma {sigma} not in (0, 1]"),
            });
        }
        Ok(Illumination::Conventional { sigma })
    }

    /// Creates an annular source.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidSource`] unless
    /// `0 ≤ sigma_in < sigma_out ≤ 1`.
    pub fn annular(sigma_in: f64, sigma_out: f64) -> Result<Illumination, LithoError> {
        if !(sigma_in >= 0.0 && sigma_in < sigma_out && sigma_out <= 1.0) {
            return Err(LithoError::InvalidSource {
                reason: format!("annulus [{sigma_in}, {sigma_out}] is not 0 <= in < out <= 1"),
            });
        }
        Ok(Illumination::Annular {
            sigma_in,
            sigma_out,
        })
    }

    /// Outer radius of the source.
    #[must_use]
    pub fn sigma_out(&self) -> f64 {
        match *self {
            Illumination::Conventional { sigma } => sigma,
            Illumination::Annular { sigma_out, .. } => sigma_out,
        }
    }

    /// Chord length of the 2-D source at abscissa `s` (unnormalized 1-D
    /// projected weight).
    #[must_use]
    pub fn chord(&self, s: f64) -> f64 {
        fn half_chord(radius: f64, s: f64) -> f64 {
            let d = radius * radius - s * s;
            if d > 0.0 {
                d.sqrt()
            } else {
                0.0
            }
        }
        match *self {
            Illumination::Conventional { sigma } => 2.0 * half_chord(sigma, s),
            Illumination::Annular {
                sigma_in,
                sigma_out,
            } => 2.0 * (half_chord(sigma_out, s) - half_chord(sigma_in, s)),
        }
    }

    /// Samples the projected 1-D source with `n` equally spaced points over
    /// `[-σ_out, σ_out]`, weighting each by the source chord and normalizing
    /// the weights to sum to 1. Points with zero weight are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn sample_1d(&self, n: usize) -> Vec<SourcePoint> {
        assert!(n >= 2, "need at least two source samples, got {n}");
        let sigma_out = self.sigma_out();
        // Midpoint sampling avoids the zero-chord endpoints.
        let step = 2.0 * sigma_out / n as f64;
        let mut pts: Vec<SourcePoint> = (0..n)
            .map(|i| {
                let s = -sigma_out + (i as f64 + 0.5) * step;
                SourcePoint {
                    s,
                    weight: self.chord(s),
                }
            })
            .filter(|p| p.weight > 0.0)
            .collect();
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        for p in &mut pts {
            p.weight /= total;
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_validation() {
        assert!(Illumination::conventional(0.6).is_ok());
        assert!(Illumination::conventional(0.0).is_err());
        assert!(Illumination::conventional(1.2).is_err());
    }

    #[test]
    fn annular_validation() {
        assert!(Illumination::annular(0.55, 0.85).is_ok());
        assert!(Illumination::annular(0.85, 0.55).is_err());
        assert!(Illumination::annular(0.5, 1.1).is_err());
        assert!(Illumination::annular(-0.1, 0.5).is_err());
    }

    #[test]
    fn disc_chord_peaks_at_center() {
        let disc = Illumination::conventional(0.5).unwrap();
        assert!((disc.chord(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(disc.chord(0.6), 0.0);
        assert!(disc.chord(0.3) > disc.chord(0.45));
    }

    #[test]
    fn annulus_chord_vanishes_inside_hole_center() {
        let ann = Illumination::annular(0.55, 0.85).unwrap();
        // Center of an annulus still has a nonzero projected chord (the two
        // ring segments above and below), but less than the outer-disc chord.
        let at0 = ann.chord(0.0);
        assert!((at0 - 2.0 * (0.85 - 0.55)).abs() < 1e-12);
        // Near the outer radius only the ring contributes.
        assert!(ann.chord(0.7) > 0.0);
        assert_eq!(ann.chord(0.9), 0.0);
    }

    #[test]
    fn samples_are_normalized_and_symmetric() {
        for src in [
            Illumination::conventional(0.7).unwrap(),
            Illumination::annular(0.55, 0.85).unwrap(),
        ] {
            let pts = src.sample_1d(32);
            let total: f64 = pts.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-12);
            // Symmetric sampling: mean abscissa ~ 0.
            let mean: f64 = pts.iter().map(|p| p.s * p.weight).sum();
            assert!(mean.abs() < 1e-12);
            for p in &pts {
                assert!(p.s.abs() <= src.sigma_out());
            }
        }
    }

    #[test]
    fn annular_energy_concentrates_off_axis() {
        let ann = Illumination::annular(0.55, 0.85).unwrap();
        let pts = ann.sample_1d(64);
        let off_axis: f64 = pts
            .iter()
            .filter(|p| p.s.abs() > 0.4)
            .map(|p| p.weight)
            .sum();
        assert!(
            off_axis > 0.5,
            "annulus should weight |s| > 0.4 heavily, got {off_axis}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two source samples")]
    fn rejects_single_sample() {
        let _ = Illumination::conventional(0.5).unwrap().sample_1d(1);
    }
}
