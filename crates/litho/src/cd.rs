use serde::{Deserialize, Serialize};

use crate::{AerialImage, LithoError};

/// Constant-threshold resist model with dose scaling.
///
/// A positive resist develops away wherever the delivered exposure exceeds
/// the threshold; the resist line survives where the aerial intensity is
/// below it. Increasing the exposure dose scales the delivered intensity, so
/// the effective threshold in clear-field-normalized units is
/// `threshold / dose`.
///
/// # Examples
///
/// ```
/// use svt_litho::ThresholdResist;
///
/// let resist = ThresholdResist::new(0.3);
/// assert_eq!(resist.effective_threshold(1.0), 0.3);
/// assert!(resist.effective_threshold(1.1) < 0.3); // overdose shrinks lines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdResist {
    threshold: f64,
}

impl ThresholdResist {
    /// Creates a resist with a clear-field-normalized threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold < 1`.
    #[must_use]
    pub fn new(threshold: f64) -> ThresholdResist {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "resist threshold {threshold} must be in (0, 1)"
        );
        ThresholdResist { threshold }
    }

    /// The nominal threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The effective threshold at a relative exposure dose (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics if `dose ≤ 0`.
    #[must_use]
    pub fn effective_threshold(&self, dose: f64) -> f64 {
        assert!(dose > 0.0, "dose {dose} must be positive");
        self.threshold / dose
    }
}

/// A printed (resist) feature measured from an aerial image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrintedCd {
    /// Left resist edge in nanometres (sub-grid interpolated).
    pub left_edge: f64,
    /// Right resist edge in nanometres.
    pub right_edge: f64,
}

impl PrintedCd {
    /// The printed critical dimension.
    #[must_use]
    pub fn cd(&self) -> f64 {
        self.right_edge - self.left_edge
    }

    /// The feature center.
    #[must_use]
    pub fn center(&self) -> f64 {
        0.5 * (self.left_edge + self.right_edge)
    }
}

/// Measures the printed line around `center_x` in an aerial image.
///
/// Starting from the sample closest to `center_x` (which must be inside the
/// resist line, i.e. below the effective threshold), the function walks
/// outward until the intensity crosses the threshold and interpolates the
/// crossing linearly between samples for sub-grid edge placement.
///
/// # Errors
///
/// * [`LithoError::FeatureNotPrinted`] if the intensity at `center_x` is at
///   or above the effective threshold (the line washed away).
/// * [`LithoError::EdgeOutsideWindow`] if either edge search runs off the
///   simulated window.
pub fn measure_cd_at(
    image: &AerialImage,
    center_x: f64,
    resist: ThresholdResist,
    dose: f64,
) -> Result<PrintedCd, LithoError> {
    let th = resist.effective_threshold(dose);
    let start = image.index_of(center_x)?;
    let samples = image.samples();
    if samples[start] >= th {
        return Err(LithoError::FeatureNotPrinted { at: center_x });
    }

    // Walk right to the first sample at/above threshold.
    let mut right = start;
    loop {
        if right + 1 >= samples.len() {
            return Err(LithoError::EdgeOutsideWindow { at: center_x });
        }
        right += 1;
        if samples[right] >= th {
            break;
        }
    }
    // Walk left likewise.
    let mut left = start;
    loop {
        if left == 0 {
            return Err(LithoError::EdgeOutsideWindow { at: center_x });
        }
        left -= 1;
        if samples[left] >= th {
            break;
        }
    }

    let right_edge = cross(image, right - 1, right, th);
    let left_edge = cross(image, left, left + 1, th);
    Ok(PrintedCd {
        left_edge,
        right_edge,
    })
}

/// Linear interpolation of the threshold crossing between samples `a` and
/// `a+1 = b`.
fn cross(image: &AerialImage, a: usize, b: usize, th: f64) -> f64 {
    let ia = image.samples()[a];
    let ib = image.samples()[b];
    let frac = if (ib - ia).abs() < f64::EPSILON {
        0.5
    } else {
        ((th - ia) / (ib - ia)).clamp(0.0, 1.0)
    };
    image.position(a) + frac * image.dx()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Illumination, ImagingConfig, MaskCutline, Pupil};

    fn image_of_line(width: f64, defocus: f64) -> AerialImage {
        let cfg = ImagingConfig::new(
            Pupil::new(193.0, 0.7).unwrap(),
            Illumination::annular(0.55, 0.85).unwrap(),
            16,
            2.0,
        );
        let mask =
            MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &[(-width / 2.0, width / 2.0)]).unwrap();
        cfg.aerial_image(&mask, defocus)
    }

    #[test]
    fn resist_validation() {
        let r = ThresholdResist::new(0.3);
        assert_eq!(r.threshold(), 0.3);
        assert!((r.effective_threshold(1.2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn resist_rejects_out_of_range() {
        let _ = ThresholdResist::new(1.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn dose_must_be_positive() {
        let _ = ThresholdResist::new(0.3).effective_threshold(0.0);
    }

    #[test]
    fn measures_a_plausible_cd() {
        let img = image_of_line(130.0, 0.0);
        let printed = measure_cd_at(&img, 0.0, ThresholdResist::new(0.3), 1.0).unwrap();
        let cd = printed.cd();
        assert!(
            cd > 60.0 && cd < 220.0,
            "CD {cd} implausible for 130 nm line"
        );
        // Symmetric mask -> centered feature.
        assert!(printed.center().abs() < 1.0);
        assert!(printed.left_edge < 0.0 && printed.right_edge > 0.0);
    }

    #[test]
    fn higher_dose_shrinks_dark_lines() {
        let img = image_of_line(130.0, 0.0);
        let r = ThresholdResist::new(0.3);
        let nominal = measure_cd_at(&img, 0.0, r, 1.0).unwrap().cd();
        let overdosed = measure_cd_at(&img, 0.0, r, 1.15).unwrap().cd();
        assert!(
            overdosed < nominal,
            "overdose must shrink the line: {nominal} -> {overdosed}"
        );
    }

    #[test]
    fn unprinted_feature_is_an_error() {
        let img = image_of_line(130.0, 0.0);
        // Measure in the clear field, far from the line.
        let err = measure_cd_at(&img, 900.0, ThresholdResist::new(0.3), 1.0).unwrap_err();
        assert!(matches!(err, LithoError::FeatureNotPrinted { .. }));
    }

    #[test]
    fn tiny_feature_washes_away() {
        let img = image_of_line(8.0, 0.0);
        let err = measure_cd_at(&img, 0.0, ThresholdResist::new(0.3), 1.0);
        assert!(
            err.is_err(),
            "an 8 nm line at λ=193 nm cannot print, got {err:?}"
        );
    }

    #[test]
    fn subgrid_edges_move_with_mask_bias() {
        // Two masks differing by 1 nm of width on a 2 nm grid must yield
        // different CDs thanks to area-weighted sampling + interpolation.
        let cd = |w: f64| {
            measure_cd_at(&image_of_line(w, 0.0), 0.0, ThresholdResist::new(0.3), 1.0)
                .unwrap()
                .cd()
        };
        let a = cd(130.0);
        let b = cd(131.0);
        assert!(b > a, "1 nm mask bias must grow the printed CD: {a} vs {b}");
        assert!(b - a < 3.0, "MEEF should be modest for 130 nm lines");
    }
}
