//! Aerial-image quality metrics: contrast, NILS, MEEF, and depth of focus.
//!
//! These are the standard lithographer's figures of merit; the workspace
//! uses them to sanity-check patterns (a printable gate needs NILS ≳ 1.5)
//! and to quantify how SRAFs widen the usable focus window.

use serde::{Deserialize, Serialize};

use crate::{AerialImage, LithoError, LithoSimulator, PrintedCd};

/// Image-quality numbers for one printed feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageMetrics {
    /// Michelson contrast `(Imax − Imin)/(Imax + Imin)` in the local
    /// window around the feature.
    pub contrast: f64,
    /// Normalized image log-slope at the feature edges, averaged over both
    /// edges: `CD · |dI/dx| / I` at the resist threshold crossing.
    pub nils: f64,
    /// Minimum intensity inside the feature (the dark floor).
    pub i_min: f64,
    /// Maximum intensity in the neighboring clear region.
    pub i_max: f64,
}

/// Computes image metrics for a printed feature.
///
/// The local window extends half a radius of influence (±300 nm) around
/// the feature center.
///
/// # Errors
///
/// Returns [`LithoError::EdgeOutsideWindow`] if the analysis window falls
/// outside the simulated image.
pub fn image_metrics(
    image: &AerialImage,
    printed: PrintedCd,
    threshold: f64,
) -> Result<ImageMetrics, LithoError> {
    let center = printed.center();
    let half_window = 300.0;
    let mut i_min = f64::INFINITY;
    let mut i_max = f64::NEG_INFINITY;
    let mut x = center - half_window;
    while x <= center + half_window {
        let v = image.intensity_at(x)?;
        i_min = i_min.min(v);
        i_max = i_max.max(v);
        x += image.dx();
    }
    let contrast = if i_max + i_min > 0.0 {
        (i_max - i_min) / (i_max + i_min)
    } else {
        0.0
    };

    // Central-difference slope at each resist edge.
    let h = image.dx();
    let slope_at = |edge: f64| -> Result<f64, LithoError> {
        let a = image.intensity_at(edge - h)?;
        let b = image.intensity_at(edge + h)?;
        Ok((b - a) / (2.0 * h))
    };
    let s_left = slope_at(printed.left_edge)?.abs();
    let s_right = slope_at(printed.right_edge)?.abs();
    let cd = printed.cd();
    let nils = cd * 0.5 * (s_left + s_right) / threshold;

    Ok(ImageMetrics {
        contrast,
        nils,
        i_min,
        i_max,
    })
}

/// Mask-error enhancement factor of a pattern: `dCD_wafer / dCD_mask`,
/// estimated by a central finite difference of `±delta_mask_nm` on the
/// measured line's mask width.
///
/// `lines` are the chrome intervals; `target_index` selects the line whose
/// MEEF is measured.
///
/// # Errors
///
/// Propagates simulation and metrology failures.
///
/// # Panics
///
/// Panics if `target_index` is out of range.
pub fn meef(
    sim: &LithoSimulator,
    x0: f64,
    length: f64,
    lines: &[(f64, f64)],
    target_index: usize,
    delta_mask_nm: f64,
) -> Result<f64, LithoError> {
    assert!(target_index < lines.len(), "target line out of range");
    let perturbed = |d: f64| -> Vec<(f64, f64)> {
        let mut v = lines.to_vec();
        let (lo, hi) = v[target_index];
        v[target_index] = (lo - d / 2.0, hi + d / 2.0);
        v
    };
    let center = {
        let (lo, hi) = lines[target_index];
        (lo + hi) / 2.0
    };
    let plus = sim
        .print_pattern(x0, length, &perturbed(delta_mask_nm), center, 0.0, 1.0)?
        .cd();
    let minus = sim
        .print_pattern(x0, length, &perturbed(-delta_mask_nm), center, 0.0, 1.0)?
        .cd();
    Ok((plus - minus) / (2.0 * delta_mask_nm))
}

/// Depth of focus: the largest symmetric defocus range `±z` over which the
/// printed device CD stays within `±tolerance_nm` of its in-focus value.
/// Scans in `step_nm` increments up to `max_defocus_nm`.
///
/// # Errors
///
/// Propagates failures at focus; features washing away off focus terminate
/// the scan instead of erroring.
#[allow(clippy::too_many_arguments)] // a process-window sweep has this many knobs
pub fn depth_of_focus(
    sim: &LithoSimulator,
    x0: f64,
    length: f64,
    lines: &[(f64, f64)],
    measure_x: f64,
    tolerance_nm: f64,
    step_nm: f64,
    max_defocus_nm: f64,
) -> Result<f64, LithoError> {
    let printed = sim.print_pattern(x0, length, lines, measure_x, 0.0, 1.0)?;
    let nominal = sim.device_cd(printed)?;
    let mut dof = 0.0;
    let mut z = step_nm;
    while z <= max_defocus_nm {
        let ok = |zz: f64| -> bool {
            sim.print_pattern(x0, length, lines, measure_x, zz, 1.0)
                .ok()
                .and_then(|p| sim.device_cd(p).ok())
                .map(|cd| (cd - nominal).abs() <= tolerance_nm)
                .unwrap_or(false)
        };
        if ok(z) && ok(-z) {
            dof = z;
            z += step_nm;
        } else {
            break;
        }
    }
    Ok(2.0 * dof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaskCutline, Process};

    fn setup() -> (LithoSimulator, Vec<(f64, f64)>) {
        let sim = Process::nm90().simulator();
        (sim, vec![(-45.0, 45.0)])
    }

    #[test]
    fn metrics_of_a_healthy_line_are_sane() {
        let (sim, lines) = setup();
        let mask = MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &lines).expect("mask");
        let image = sim.aerial_image(&mask, 0.0);
        let printed = svt_litho_measure(&sim, &image);
        let m = image_metrics(&image, printed, sim.resist().threshold()).expect("metrics");
        assert!(m.contrast > 0.5, "contrast {}", m.contrast);
        assert!(m.nils > 1.0, "NILS {}", m.nils);
        assert!(m.i_min < sim.resist().threshold());
        assert!(m.i_max > sim.resist().threshold());
    }

    fn svt_litho_measure(sim: &LithoSimulator, image: &AerialImage) -> PrintedCd {
        crate::measure_cd_at(image, 0.0, sim.resist(), 1.0).expect("prints")
    }

    #[test]
    fn defocus_degrades_contrast_and_nils() {
        let (sim, lines) = setup();
        let mask = MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &lines).expect("mask");
        let th = sim.resist().threshold();
        let at = |z: f64| {
            let image = sim.aerial_image(&mask, z);
            let printed = svt_litho_measure(&sim, &image);
            image_metrics(&image, printed, th).expect("metrics")
        };
        let focused = at(0.0);
        let blurred = at(250.0);
        assert!(blurred.nils < focused.nils);
        assert!(blurred.contrast <= focused.contrast + 1e-9);
    }

    #[test]
    fn meef_is_near_unity_for_relaxed_lines() {
        let (sim, lines) = setup();
        let m = meef(&sim, -2048.0, 4096.0, &lines, 0, 2.0).expect("meef");
        assert!(
            m > 0.4 && m < 3.5,
            "MEEF {m} implausible for a 90 nm iso line"
        );
    }

    #[test]
    fn dense_meef_exceeds_isolated_meef_or_is_comparable() {
        let sim = Process::nm90().simulator();
        let iso = vec![(-45.0, 45.0)];
        let dense: Vec<(f64, f64)> = (-3..=3)
            .map(|k| {
                let c = k as f64 * 240.0;
                (c - 45.0, c + 45.0)
            })
            .collect();
        let m_iso = meef(&sim, -2048.0, 4096.0, &iso, 0, 2.0).expect("meef");
        let m_dense = meef(&sim, -2048.0, 4096.0, &dense, 3, 2.0).expect("meef");
        // At the resolution limit, dense features amplify mask errors.
        assert!(m_dense > 0.8 * m_iso, "dense {m_dense} vs iso {m_iso}");
    }

    #[test]
    fn dof_shrinks_for_marginal_tolerances() {
        let (sim, lines) = setup();
        let tight =
            depth_of_focus(&sim, -2048.0, 4096.0, &lines, 0.0, 5.0, 50.0, 500.0).expect("dof");
        let loose =
            depth_of_focus(&sim, -2048.0, 4096.0, &lines, 0.0, 20.0, 50.0, 500.0).expect("dof");
        assert!(loose >= tight, "loose tolerance must not shrink DOF");
        assert!(loose > 0.0, "a 90 nm iso line has nonzero DOF at ±20 nm");
    }

    #[test]
    #[should_panic(expected = "target line out of range")]
    fn meef_checks_bounds() {
        let (sim, lines) = setup();
        let _ = meef(&sim, -2048.0, 4096.0, &lines, 5, 2.0);
    }
}
