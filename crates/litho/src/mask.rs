use serde::{Deserialize, Serialize};

use crate::fft::next_pow2;
use crate::LithoError;

/// A sampled 1-D binary-mask transmission cutline.
///
/// The mask is clear (transmission 1) everywhere except under chrome lines
/// (transmission 0). Samples use *area weighting*: a sample cell partially
/// covered by chrome gets a fractional transmission, which gives the OPC
/// engine sub-grid edge-placement resolution — a 0.25 nm mask bias changes
/// the image even on a 2 nm simulation grid.
///
/// The sample count is always a power of two so the spectrum can be taken
/// with the radix-2 FFT; the engine treats the window as one period, so
/// callers should leave enough clear margin (≥ the optical radius of
/// influence) between real features and the window edges.
///
/// # Examples
///
/// ```
/// use svt_litho::MaskCutline;
///
/// let mask = MaskCutline::from_lines(-1024.0, 2048.0, 2.0, &[(-45.0, 45.0)])?;
/// assert!(mask.samples().len().is_power_of_two());
/// // Chrome blocks the center, the far field is clear.
/// assert_eq!(mask.transmission_at(0.0), 0.0);
/// assert_eq!(mask.transmission_at(800.0), 1.0);
/// # Ok::<(), svt_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskCutline {
    x0: f64,
    dx: f64,
    samples: Vec<f64>,
}

impl MaskCutline {
    /// Builds a cutline over the window `[x0, x0 + length]` sampled at grid
    /// pitch ≤ `grid_nm`, with chrome covering each `(lo, hi)` line.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidWindow`] if the window or grid is
    /// degenerate, or if any line is inverted or escapes the window.
    pub fn from_lines(
        x0: f64,
        length: f64,
        grid_nm: f64,
        lines: &[(f64, f64)],
    ) -> Result<MaskCutline, LithoError> {
        if length <= 0.0 || grid_nm <= 0.0 {
            return Err(LithoError::InvalidWindow {
                reason: format!("window length {length} / grid {grid_nm} must be positive"),
            });
        }
        let n = next_pow2((length / grid_nm).ceil() as usize);
        let dx = length / n as f64;
        let mut samples = vec![1.0f64; n];
        for &(lo, hi) in lines {
            if lo >= hi {
                return Err(LithoError::InvalidWindow {
                    reason: format!("inverted chrome line ({lo}, {hi})"),
                });
            }
            if lo < x0 || hi > x0 + length {
                return Err(LithoError::InvalidWindow {
                    reason: format!(
                        "chrome line ({lo}, {hi}) escapes window [{x0}, {}]",
                        x0 + length
                    ),
                });
            }
            // Subtract the covered fraction from every overlapped sample.
            // Sample k sits at x0 + k·dx and represents the cell centered on
            // it, [pos − dx/2, pos + dx/2): without the half-cell centering a
            // symmetric mask would image asymmetrically.
            let first = ((lo - x0) / dx + 0.5).floor().max(0.0) as usize;
            let last = ((((hi - x0) / dx + 0.5).ceil() as usize) + 1).min(n);
            for (k, sample) in samples.iter_mut().enumerate().take(last).skip(first) {
                let cell_lo = x0 + (k as f64 - 0.5) * dx;
                let cell_hi = cell_lo + dx;
                let covered = (hi.min(cell_hi) - lo.max(cell_lo)).max(0.0);
                *sample = (*sample - covered / dx).max(0.0);
            }
        }
        Ok(MaskCutline { x0, dx, samples })
    }

    /// Window start coordinate.
    #[must_use]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Sample pitch in nanometres.
    #[must_use]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Window length in nanometres.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.dx * self.samples.len() as f64
    }

    /// The transmission samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The transmission at an arbitrary coordinate (nearest sample).
    ///
    /// # Panics
    ///
    /// Panics if `x` lies outside the window.
    #[must_use]
    pub fn transmission_at(&self, x: f64) -> f64 {
        let idx = ((x - self.x0) / self.dx).round() as isize;
        assert!(
            idx >= 0 && (idx as usize) < self.samples.len(),
            "x = {x} outside mask window"
        );
        self.samples[idx as usize]
    }

    /// The coordinate of sample `k`.
    #[must_use]
    pub fn position(&self, k: usize) -> f64 {
        self.x0 + k as f64 * self.dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_mask_is_all_ones() {
        let m = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[]).unwrap();
        assert!(m.samples().iter().all(|&t| t == 1.0));
        assert_eq!(m.samples().len(), 512);
        assert_eq!(m.dx(), 2.0);
    }

    #[test]
    fn chrome_line_zeroes_covered_samples() {
        let m = MaskCutline::from_lines(0.0, 1024.0, 2.0, &[(100.0, 200.0)]).unwrap();
        assert_eq!(m.transmission_at(150.0), 0.0);
        assert_eq!(m.transmission_at(50.0), 1.0);
        assert_eq!(m.transmission_at(250.0), 1.0);
        // Average transmission accounts for the 100 nm of chrome.
        let mean: f64 = m.samples().iter().sum::<f64>() / m.samples().len() as f64;
        assert!((mean - (1.0 - 100.0 / 1024.0)).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_is_fractional() {
        // Chrome from 2.0 to 5.0 on a 2 nm grid with cells centered on the
        // samples: cell 1 = [1,3) half covered, cell 2 = [3,5) fully
        // covered, cell 3 = [5,7) untouched (edge exactly on the boundary).
        let m = MaskCutline::from_lines(0.0, 8.0, 2.0, &[(2.0, 5.0)]).unwrap();
        assert!((m.samples()[1] - 0.5).abs() < 1e-12);
        assert!(m.samples()[2].abs() < 1e-12);
        assert_eq!(m.samples()[3], 1.0);
        // Total chrome area is conserved by area weighting.
        let opaque: f64 = m.samples().iter().map(|t| (1.0 - t) * m.dx()).sum();
        assert!((opaque - 3.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_line_samples_symmetrically() {
        let m = MaskCutline::from_lines(-64.0, 128.0, 2.0, &[(-45.0, 45.0)]).unwrap();
        let n = m.samples().len();
        // Sample at +x and -x (k and n - k relative to the center index).
        let center = (0.0 - m.x0()) / m.dx();
        let center = center.round() as usize;
        for off in 1..n / 4 {
            let a = m.samples()[center - off];
            let b = m.samples()[center + off];
            assert!(
                (a - b).abs() < 1e-12,
                "asymmetry at offset {off}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn overlapping_lines_clamp_at_opaque() {
        let m = MaskCutline::from_lines(0.0, 64.0, 2.0, &[(10.0, 30.0), (20.0, 40.0)]).unwrap();
        assert_eq!(m.transmission_at(25.0), 0.0);
    }

    #[test]
    fn sample_count_is_pow2_even_for_odd_windows() {
        let m = MaskCutline::from_lines(-500.0, 1000.0, 3.0, &[]).unwrap();
        assert!(m.samples().len().is_power_of_two());
        assert!(m.dx() <= 3.0);
        assert!((m.length() - 1000.0).abs() < 1e-9);
        assert_eq!(m.x0(), -500.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(MaskCutline::from_lines(0.0, 0.0, 2.0, &[]).is_err());
        assert!(MaskCutline::from_lines(0.0, 100.0, -1.0, &[]).is_err());
        assert!(MaskCutline::from_lines(0.0, 100.0, 2.0, &[(30.0, 20.0)]).is_err());
        assert!(MaskCutline::from_lines(0.0, 100.0, 2.0, &[(90.0, 120.0)]).is_err());
    }

    #[test]
    #[should_panic(expected = "outside mask window")]
    fn transmission_query_outside_window_panics() {
        let m = MaskCutline::from_lines(0.0, 64.0, 2.0, &[]).unwrap();
        let _ = m.transmission_at(100.0);
    }
}
