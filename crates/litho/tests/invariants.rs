//! Physical invariants of the imaging engine, property-tested over random
//! mask patterns.

use proptest::prelude::*;

use svt_litho::{MaskCutline, Process};

/// Random non-overlapping chrome lines inside a safe window.
fn arb_lines() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (
        prop::collection::vec((40.0f64..140.0, 80.0f64..600.0), 1..7),
        -800.0f64..-400.0,
    )
        .prop_map(|(segments, start)| {
            let mut lines = Vec::new();
            let mut x = start;
            for (w, s) in segments {
                lines.push((x, x + w));
                x += w + s;
            }
            lines
        })
        .prop_filter("stay inside the window", |lines| {
            lines.last().map(|&(_, hi)| hi < 1500.0).unwrap_or(false)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aerial intensity is non-negative and bounded (partial coherence can
    /// ring above the clear-field level, but only modestly).
    #[test]
    fn intensity_is_bounded(lines in arb_lines(), defocus in -300.0f64..300.0) {
        let sim = Process::nm90().simulator();
        let mask = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &lines).unwrap();
        let image = sim.aerial_image(&mask, defocus);
        for &v in image.samples() {
            prop_assert!(v >= -1e-9, "negative intensity {v}");
            prop_assert!(v < 2.0, "implausible intensity {v}");
        }
    }

    /// Mirroring the mask mirrors the image.
    #[test]
    fn imaging_commutes_with_mirroring(lines in arb_lines()) {
        let sim = Process::nm90().simulator();
        let mirrored: Vec<(f64, f64)> = lines.iter().map(|&(lo, hi)| (-hi, -lo)).collect();
        let mask_a = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &lines).unwrap();
        let mask_b = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &mirrored).unwrap();
        let img_a = sim.aerial_image(&mask_a, 120.0);
        let img_b = sim.aerial_image(&mask_b, 120.0);
        for x in [-700.0, -300.0, -50.0, 0.0, 80.0, 400.0] {
            let a = img_a.intensity_at(x).unwrap();
            let b = img_b.intensity_at(-x).unwrap();
            prop_assert!((a - b).abs() < 1e-6, "mirror mismatch at {x}: {a} vs {b}");
        }
    }

    /// Defocus is symmetric for an aberration-free pupil: ±z give the same
    /// image.
    #[test]
    fn defocus_is_even(lines in arb_lines(), z in 0.0f64..350.0) {
        let sim = Process::nm90().simulator();
        let mask = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &lines).unwrap();
        let plus = sim.aerial_image(&mask, z);
        let minus = sim.aerial_image(&mask, -z);
        for x in [-500.0, 0.0, 250.0] {
            let a = plus.intensity_at(x).unwrap();
            let b = minus.intensity_at(x).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Adding chrome anywhere never increases the total transmitted energy.
    #[test]
    fn chrome_only_absorbs(lines in arb_lines()) {
        let sim = Process::nm90().simulator();
        let empty = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &[]).unwrap();
        let with_chrome = MaskCutline::from_lines(-2048.0, 4096.0, 4.0, &lines).unwrap();
        let e = |m: &MaskCutline| -> f64 {
            sim.aerial_image(m, 0.0).samples().iter().sum()
        };
        prop_assert!(e(&with_chrome) < e(&empty));
    }
}
