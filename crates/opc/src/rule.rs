use serde::{Deserialize, Serialize};

use svt_litho::{LithoError, LithoSimulator};

use crate::{CutlinePattern, OpcError};

/// Rule-based OPC: a precomputed bias lookup keyed by neighbor-spacing
/// bins.
///
/// The pre-model-OPC technique: characterize the printing bias of a gate
/// as a function of its (left, right) spacing once, then correct layouts
/// by table lookup with no simulation in the loop. Fast and simple, but it
/// ignores second neighbors and asymmetric coupling — the accuracy gap to
/// [`crate::ModelOpc`] is quantified in the OPC benches.
///
/// # Examples
///
/// ```
/// use svt_litho::Process;
/// use svt_opc::{CutlinePattern, OpcLine, RuleOpc};
///
/// let sim = Process::nm90().simulator();
/// let rules = RuleOpc::characterize(&sim, 90.0, &[150.0, 250.0, 400.0, 700.0])?;
/// let mut pattern = CutlinePattern::new(-2048.0, 4096.0);
/// pattern.push(OpcLine::gate(0.0, 90.0));
/// rules.correct(&mut pattern);
/// let corrected = pattern.lines()[0].mask_width;
/// assert!(corrected != 90.0, "an isolated gate needs bias");
/// # Ok::<(), svt_opc::OpcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleOpc {
    drawn_cd_nm: f64,
    /// Spacing bin edges, ascending; the last bin extends to infinity.
    spacings_nm: Vec<f64>,
    /// `bias[i][j]`: mask bias (nm, added to the drawn width) for left
    /// spacing bin `i` and right spacing bin `j`.
    bias_nm: Vec<Vec<f64>>,
}

impl RuleOpc {
    /// Characterizes the bias table by simulation: for each spacing pair,
    /// find the symmetric mask bias that prints the drawn CD (secant
    /// iteration against the given model).
    ///
    /// # Errors
    ///
    /// Returns [`OpcError::InvalidPattern`] for a degenerate spacing grid
    /// and propagates simulation failures.
    pub fn characterize(
        model: &LithoSimulator,
        drawn_cd_nm: f64,
        spacings_nm: &[f64],
    ) -> Result<RuleOpc, OpcError> {
        if spacings_nm.len() < 2 || spacings_nm.windows(2).any(|w| w[0] >= w[1]) {
            return Err(OpcError::InvalidPattern {
                reason: "rule table needs at least two increasing spacings".into(),
            });
        }
        let mut bias = Vec::with_capacity(spacings_nm.len());
        for &left in spacings_nm {
            let mut row = Vec::with_capacity(spacings_nm.len());
            for &right in spacings_nm {
                row.push(Self::solve_bias(model, drawn_cd_nm, left, right)?);
            }
            bias.push(row);
        }
        Ok(RuleOpc {
            drawn_cd_nm,
            spacings_nm: spacings_nm.to_vec(),
            bias_nm: bias,
        })
    }

    /// Finds the symmetric mask bias printing `drawn` between neighbors at
    /// the given spacings (secant iteration, ~6 sims).
    fn solve_bias(
        model: &LithoSimulator,
        drawn: f64,
        left: f64,
        right: f64,
    ) -> Result<f64, OpcError> {
        let print = |bias: f64| -> Result<f64, LithoError> {
            let w = drawn + bias;
            model.print_with_neighbors(w, Some(left + drawn - w), Some(right + drawn - w), 0.0, 1.0)
        };
        let mut b0 = 0.0;
        let mut f0 = print(b0)? - drawn;
        let mut b1 = -f0.signum() * 4.0;
        for _ in 0..8 {
            let f1 = print(b1)? - drawn;
            if f1.abs() < 0.05 || (f1 - f0).abs() < 1e-9 {
                return Ok(b1);
            }
            let b2 = b1 - f1 * (b1 - b0) / (f1 - f0);
            b0 = b1;
            f0 = f1;
            b1 = b2.clamp(-40.0, 40.0);
        }
        Ok(b1)
    }

    /// The drawn CD the table was characterized for.
    #[must_use]
    pub fn drawn_cd_nm(&self) -> f64 {
        self.drawn_cd_nm
    }

    /// The bias for a gate with the given neighbor spacings (`None` = no
    /// neighbor; uses the widest bin).
    #[must_use]
    pub fn bias_for(&self, left_nm: Option<f64>, right_nm: Option<f64>) -> f64 {
        let bin = |s: Option<f64>| -> usize {
            match s {
                None => self.spacings_nm.len() - 1,
                Some(v) => {
                    // The bin whose characterized spacing is nearest.
                    self.spacings_nm
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| (*a - v).abs().total_cmp(&(*b - v).abs()))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                }
            }
        };
        self.bias_nm[bin(left_nm)][bin(right_nm)]
    }

    /// Applies the rule table to every gate of a pattern (dummies and
    /// assists untouched), returning the number of gates biased.
    pub fn correct(&self, pattern: &mut CutlinePattern) -> usize {
        let gates = pattern.gate_indices();
        let mut corrected = 0;
        for &i in &gates {
            let (left, right) = pattern.neighbor_spaces(i);
            let bias = self.bias_for(left, right);
            let line = pattern.lines()[i];
            pattern.lines_mut()[i].mask_width = (line.target_cd + bias).max(10.0);
            corrected += 1;
        }
        corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpcLine;
    use svt_litho::Process;

    fn rules() -> (LithoSimulator, RuleOpc) {
        let sim = Process::nm90().simulator();
        let table =
            RuleOpc::characterize(&sim, 90.0, &[150.0, 250.0, 400.0, 700.0]).expect("builds");
        (sim, table)
    }

    #[test]
    fn characterized_biases_print_to_size_in_their_own_context() {
        let (sim, table) = rules();
        for (left, right) in [(150.0, 150.0), (400.0, 700.0), (700.0, 700.0)] {
            let bias = table.bias_for(Some(left), Some(right));
            let w = 90.0 + bias;
            let cd = sim
                .print_with_neighbors(w, Some(left + 90.0 - w), Some(right + 90.0 - w), 0.0, 1.0)
                .expect("prints");
            assert!(
                (cd - 90.0).abs() < 1.0,
                "rule bias {bias:.2} at ({left},{right}) prints {cd:.2}"
            );
        }
    }

    #[test]
    fn bias_depends_on_context() {
        let (_, table) = rules();
        let dense = table.bias_for(Some(150.0), Some(150.0));
        let iso = table.bias_for(None, None);
        assert!(
            (dense - iso).abs() > 0.5,
            "dense {dense:.2} vs iso {iso:.2} bias must differ"
        );
    }

    #[test]
    fn correct_biases_only_gates() {
        let (_, table) = rules();
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        p.push(OpcLine::gate(0.0, 90.0));
        p.push(OpcLine::dummy(-300.0, 90.0));
        let n = table.correct(&mut p);
        assert_eq!(n, 1);
        let dummy = p.lines().iter().find(|l| !l.correctable()).expect("dummy");
        assert_eq!(dummy.mask_width, 90.0);
    }

    #[test]
    fn rule_opc_is_less_accurate_than_model_opc_off_grid() {
        use crate::{audit_pattern, EpeStats, ModelOpc, OpcOptions};
        let (sim, table) = rules();
        // A pattern whose spacings fall between the characterized bins and
        // whose second neighbors matter.
        let mk = || {
            let mut p = CutlinePattern::new(-2048.0, 4096.0);
            for c in [-520.0, -200.0, 90.0, 640.0] {
                p.push(OpcLine::gate(c, 90.0));
            }
            p
        };
        let mut ruled = mk();
        table.correct(&mut ruled);
        let mut modeled = mk();
        ModelOpc::new(sim.clone(), OpcOptions::default())
            .correct(&mut modeled)
            .expect("model OPC succeeds");
        let rms = |p: &CutlinePattern| {
            EpeStats::from_audits(&audit_pattern(&sim, p, 0.0, 1.0).expect("audit")).rms_nm
        };
        assert!(
            rms(&modeled) < rms(&ruled),
            "model OPC should beat rules: {:.2} vs {:.2}",
            rms(&modeled),
            rms(&ruled)
        );
    }

    #[test]
    fn degenerate_grids_are_rejected() {
        let sim = Process::nm90().simulator();
        assert!(RuleOpc::characterize(&sim, 90.0, &[300.0]).is_err());
        assert!(RuleOpc::characterize(&sim, 90.0, &[400.0, 300.0]).is_err());
    }
}
