//! Optical proximity correction for the `svt` workspace.
//!
//! The DAC 2004 methodology depends on three OPC capabilities, all rebuilt
//! here on top of the [`svt_litho`] imaging engine:
//!
//! * **Model-based OPC** ([`ModelOpc`]) — iterative symmetric edge biasing
//!   of gate lines against a lithography model, with the mask-rule
//!   constraints (mask grid, minimum width, minimum space) and iteration
//!   caps that leave the *residual systematic through-pitch error* the
//!   paper's Fig. 7 measures. Production-style flows drive the correction
//!   with a deliberately cheaper model than sign-off simulation
//!   (fewer source samples, coarser grid), exactly the model-fidelity gap
//!   the paper lists among the reasons "OPC … is never able to correct the
//!   design perfectly".
//! * **Library-based OPC** ([`LibraryOpc`]) — per-cell-master correction in
//!   a dummy-poly placement environment (paper Fig. 3, after reference
//!   ref. 7), the fast alternative Table 1 compares against full-chip OPC.
//! * **SRAF insertion** ([`insert_srafs`]) — sub-resolution assist features
//!   for wide spaces (paper §2 and the §6 future-work extension), with
//!   printability checking.
//!
//! [`audit_pattern`] closes the loop: it measures every corrected gate with
//! the sign-off simulator and reports the error statistics used by the
//! Table 1 / Fig. 7 experiments.
//!
//! # Examples
//!
//! ```
//! use svt_litho::Process;
//! use svt_opc::{CutlinePattern, ModelOpc, OpcLine, OpcOptions};
//!
//! let process = Process::nm90();
//! let sim = process.simulator();
//! // Three 90 nm gates at mixed spacings.
//! let mut pattern = CutlinePattern::new(-2048.0, 4096.0);
//! for center in [-400.0, 0.0, 240.0] {
//!     pattern.push(OpcLine::gate(center, 90.0));
//! }
//! let opc = ModelOpc::new(sim.clone(), OpcOptions::default());
//! let report = opc.correct(&mut pattern)?;
//! assert!(report.converged, "3-line pattern should converge");
//! # Ok::<(), svt_opc::OpcError>(())
//! ```

mod error;
mod library;
mod model;
mod pattern;
mod rule;
mod sraf;
mod verify;

pub use error::OpcError;
pub use library::{CorrectedCutline, LibraryOpc};
pub use model::{ModelOpc, OpcOptions, OpcReport};
pub use pattern::{CutlinePattern, LineKind, OpcLine};
pub use rule::RuleOpc;
pub use sraf::{insert_srafs, srafs_print, SrafOptions};
pub use verify::{audit_pattern, error_histogram, EpeStats, HistogramBin, LineAudit};
