use serde::{Deserialize, Serialize};

use svt_litho::{LithoError, LithoSimulator, MaskCutline};

use crate::{CutlinePattern, LineKind, OpcError, OpcLine};

/// Sub-resolution assist feature insertion rules.
///
/// SRAFs (scatter bars) surround isolated features with sub-resolution
/// lines so the isolated feature images more like a dense one, pulling its
/// Bossung behaviour toward the dense smile (paper §2: assist features
/// mitigate, but never remove, the through-focus dichotomy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrafOptions {
    /// Minimum clear space (nm) before an assist is inserted.
    pub min_space_nm: f64,
    /// Assist bar width (must be sub-resolution).
    pub bar_width_nm: f64,
    /// Edge-to-edge distance from the main feature to the assist bar.
    pub bar_offset_nm: f64,
}

impl Default for SrafOptions {
    fn default() -> SrafOptions {
        SrafOptions {
            min_space_nm: 450.0,
            bar_width_nm: 30.0,
            bar_offset_nm: 140.0,
        }
    }
}

/// Inserts assist bars into every qualifying space of the pattern,
/// returning how many were added.
///
/// A bar is placed beside each gate edge that faces a space of at least
/// `min_space_nm` (including the open space at the window ends, with a
/// margin). Bars are never placed closer than `bar_offset_nm` to any
/// feature.
pub fn insert_srafs(pattern: &mut CutlinePattern, options: SrafOptions) -> usize {
    let lines: Vec<OpcLine> = pattern.lines().to_vec();
    let mut added = 0;
    for (i, line) in lines.iter().enumerate() {
        if line.kind == LineKind::Assist {
            continue;
        }
        let (lo, hi) = line.mask_span();
        // Space to the left.
        let left_space = if i == 0 {
            lo - pattern.x0()
        } else {
            lo - lines[i - 1].mask_span().1
        };
        // Only the right-hand owner of a shared space inserts, to avoid
        // double bars; the leftmost line also owns its left space.
        if left_space >= options.min_space_nm {
            let center = lo - options.bar_offset_nm - options.bar_width_nm / 2.0;
            pattern.push(OpcLine::assist(center, options.bar_width_nm));
            added += 1;
        }
        let right_space = if i + 1 == lines.len() {
            pattern.x0() + pattern.length() - hi
        } else {
            lines[i + 1].mask_span().0 - hi
        };
        // Interior right spaces are someone else's left space unless this
        // is the last line.
        if i + 1 == lines.len() && right_space >= options.min_space_nm {
            let center = hi + options.bar_offset_nm + options.bar_width_nm / 2.0;
            pattern.push(OpcLine::assist(center, options.bar_width_nm));
            added += 1;
        }
    }
    added
}

/// Checks whether any assist feature of the pattern prints (develops a
/// resist feature) at the given defocus and dose. A sound SRAF recipe
/// returns `false` across the process window.
///
/// # Errors
///
/// Returns [`OpcError::Litho`] if the simulation itself fails.
pub fn srafs_print(
    sim: &LithoSimulator,
    pattern: &CutlinePattern,
    defocus_nm: f64,
    dose: f64,
) -> Result<bool, OpcError> {
    let mask = MaskCutline::from_lines(
        pattern.x0(),
        pattern.length(),
        sim.config().grid_nm(),
        &pattern.chrome(),
    )?;
    let image = sim.aerial_image(&mask, defocus_nm);
    for line in pattern.lines() {
        if line.kind != LineKind::Assist {
            continue;
        }
        match svt_litho::measure_cd_at(&image, line.center, sim.resist(), dose) {
            Ok(printed) => {
                // A resist blob narrower than the etch bias disappears in
                // etch; anything wider counts as printing.
                if printed.cd() > sim.etch_bias_nm() {
                    return Ok(true);
                }
            }
            Err(LithoError::FeatureNotPrinted { .. }) => continue,
            // The assist sits inside the main feature's resist region —
            // that counts as printing (it merged with the feature).
            Err(LithoError::EdgeOutsideWindow { .. }) => return Ok(true),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_litho::Process;

    fn iso_gate_pattern() -> CutlinePattern {
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        p.push(OpcLine::gate(0.0, 90.0));
        p
    }

    #[test]
    fn isolated_gate_gets_two_bars() {
        let mut p = iso_gate_pattern();
        let added = insert_srafs(&mut p, SrafOptions::default());
        assert_eq!(added, 2);
        let assists: Vec<&OpcLine> = p
            .lines()
            .iter()
            .filter(|l| l.kind == LineKind::Assist)
            .collect();
        assert_eq!(assists.len(), 2);
        // Bars flank the gate symmetrically.
        let sum: f64 = assists.iter().map(|l| l.center).sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn dense_pattern_gets_no_bars() {
        let mut p = CutlinePattern::new(-600.0, 1200.0);
        p.push(OpcLine::gate(-240.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        p.push(OpcLine::gate(240.0, 90.0));
        // Window ends are close, interior spaces are 150 nm.
        let added = insert_srafs(&mut p, SrafOptions::default());
        assert_eq!(added, 0);
    }

    #[test]
    fn shared_spaces_get_exactly_one_bar() {
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        p.push(OpcLine::gate(-400.0, 90.0));
        p.push(OpcLine::gate(400.0, 90.0)); // 710 nm space between them
        let added = insert_srafs(&mut p, SrafOptions::default());
        // left window space, shared middle space, right window space = 3.
        assert_eq!(added, 3);
    }

    #[test]
    fn default_bars_do_not_print() {
        let sim = Process::nm90().simulator();
        let mut p = iso_gate_pattern();
        insert_srafs(&mut p, SrafOptions::default());
        for z in [0.0, 150.0, 300.0] {
            assert!(
                !srafs_print(&sim, &p, z, 1.0).unwrap(),
                "30 nm bars printed at defocus {z}"
            );
        }
    }

    #[test]
    fn oversized_bars_do_print() {
        let sim = Process::nm90().simulator();
        let mut p = iso_gate_pattern();
        insert_srafs(
            &mut p,
            SrafOptions {
                bar_width_nm: 120.0,
                bar_offset_nm: 300.0,
                ..SrafOptions::default()
            },
        );
        assert!(
            srafs_print(&sim, &p, 0.0, 1.0).unwrap(),
            "120 nm bars must print — they are above resolution"
        );
    }

    #[test]
    fn srafs_reduce_iso_focus_sensitivity() {
        let sim = Process::nm90().simulator();
        let bare = iso_gate_pattern();
        let mut assisted = iso_gate_pattern();
        insert_srafs(&mut assisted, SrafOptions::default());

        let cd = |p: &CutlinePattern, z: f64| {
            sim.print_device_cd(p.x0(), p.length(), &p.chrome(), 0.0, z, 1.0)
                .unwrap()
        };
        let bare_delta = (cd(&bare, 250.0) - cd(&bare, 0.0)).abs();
        let assisted_delta = (cd(&assisted, 250.0) - cd(&assisted, 0.0)).abs();
        assert!(
            assisted_delta < bare_delta,
            "SRAFs should stabilize focus: bare Δ{bare_delta:.2} vs assisted Δ{assisted_delta:.2}"
        );
    }
}
