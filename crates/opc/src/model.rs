use serde::{Deserialize, Serialize};

use svt_exec::qf64;
use svt_litho::{LithoError, LithoSimulator, MaskCutline};

use crate::{CutlinePattern, OpcError};

/// Mask-rule and convergence knobs of the model-based OPC engine.
///
/// The constraints are deliberately realistic: mask writers quantize edges
/// (`mask_grid_nm`), masks have minimum feature and space rules, and
/// production runtimes cap the sweep count. These are the exact mechanisms
/// the paper cites for why post-OPC printing still carries systematic
/// through-pitch error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpcOptions {
    /// Maximum Gauss–Seidel sweeps over the pattern.
    pub max_sweeps: usize,
    /// Fraction of the measured CD error applied per sweep (stabilizes the
    /// coupled-neighbor iteration).
    pub damping: f64,
    /// Mask edge quantization grid in nanometres (each edge snaps to this
    /// grid, so widths move in `2 × mask_grid_nm` steps).
    pub mask_grid_nm: f64,
    /// Minimum manufacturable mask line width.
    pub min_mask_width_nm: f64,
    /// Minimum manufacturable mask space.
    pub min_mask_space_nm: f64,
    /// Convergence tolerance on the worst gate CD error.
    pub tolerance_nm: f64,
}

impl Default for OpcOptions {
    fn default() -> OpcOptions {
        OpcOptions {
            max_sweeps: 8,
            damping: 0.7,
            mask_grid_nm: 1.0,
            min_mask_width_nm: 40.0,
            min_mask_space_nm: 60.0,
            tolerance_nm: 1.5,
        }
    }
}

/// Outcome of one OPC run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpcReport {
    /// Sweeps actually executed.
    pub sweeps: usize,
    /// Worst remaining gate CD error (nm) as seen by the *correction*
    /// model — sign-off audits may still see more.
    pub max_error_nm: f64,
    /// Whether the worst error fell below the tolerance.
    pub converged: bool,
}

/// Model-based OPC: iterative symmetric edge biasing of gate lines.
///
/// Each sweep simulates the full pattern once with the correction model and
/// updates every gate's mask width by the damped CD error, subject to the
/// mask rules. Gates interact optically, so the sweep is repeated until the
/// worst error converges or the sweep cap is hit.
///
/// The *correction model* is typically cheaper than the sign-off simulator
/// (see [`ModelOpc::with_production_model`]); the residual between the two
/// is the systematic post-OPC error the timing methodology then accounts
/// for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOpc {
    model: LithoSimulator,
    options: OpcOptions,
}

impl ModelOpc {
    /// Creates an OPC engine correcting against the given model.
    #[must_use]
    pub fn new(model: LithoSimulator, options: OpcOptions) -> ModelOpc {
        ModelOpc { model, options }
    }

    /// Creates an engine with a miscalibrated "production" correction model
    /// derived from the sign-off simulator: the annular source is slightly
    /// off (0.575/0.825 instead of the true 0.55/0.85) and the resist
    /// threshold carries a +0.008 calibration error. The resulting smooth,
    /// pitch-systematic model-fidelity gap (a few nm) is exactly the
    /// mechanism the paper cites for residual post-OPC error ("model
    /// fidelity … and idiosyncrasies of the OPC algorithm").
    ///
    /// # Panics
    ///
    /// Never panics: the perturbed parameters are valid by construction.
    #[must_use]
    pub fn with_production_model(signoff: &LithoSimulator, options: OpcOptions) -> ModelOpc {
        let miscalibrated_source = svt_litho::Illumination::annular(0.575, 0.825)
            .expect("production-model annulus is valid");
        let config = signoff.config().clone().with_source(miscalibrated_source);
        let threshold = (signoff.resist().threshold() + 0.008).min(0.95);
        let model = LithoSimulator::new(config)
            .with_resist(svt_litho::ThresholdResist::new(threshold))
            .with_etch_bias(signoff.etch_bias_nm());
        ModelOpc::new(model, options)
    }

    /// The correction options.
    #[must_use]
    pub fn options(&self) -> OpcOptions {
        self.options
    }

    /// The correction model simulator.
    #[must_use]
    pub fn model(&self) -> &LithoSimulator {
        &self.model
    }

    /// Exact fingerprint of the correction model and every option that
    /// influences a corrected mask, for embedding in downstream memo-cache
    /// keys (engines with any differing parameter never share an entry).
    #[must_use]
    pub fn identity(&self) -> [u64; 15] {
        let mut id = [0u64; 15];
        id[..9].copy_from_slice(&self.model.identity());
        id[9] = self.options.max_sweeps as u64;
        id[10] = qf64(self.options.damping);
        id[11] = qf64(self.options.mask_grid_nm);
        id[12] = qf64(self.options.min_mask_width_nm);
        id[13] = qf64(self.options.min_mask_space_nm);
        id[14] = qf64(self.options.tolerance_nm);
        id
    }

    /// Runs model-based OPC on the pattern in place at nominal focus and
    /// dose, returning the convergence report.
    ///
    /// # Errors
    ///
    /// * [`OpcError::InvalidPattern`] if the input violates the mask rules
    ///   before any correction.
    /// * [`OpcError::UncorrectableLine`] if a gate cannot be brought onto a
    ///   printable operating point.
    /// * [`OpcError::Litho`] on simulator failures.
    pub fn correct(&self, pattern: &mut CutlinePattern) -> Result<OpcReport, OpcError> {
        let _span = svt_obs::span("opc.correct");
        pattern.validate(self.options.min_mask_space_nm)?;
        let gates = pattern.gate_indices();
        if gates.is_empty() {
            return Ok(OpcReport {
                sweeps: 0,
                max_error_nm: 0.0,
                converged: true,
            });
        }

        let mut max_error = f64::INFINITY;
        let mut sweeps = 0;
        for _ in 0..self.options.max_sweeps {
            sweeps += 1;
            let image = self.image_of(pattern, 0.0)?;
            max_error = 0.0f64;
            for &i in &gates {
                let line = pattern.lines()[i];
                let printed =
                    svt_litho::measure_cd_at(&image, line.center, self.model.resist(), 1.0)
                        .and_then(|p| self.model.device_cd(p));
                let cd = match printed {
                    Ok(cd) => cd,
                    Err(LithoError::FeatureNotPrinted { .. }) => {
                        // Washed away: grow the mask aggressively and retry
                        // next sweep rather than failing outright.
                        self.apply_width(pattern, i, line.mask_width + 10.0);
                        max_error = max_error.max(line.target_cd);
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let error = line.target_cd - cd;
                max_error = max_error.max(error.abs());
                let new_width = line.mask_width + self.options.damping * error;
                self.apply_width(pattern, i, new_width);
            }
            if max_error < self.options.tolerance_nm {
                break;
            }
        }

        // A gate still failing to print after all sweeps is uncorrectable.
        let image = self.image_of(pattern, 0.0)?;
        for &i in &gates {
            let line = pattern.lines()[i];
            let printed = svt_litho::measure_cd_at(&image, line.center, self.model.resist(), 1.0)
                .and_then(|p| self.model.device_cd(p));
            if matches!(printed, Err(LithoError::FeatureNotPrinted { .. })) {
                return Err(OpcError::UncorrectableLine {
                    center: line.center,
                });
            }
        }

        Ok(OpcReport {
            sweeps,
            max_error_nm: max_error,
            converged: max_error < self.options.tolerance_nm,
        })
    }

    /// Applies a new mask width to line `i` subject to the mask rules:
    /// width snapped to the mask grid, clamped to the minimum width, and
    /// clamped so the spaces to both neighbors stay legal.
    fn apply_width(&self, pattern: &mut CutlinePattern, i: usize, new_width: f64) {
        let opts = self.options;
        // Neighbor-imposed upper bound on the width.
        let max_width = {
            let line = pattern.lines()[i];
            let (l, r) = pattern.neighbor_spaces(i);
            let slack_l = l
                .map(|s| s - opts.min_mask_space_nm)
                .unwrap_or(f64::INFINITY);
            let slack_r = r
                .map(|s| s - opts.min_mask_space_nm)
                .unwrap_or(f64::INFINITY);
            // Width grows symmetrically: each side consumes half the growth.
            let max_growth = 2.0 * slack_l.min(slack_r).max(0.0);
            line.mask_width + max_growth
        };
        let snapped = (new_width / (2.0 * opts.mask_grid_nm)).round() * 2.0 * opts.mask_grid_nm;
        // Snap the bound *down* to the grid so the clamp cannot un-snap.
        let max_snapped = (max_width / (2.0 * opts.mask_grid_nm)).floor() * 2.0 * opts.mask_grid_nm;
        let clamped = snapped.clamp(
            opts.min_mask_width_nm,
            max_snapped.max(opts.min_mask_width_nm),
        );
        pattern.lines_mut()[i].mask_width = clamped;
    }

    /// Simulates the pattern's current mask with the correction model.
    fn image_of(
        &self,
        pattern: &CutlinePattern,
        defocus_nm: f64,
    ) -> Result<svt_litho::AerialImage, OpcError> {
        let mask = MaskCutline::from_lines(
            pattern.x0(),
            pattern.length(),
            self.model.config().grid_nm(),
            &pattern.chrome(),
        )?;
        Ok(self.model.aerial_image(&mask, defocus_nm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpcLine;
    use svt_litho::Process;

    fn signoff() -> LithoSimulator {
        Process::nm90().simulator()
    }

    fn pattern_of(centers: &[f64]) -> CutlinePattern {
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        for &c in centers {
            p.push(OpcLine::gate(c, 90.0));
        }
        p
    }

    fn printed_cd(sim: &LithoSimulator, pattern: &CutlinePattern, center: f64) -> f64 {
        sim.print_device_cd(
            pattern.x0(),
            pattern.length(),
            &pattern.chrome(),
            center,
            0.0,
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn single_iso_gate_converges_to_target() {
        let sim = signoff();
        let opc = ModelOpc::new(sim.clone(), OpcOptions::default());
        let mut p = pattern_of(&[0.0]);
        let before = printed_cd(&sim, &p, 0.0);
        let report = opc.correct(&mut p).unwrap();
        let after = printed_cd(&sim, &p, 0.0);
        assert!(report.converged, "report: {report:?}");
        assert!(
            (after - 90.0).abs() < (before - 90.0).abs() + 0.3,
            "OPC made printing worse: {before} -> {after}"
        );
        assert!((after - 90.0).abs() < 2.0, "post-OPC CD {after}");
    }

    #[test]
    fn coupled_gates_converge_jointly() {
        let sim = signoff();
        let opc = ModelOpc::new(sim.clone(), OpcOptions::default());
        let mut p = pattern_of(&[-240.0, 0.0, 240.0, 540.0]);
        let report = opc.correct(&mut p).unwrap();
        assert!(report.converged, "report: {report:?}");
        for c in [-240.0, 0.0, 240.0, 540.0] {
            let cd = printed_cd(&sim, &p, c);
            assert!((cd - 90.0).abs() < 2.0, "gate at {c} prints {cd}");
        }
    }

    #[test]
    fn production_model_leaves_systematic_residual() {
        let sim = signoff();
        let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
        let mut p = pattern_of(&[0.0, 300.0, 1200.0]);
        opc.correct(&mut p).unwrap();
        // Sign-off sees residual error because the correction model was
        // cheaper; it should be nonzero but bounded.
        let worst = [0.0, 300.0, 1200.0]
            .iter()
            .map(|&c| (printed_cd(&sim, &p, c) - 90.0).abs())
            .fold(0.0, f64::max);
        assert!(worst > 0.05, "degraded model should leave residual");
        assert!(worst < 12.0, "residual {worst} too large to be credible");
    }

    #[test]
    fn mask_rules_quantize_and_bound_widths() {
        let sim = signoff();
        let opts = OpcOptions {
            mask_grid_nm: 2.0,
            ..OpcOptions::default()
        };
        let opc = ModelOpc::new(sim, opts);
        let mut p = pattern_of(&[0.0, 250.0]);
        opc.correct(&mut p).unwrap();
        for l in p.lines() {
            let w = l.mask_width;
            assert!(w >= opts.min_mask_width_nm);
            let q = w / (2.0 * opts.mask_grid_nm);
            assert!(
                (q - q.round()).abs() < 1e-9,
                "width {w} not on the mask grid"
            );
        }
        // Spaces stay legal.
        assert!(p.validate(opts.min_mask_space_nm).is_ok());
    }

    #[test]
    fn dummies_are_not_moved() {
        let sim = signoff();
        let opc = ModelOpc::new(sim, OpcOptions::default());
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        p.push(OpcLine::dummy(-300.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        opc.correct(&mut p).unwrap();
        assert_eq!(p.lines()[0].mask_width, 90.0, "dummy width changed");
        assert_ne!(p.lines()[1].mask_width, 90.0, "gate width unchanged");
    }

    #[test]
    fn empty_and_gateless_patterns_are_trivially_converged() {
        let sim = signoff();
        let opc = ModelOpc::new(sim, OpcOptions::default());
        let mut p = CutlinePattern::new(-1024.0, 2048.0);
        assert!(opc.correct(&mut p).unwrap().converged);
        p.push(OpcLine::dummy(0.0, 90.0));
        assert!(opc.correct(&mut p).unwrap().converged);
    }

    #[test]
    fn invalid_input_is_rejected_before_simulation() {
        let sim = signoff();
        let opc = ModelOpc::new(sim, OpcOptions::default());
        let mut p = pattern_of(&[0.0, 100.0]); // 10 nm space < 60 nm rule
        assert!(matches!(
            opc.correct(&mut p),
            Err(OpcError::InvalidPattern { .. })
        ));
    }
}
