use serde::{Deserialize, Serialize};

use crate::{CutlinePattern, LineKind, ModelOpc, OpcError, OpcLine, OpcReport};

/// The result of library-based OPC on one cell cutline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrectedCutline {
    /// The corrected gate lines (dummies removed), sorted by center.
    pub gates: Vec<OpcLine>,
    /// Printed device CD of each gate, measured in the dummy environment
    /// with the correction model, index-aligned with `gates`.
    pub printed_cd_nm: Vec<f64>,
    /// Convergence report of the underlying model-based run.
    pub report: OpcReport,
}

/// Library-based OPC (paper Fig. 3, after their reference 7).
///
/// Instead of correcting every placed instance, each cell *master* is
/// corrected once inside an emulated placement environment: dummy poly
/// lines flank the cell at a typical neighbor spacing. Because the optical
/// radius of influence (~600 nm) is smaller than most cells, interior
/// devices see the same environment they will see in any placement, and
/// only boundary devices carry context error — which the timing methodology
/// then handles with the through-pitch lookup table.
///
/// # Examples
///
/// ```
/// use svt_litho::Process;
/// use svt_opc::{LibraryOpc, ModelOpc, OpcOptions};
///
/// let sim = Process::nm90().simulator();
/// let opc = ModelOpc::new(sim, OpcOptions::default());
/// let lib = LibraryOpc::new(opc, 150.0, 90.0);
/// // An inverter-like cell: one 90 nm gate, cell spans [0, 600].
/// let corrected = lib.correct_cell(&[(300.0, 90.0)], 0.0, 600.0)?;
/// assert_eq!(corrected.gates.len(), 1);
/// # Ok::<(), svt_opc::OpcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryOpc {
    opc: ModelOpc,
    dummy_space_nm: f64,
    dummy_width_nm: f64,
}

impl LibraryOpc {
    /// Creates a library-OPC flow: dummies of `dummy_width_nm` are placed
    /// `dummy_space_nm` outside the cell bounds on both sides.
    ///
    /// # Panics
    ///
    /// Panics if the spacing or width is not positive.
    #[must_use]
    pub fn new(opc: ModelOpc, dummy_space_nm: f64, dummy_width_nm: f64) -> LibraryOpc {
        assert!(
            dummy_space_nm > 0.0 && dummy_width_nm > 0.0,
            "dummy geometry must be positive"
        );
        LibraryOpc {
            opc,
            dummy_space_nm,
            dummy_width_nm,
        }
    }

    /// The underlying model-based engine.
    #[must_use]
    pub fn opc(&self) -> &ModelOpc {
        &self.opc
    }

    /// Exact fingerprint of the engine and dummy environment, for embedding
    /// in downstream memo-cache keys.
    #[must_use]
    pub fn identity(&self) -> [u64; 17] {
        let mut id = [0u64; 17];
        id[..15].copy_from_slice(&self.opc.identity());
        id[15] = svt_exec::qf64(self.dummy_space_nm);
        id[16] = svt_exec::qf64(self.dummy_width_nm);
        id
    }

    /// Corrects one cell master given its gate `(center, drawn_cd)` list and
    /// its cell bounds `[cell_lo, cell_hi]` along the cutline.
    ///
    /// The returned gates are in cell-local coordinates; the dummy
    /// environment is stripped. `printed_cd_nm[i]` is the library-OPC
    /// prediction of gate `i`'s device CD — the CD used to characterize
    /// interior devices.
    ///
    /// # Errors
    ///
    /// Returns [`OpcError::InvalidPattern`] for malformed inputs, or any
    /// error of [`ModelOpc::correct`].
    pub fn correct_cell(
        &self,
        gates: &[(f64, f64)],
        cell_lo: f64,
        cell_hi: f64,
    ) -> Result<CorrectedCutline, OpcError> {
        if cell_hi <= cell_lo {
            return Err(OpcError::InvalidPattern {
                reason: format!("cell bounds [{cell_lo}, {cell_hi}] are inverted"),
            });
        }
        // Window: cell plus dummies plus clear margin past the ROI.
        let margin = 1600.0;
        let x0 = cell_lo - margin;
        let length = (cell_hi - cell_lo) + 2.0 * margin;

        let mut pattern = CutlinePattern::new(x0, length);
        for &(center, drawn) in gates {
            if center < cell_lo || center > cell_hi {
                return Err(OpcError::InvalidPattern {
                    reason: format!("gate at {center} outside cell [{cell_lo}, {cell_hi}]"),
                });
            }
            pattern.push(OpcLine::gate(center, drawn));
        }
        // Fig. 3's dummy environment: one line on each side of the cell.
        let left_dummy = cell_lo - self.dummy_space_nm - self.dummy_width_nm / 2.0;
        let right_dummy = cell_hi + self.dummy_space_nm + self.dummy_width_nm / 2.0;
        pattern.push(OpcLine::dummy(left_dummy, self.dummy_width_nm));
        pattern.push(OpcLine::dummy(right_dummy, self.dummy_width_nm));

        let report = self.opc.correct(&mut pattern)?;

        // Measure every gate in the corrected dummy environment.
        let model = self.opc.model();
        let chrome = pattern.chrome();
        let mut out_gates = Vec::new();
        let mut printed = Vec::new();
        for line in pattern.lines() {
            if line.kind != LineKind::Gate {
                continue;
            }
            let cd = model.print_device_cd(x0, length, &chrome, line.center, 0.0, 1.0)?;
            out_gates.push(*line);
            printed.push(cd);
        }
        Ok(CorrectedCutline {
            gates: out_gates,
            printed_cd_nm: printed,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpcOptions;
    use svt_litho::Process;

    fn lib() -> LibraryOpc {
        let sim = Process::nm90().simulator();
        LibraryOpc::new(ModelOpc::new(sim, OpcOptions::default()), 150.0, 90.0)
    }

    #[test]
    fn corrects_a_multi_gate_cell() {
        let l = lib();
        // NAND2-like: two gates at 300 nm pitch inside a 900 nm cell.
        let corrected = l
            .correct_cell(&[(300.0, 90.0), (600.0, 90.0)], 0.0, 900.0)
            .unwrap();
        assert_eq!(corrected.gates.len(), 2);
        assert_eq!(corrected.printed_cd_nm.len(), 2);
        for (&cd, g) in corrected.printed_cd_nm.iter().zip(&corrected.gates) {
            assert!(
                (cd - 90.0).abs() < 2.5,
                "gate at {} prints {cd} in dummy env",
                g.center
            );
        }
    }

    #[test]
    fn dummies_are_stripped_from_output() {
        let l = lib();
        let corrected = l.correct_cell(&[(300.0, 90.0)], 0.0, 600.0).unwrap();
        assert!(corrected.gates.iter().all(|g| g.kind == LineKind::Gate));
        assert_eq!(corrected.gates.len(), 1);
    }

    #[test]
    fn rejects_bad_cell_descriptions() {
        let l = lib();
        assert!(l.correct_cell(&[(300.0, 90.0)], 600.0, 0.0).is_err());
        assert!(l.correct_cell(&[(900.0, 90.0)], 0.0, 600.0).is_err());
    }

    #[test]
    #[should_panic(expected = "dummy geometry must be positive")]
    fn rejects_degenerate_dummy_geometry() {
        let sim = Process::nm90().simulator();
        let _ = LibraryOpc::new(ModelOpc::new(sim, OpcOptions::default()), 0.0, 90.0);
    }

    #[test]
    fn interior_gate_matches_its_placed_context() {
        // A gate deep inside a wide cell should print nearly identically
        // whether corrected with dummies (library OPC) or with the real
        // neighbors it will see (full-chip OPC), because both lie beyond
        // the radius of influence.
        let l = lib();
        let gates = [(700.0, 90.0), (1000.0, 90.0), (1300.0, 90.0)];
        let corrected = l.correct_cell(&gates, 0.0, 2000.0).unwrap();
        // Middle gate: its environment is entirely in-cell.
        let mid_cd = corrected.printed_cd_nm[1];
        assert!((mid_cd - 90.0).abs() < 2.0, "interior gate prints {mid_cd}");
    }
}
