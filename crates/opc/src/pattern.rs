use serde::{Deserialize, Serialize};

use crate::OpcError;

/// What a line on an OPC cutline represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineKind {
    /// A device gate: has a CD target and is corrected.
    Gate,
    /// Dummy poly emulating a neighboring cell (paper Fig. 3): images but
    /// is not corrected and has no CD target of interest.
    Dummy,
    /// A sub-resolution assist feature: images, must not print.
    Assist,
}

/// One vertical poly line on an OPC cutline.
///
/// The drawn center is fixed by the design; OPC adjusts `mask_width`
/// symmetrically about it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpcLine {
    /// Fixed line center in nanometres.
    pub center: f64,
    /// Target printed device CD in nanometres (meaningful for gates).
    pub target_cd: f64,
    /// Current mask width in nanometres.
    pub mask_width: f64,
    /// Role of the line.
    pub kind: LineKind,
}

impl OpcLine {
    /// A correctable gate with mask initialized at the drawn width.
    #[must_use]
    pub fn gate(center: f64, drawn_cd: f64) -> OpcLine {
        OpcLine {
            center,
            target_cd: drawn_cd,
            mask_width: drawn_cd,
            kind: LineKind::Gate,
        }
    }

    /// A dummy environment line.
    #[must_use]
    pub fn dummy(center: f64, width: f64) -> OpcLine {
        OpcLine {
            center,
            target_cd: width,
            mask_width: width,
            kind: LineKind::Dummy,
        }
    }

    /// An assist feature.
    #[must_use]
    pub fn assist(center: f64, width: f64) -> OpcLine {
        OpcLine {
            center,
            target_cd: 0.0,
            mask_width: width,
            kind: LineKind::Assist,
        }
    }

    /// The current mask interval `(lo, hi)`.
    #[must_use]
    pub fn mask_span(&self) -> (f64, f64) {
        (
            self.center - self.mask_width / 2.0,
            self.center + self.mask_width / 2.0,
        )
    }

    /// Whether OPC may move this line's edges.
    #[must_use]
    pub fn correctable(&self) -> bool {
        self.kind == LineKind::Gate
    }
}

/// A 1-D OPC working set: lines within a simulation window.
///
/// # Examples
///
/// ```
/// use svt_opc::{CutlinePattern, OpcLine};
///
/// let mut p = CutlinePattern::new(-1024.0, 2048.0);
/// p.push(OpcLine::gate(0.0, 90.0));
/// p.push(OpcLine::dummy(-300.0, 90.0));
/// assert_eq!(p.lines().len(), 2);
/// assert!(p.validate(60.0).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutlinePattern {
    x0: f64,
    length: f64,
    lines: Vec<OpcLine>,
}

impl CutlinePattern {
    /// Creates an empty pattern over the window `[x0, x0 + length]`.
    ///
    /// # Panics
    ///
    /// Panics if `length ≤ 0`.
    #[must_use]
    pub fn new(x0: f64, length: f64) -> CutlinePattern {
        assert!(length > 0.0, "window length must be positive");
        CutlinePattern {
            x0,
            length,
            lines: Vec::new(),
        }
    }

    /// Window start.
    #[must_use]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Window length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Adds a line, keeping lines sorted by center.
    pub fn push(&mut self, line: OpcLine) {
        let at = self.lines.partition_point(|l| l.center <= line.center);
        self.lines.insert(at, line);
    }

    /// The lines, sorted by center.
    #[must_use]
    pub fn lines(&self) -> &[OpcLine] {
        &self.lines
    }

    /// Mutable access for the correction loop.
    #[must_use]
    pub fn lines_mut(&mut self) -> &mut [OpcLine] {
        &mut self.lines
    }

    /// The chrome intervals of the current mask state, for simulation.
    #[must_use]
    pub fn chrome(&self) -> Vec<(f64, f64)> {
        self.lines.iter().map(OpcLine::mask_span).collect()
    }

    /// The indices of correctable gate lines.
    #[must_use]
    pub fn gate_indices(&self) -> Vec<usize> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.correctable())
            .map(|(i, _)| i)
            .collect()
    }

    /// The mask-edge-to-edge space to the previous/next line of line `i`
    /// (`None` when there is no neighbor).
    #[must_use]
    pub fn neighbor_spaces(&self, i: usize) -> (Option<f64>, Option<f64>) {
        let (lo, hi) = self.lines[i].mask_span();
        let left = (i > 0).then(|| lo - self.lines[i - 1].mask_span().1);
        let right = (i + 1 < self.lines.len()).then(|| self.lines[i + 1].mask_span().0 - hi);
        (left, right)
    }

    /// Validates the pattern: all mask shapes inside the window and no two
    /// lines closer than `min_space` (mask rule).
    ///
    /// # Errors
    ///
    /// Returns [`OpcError::InvalidPattern`] naming the first violation.
    pub fn validate(&self, min_space: f64) -> Result<(), OpcError> {
        for (i, l) in self.lines.iter().enumerate() {
            let (lo, hi) = l.mask_span();
            if lo < self.x0 || hi > self.x0 + self.length {
                return Err(OpcError::InvalidPattern {
                    reason: format!("line {i} at {} escapes the window", l.center),
                });
            }
            if l.mask_width <= 0.0 {
                return Err(OpcError::InvalidPattern {
                    reason: format!("line {i} has non-positive mask width {}", l.mask_width),
                });
            }
            if i > 0 {
                let prev_hi = self.lines[i - 1].mask_span().1;
                if lo - prev_hi < min_space {
                    return Err(OpcError::InvalidPattern {
                        reason: format!(
                            "lines {} and {i} violate the {min_space} nm mask space rule",
                            i - 1
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_lines_sorted() {
        let mut p = CutlinePattern::new(-1000.0, 2000.0);
        p.push(OpcLine::gate(300.0, 90.0));
        p.push(OpcLine::gate(-300.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        let centers: Vec<f64> = p.lines().iter().map(|l| l.center).collect();
        assert_eq!(centers, vec![-300.0, 0.0, 300.0]);
    }

    #[test]
    fn neighbor_spaces_reflect_mask_edges() {
        let mut p = CutlinePattern::new(-1000.0, 2000.0);
        p.push(OpcLine::gate(-300.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        let (l, r) = p.neighbor_spaces(1);
        assert_eq!(l, Some(210.0)); // 300 - 45 - 45
        assert_eq!(r, None);
        let (l0, _) = p.neighbor_spaces(0);
        assert_eq!(l0, None);
    }

    #[test]
    fn validate_catches_window_escape_and_spacing() {
        let mut p = CutlinePattern::new(-100.0, 200.0);
        p.push(OpcLine::gate(80.0, 90.0)); // hi edge at 125 > 100
        assert!(p.validate(60.0).is_err());

        let mut p = CutlinePattern::new(-1000.0, 2000.0);
        p.push(OpcLine::gate(0.0, 90.0));
        p.push(OpcLine::gate(120.0, 90.0)); // space = 30 < 60
        assert!(p.validate(60.0).is_err());
        assert!(p.validate(20.0).is_ok());
    }

    #[test]
    fn kinds_control_correctability() {
        assert!(OpcLine::gate(0.0, 90.0).correctable());
        assert!(!OpcLine::dummy(0.0, 90.0).correctable());
        assert!(!OpcLine::assist(0.0, 40.0).correctable());
    }

    #[test]
    fn chrome_matches_mask_spans() {
        let mut p = CutlinePattern::new(-1000.0, 2000.0);
        p.push(OpcLine::gate(0.0, 90.0));
        assert_eq!(p.chrome(), vec![(-45.0, 45.0)]);
    }

    #[test]
    fn gate_indices_filter_kinds() {
        let mut p = CutlinePattern::new(-1000.0, 2000.0);
        p.push(OpcLine::dummy(-300.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        p.push(OpcLine::assist(200.0, 40.0));
        assert_eq!(p.gate_indices(), vec![1]);
    }
}
