use serde::{Deserialize, Serialize};

use svt_litho::{LithoError, LithoSimulator, MaskCutline};

use crate::{CutlinePattern, LineKind, OpcError};

/// Sign-off measurement of one gate of a corrected pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineAudit {
    /// Gate center in nanometres.
    pub center: f64,
    /// Target device CD.
    pub target_cd_nm: f64,
    /// Printed device CD as seen by the sign-off simulator, or `None` if
    /// the gate failed to print.
    pub printed_cd_nm: Option<f64>,
}

impl LineAudit {
    /// Signed CD error `printed − target` in nanometres, if printed.
    #[must_use]
    pub fn error_nm(&self) -> Option<f64> {
        self.printed_cd_nm.map(|cd| cd - self.target_cd_nm)
    }

    /// Signed CD error as a percentage of the target.
    #[must_use]
    pub fn error_pct(&self) -> Option<f64> {
        self.error_nm().map(|e| 100.0 * e / self.target_cd_nm)
    }
}

/// Aggregate CD-error statistics of an audit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpeStats {
    /// Gates measured (printing gates only).
    pub count: usize,
    /// Gates that failed to print.
    pub failures: usize,
    /// Mean signed error in nanometres.
    pub mean_nm: f64,
    /// Root-mean-square error in nanometres.
    pub rms_nm: f64,
    /// Worst absolute error in nanometres.
    pub max_abs_nm: f64,
}

impl EpeStats {
    /// Computes statistics from audits.
    #[must_use]
    pub fn from_audits(audits: &[LineAudit]) -> EpeStats {
        let errors: Vec<f64> = audits.iter().filter_map(LineAudit::error_nm).collect();
        let failures = audits.len() - errors.len();
        if errors.is_empty() {
            return EpeStats {
                count: 0,
                failures,
                mean_nm: 0.0,
                rms_nm: 0.0,
                max_abs_nm: 0.0,
            };
        }
        let n = errors.len() as f64;
        let mean = errors.iter().sum::<f64>() / n;
        let rms = (errors.iter().map(|e| e * e).sum::<f64>() / n).sqrt();
        let max_abs = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        EpeStats {
            count: errors.len(),
            failures,
            mean_nm: mean,
            rms_nm: rms,
            max_abs_nm: max_abs,
        }
    }
}

/// One bin of a CD-error histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Bin center (percent CD error).
    pub center_pct: f64,
    /// Number of devices in the bin.
    pub count: usize,
}

/// Measures every gate of a pattern with the sign-off simulator at the
/// given process condition.
///
/// # Errors
///
/// Returns [`OpcError::Litho`] on simulator failures other than
/// non-printing gates (those are recorded as `printed_cd_nm = None`).
pub fn audit_pattern(
    sim: &LithoSimulator,
    pattern: &CutlinePattern,
    defocus_nm: f64,
    dose: f64,
) -> Result<Vec<LineAudit>, OpcError> {
    let mask = MaskCutline::from_lines(
        pattern.x0(),
        pattern.length(),
        sim.config().grid_nm(),
        &pattern.chrome(),
    )?;
    let image = sim.aerial_image(&mask, defocus_nm);
    let mut audits = Vec::new();
    for line in pattern.lines() {
        if line.kind != LineKind::Gate {
            continue;
        }
        let printed = svt_litho::measure_cd_at(&image, line.center, sim.resist(), dose)
            .and_then(|p| sim.device_cd(p));
        let printed_cd_nm = match printed {
            Ok(cd) => Some(cd),
            Err(LithoError::FeatureNotPrinted { .. }) => None,
            Err(e) => return Err(e.into()),
        };
        audits.push(LineAudit {
            center: line.center,
            target_cd_nm: line.target_cd,
            printed_cd_nm,
        });
    }
    Ok(audits)
}

/// Bins percent CD errors into a histogram with bins of `bin_width_pct`
/// centered on multiples of the width (the form of paper Fig. 7).
///
/// # Panics
///
/// Panics if `bin_width_pct ≤ 0`.
#[must_use]
pub fn error_histogram(errors_pct: &[f64], bin_width_pct: f64) -> Vec<HistogramBin> {
    assert!(bin_width_pct > 0.0, "bin width must be positive");
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<i64, usize> = BTreeMap::new();
    for &e in errors_pct {
        let idx = (e / bin_width_pct).round() as i64;
        *bins.entry(idx).or_default() += 1;
    }
    bins.into_iter()
        .map(|(idx, count)| HistogramBin {
            center_pct: idx as f64 * bin_width_pct,
            count,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelOpc, OpcLine, OpcOptions};
    use svt_litho::Process;

    #[test]
    fn audit_reports_every_gate() {
        let sim = Process::nm90().simulator();
        let mut p = CutlinePattern::new(-2048.0, 4096.0);
        p.push(OpcLine::gate(-300.0, 90.0));
        p.push(OpcLine::gate(0.0, 90.0));
        p.push(OpcLine::dummy(500.0, 90.0));
        let audits = audit_pattern(&sim, &p, 0.0, 1.0).unwrap();
        assert_eq!(audits.len(), 2, "dummies are not audited");
        for a in &audits {
            assert!(a.printed_cd_nm.is_some());
            assert!(a.error_pct().unwrap().abs() < 40.0);
        }
    }

    #[test]
    fn corrected_pattern_audits_tighter_than_uncorrected() {
        let sim = Process::nm90().simulator();
        let mk = || {
            let mut p = CutlinePattern::new(-2048.0, 4096.0);
            for c in [-300.0, 0.0, 240.0, 800.0] {
                p.push(OpcLine::gate(c, 90.0));
            }
            p
        };
        let raw = mk();
        let mut corrected = mk();
        ModelOpc::new(sim.clone(), OpcOptions::default())
            .correct(&mut corrected)
            .unwrap();
        let raw_stats = EpeStats::from_audits(&audit_pattern(&sim, &raw, 0.0, 1.0).unwrap());
        let fixed_stats =
            EpeStats::from_audits(&audit_pattern(&sim, &corrected, 0.0, 1.0).unwrap());
        assert!(
            fixed_stats.rms_nm < raw_stats.rms_nm,
            "OPC must tighten the audit: {raw_stats:?} -> {fixed_stats:?}"
        );
    }

    #[test]
    fn stats_handle_failures_and_empty_sets() {
        let audits = vec![
            LineAudit {
                center: 0.0,
                target_cd_nm: 90.0,
                printed_cd_nm: Some(93.0),
            },
            LineAudit {
                center: 300.0,
                target_cd_nm: 90.0,
                printed_cd_nm: None,
            },
        ];
        let s = EpeStats::from_audits(&audits);
        assert_eq!(s.count, 1);
        assert_eq!(s.failures, 1);
        assert!((s.mean_nm - 3.0).abs() < 1e-12);
        assert!((s.max_abs_nm - 3.0).abs() < 1e-12);

        let empty = EpeStats::from_audits(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_nm, 0.0);
    }

    #[test]
    fn histogram_bins_are_centered() {
        let errors = [0.2, 1.8, 2.2, -3.9, -4.1];
        let bins = error_histogram(&errors, 2.0);
        let get = |c: f64| bins.iter().find(|b| b.center_pct == c).map(|b| b.count);
        assert_eq!(get(0.0), Some(1));
        assert_eq!(get(2.0), Some(2));
        assert_eq!(get(-4.0), Some(2));
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, errors.len());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn histogram_rejects_zero_width() {
        let _ = error_histogram(&[1.0], 0.0);
    }
}
