use std::error::Error;
use std::fmt;

use svt_litho::LithoError;

/// Errors produced by the OPC engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OpcError {
    /// The underlying lithography simulation failed.
    Litho(LithoError),
    /// A pattern was structurally invalid (overlapping lines, line outside
    /// the window, …).
    InvalidPattern {
        /// Human-readable reason.
        reason: String,
    },
    /// A gate failed to print even at the starting mask dimensions, so
    /// there is no CD to iterate on.
    UncorrectableLine {
        /// Center of the offending line in nanometres.
        center: f64,
    },
}

impl fmt::Display for OpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpcError::Litho(e) => write!(f, "lithography simulation failed: {e}"),
            OpcError::InvalidPattern { reason } => write!(f, "invalid OPC pattern: {reason}"),
            OpcError::UncorrectableLine { center } => {
                write!(
                    f,
                    "gate at x = {center} nm does not print and cannot be corrected"
                )
            }
        }
    }
}

impl Error for OpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OpcError::Litho(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LithoError> for OpcError {
    fn from(e: LithoError) -> OpcError {
        OpcError::Litho(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litho_errors_wrap_with_source() {
        let e = OpcError::from(LithoError::FeatureNotPrinted { at: 10.0 });
        assert!(e.to_string().contains("lithography"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<OpcError>();
    }
}
