//! `svt` — a systematic-variation aware timing methodology.
//!
//! A full-system reproduction of **Gupta & Heng, "Toward a
//! Systematic-Variation Aware Timing Methodology" (DAC 2004)**: a static
//! timing sign-off flow that exploits the *systematic* (through-pitch and
//! through-focus) components of across-chip linewidth variation instead of
//! worst-casing them, built on from-scratch EDA substrates:
//!
//! | Crate | Substrate |
//! |---|---|
//! | [`geom`] | nm-grid layout geometry |
//! | [`litho`] | Abbe partially coherent aerial-image simulation |
//! | [`opc`] | model-based / library-based OPC + SRAFs |
//! | [`stdcell`] | 10-cell 90 nm-class library, NLDM, 81-context expansion |
//! | [`netlist`] | `.bench` netlists, ISCAS85-profile generation, mapping |
//! | [`place`] | row placement, whitespace, neighbor-spacing extraction |
//! | [`sta`] | graph-based static timing analysis, full + incremental |
//! | [`core`] | the paper's methodology: classes, labels, corners, flows |
//! | [`exec`] | deterministic worker pool + sharded memo caches |
//! | [`obs`] | spans, counters, Chrome traces, sign-off audit trails |
//! | [`eco`] | incremental ECO re-sign-off with bit-exact delta audits |
//!
//! # Quickstart
//!
//! ```
//! use svt::litho::Process;
//! use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
//! use svt::place::{place, PlacementOptions};
//! use svt::stdcell::{expand_library, ExpandOptions, Library};
//! use svt::core::{SignoffFlow, SignoffOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = Library::svt90();
//! let sim = Process::nm90().simulator();
//! let expanded = expand_library(&library, &sim, &ExpandOptions::fast())?;
//!
//! let profile = BenchmarkProfile::iscas85("c432").expect("known benchmark");
//! let netlist = generate_benchmark(&profile);
//! let mapped = technology_map(&netlist, &library)?;
//! let placement = place(&mapped, &library, &PlacementOptions::default())?;
//!
//! let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
//! let result = flow.run(&mapped, &placement)?;
//! println!(
//!     "{}: BC/WC spread reduced by {:.1}%",
//!     result.testcase,
//!     result.uncertainty_reduction_pct()
//! );
//! assert!(result.uncertainty_reduction_pct() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use svt_core as core;
pub use svt_eco as eco;
pub use svt_exec as exec;
pub use svt_geom as geom;
pub use svt_litho as litho;
pub use svt_netlist as netlist;
pub use svt_obs as obs;
pub use svt_opc as opc;
pub use svt_place as place;
pub use svt_sta as sta;
pub use svt_stdcell as stdcell;
