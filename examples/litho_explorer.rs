//! Explore the lithography substrate: through-pitch CD curves (paper
//! Fig. 1) and Bossung through-focus families (paper Fig. 2) as text plots.
//!
//! ```text
//! cargo run --release --example litho_explorer
//! ```

use svt::litho::{bossung, pitch_sweep, Process};

fn bar(value: f64, lo: f64, hi: f64) -> String {
    let width = 48usize;
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    let n = (t * width as f64).round() as usize;
    format!("{}*", "-".repeat(n))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1 conditions: 130 nm drawn lines, annular 193 nm / NA 0.7.
    let p130 = Process::nm130();
    let sim = p130.simulator();
    let pitches: Vec<f64> = (0..14).map(|i| 300.0 + 100.0 * i as f64).collect();
    let curve = pitch_sweep(&sim, 130.0, &pitches, 0.0, 1.0)?;
    let (lo, hi) = curve
        .points()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), pt| {
            (lo.min(pt.cd_nm), hi.max(pt.cd_nm))
        });
    println!("printed CD vs pitch (drawn 130 nm, no OPC) — paper Fig. 1 conditions");
    for pt in curve.points() {
        println!(
            "  pitch {:>5.0} nm  CD {:>6.1} nm  {}",
            pt.pitch_nm,
            pt.cd_nm,
            bar(pt.cd_nm, lo, hi)
        );
    }
    println!(
        "  total through-pitch range: {:.1} nm ({:.1}% of drawn)\n",
        curve.cd_range(),
        100.0 * curve.cd_range() / 130.0
    );

    // Fig. 2 conditions: 90 nm lines, dense (150 nm space) vs isolated,
    // several exposure doses, focus ±300 nm.
    let p90 = Process::nm90();
    let sim = p90.simulator();
    let focus: Vec<f64> = (-4..=4).map(|i| i as f64 * 75.0).collect();
    let doses = [0.96, 1.0, 1.04];
    for (label, pitch) in [("dense 90/150", Some(240.0)), ("isolated 90", None)] {
        let family = bossung(&sim, 90.0, pitch, &focus, &doses)?;
        println!("Bossung family: {label} — paper Fig. 2 conditions");
        for c in &family.curves {
            let shape = if c.is_smiling() { "smile" } else { "frown" };
            let cds: Vec<String> = c
                .samples
                .iter()
                .map(|(_, cd)| format!("{cd:>5.1}"))
                .collect();
            println!(
                "  dose {:>4.2} [{shape}]  CD(nm): {}",
                c.dose,
                cds.join(" ")
            );
        }
        println!();
    }
    Ok(())
}
