//! Quickstart: the complete systematic-variation aware sign-off flow on one
//! benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use svt::core::{SignoffFlow, SignoffOptions};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt::place::{place, PlacementOptions};
use svt::stdcell::{expand_library, ExpandOptions, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The process and its calibrated lithography stack.
    let process = Process::nm90();
    let sim = process.simulator();
    println!(
        "process: λ={} nm NA={} gate={} nm contacted pitch={} nm",
        process.wavelength_nm(),
        process.na(),
        process.gate_length_nm(),
        process.contacted_pitch_nm()
    );

    // 2. The 10-cell library, expanded into 81 context versions per cell
    //    via library-based OPC and the through-pitch CD table.
    let library = Library::svt90();
    let expanded = expand_library(&library, &sim, &ExpandOptions::default())?;
    println!(
        "expanded library: {} variants, lvar_pitch = {:.2} nm",
        expanded.len(),
        expanded.pitch_table().lvar_pitch()
    );

    // 3. Synthesize (generate + map) and place a benchmark.
    let profile = BenchmarkProfile::iscas85("c432").expect("known ISCAS85 profile");
    let netlist = generate_benchmark(&profile);
    let mapped = technology_map(&netlist, &library)?;
    let placement = place(&mapped, &library, &PlacementOptions::default())?;
    println!(
        "{}: {} gates mapped to {} instances in {} rows (utilization {:.2})",
        netlist.name(),
        netlist.gates().len(),
        mapped.instances().len(),
        placement.rows().len(),
        placement.utilization(&library)
    );

    // 4. Traditional vs systematic-variation aware corner sign-off.
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let cmp = flow.run(&mapped, &placement)?;
    println!("\n              nominal     best-case   worst-case  spread");
    println!(
        "traditional   {:>8.4}    {:>8.4}    {:>8.4}    {:>6.4} ns",
        cmp.traditional.nom_ns,
        cmp.traditional.bc_ns,
        cmp.traditional.wc_ns,
        cmp.traditional.spread_ns()
    );
    println!(
        "aware         {:>8.4}    {:>8.4}    {:>8.4}    {:>6.4} ns",
        cmp.aware.nom_ns,
        cmp.aware.bc_ns,
        cmp.aware.wc_ns,
        cmp.aware.spread_ns()
    );
    println!(
        "\nBC→WC timing uncertainty reduced by {:.1}%",
        cmp.uncertainty_reduction_pct()
    );
    Ok(())
}
