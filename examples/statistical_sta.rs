//! Statistical timing (paper §6 future work): Monte-Carlo circuit-delay
//! distributions under the simplistic Gaussian gate-length model versus the
//! systematic-variation aware model, compared against the corner spreads.
//!
//! ```text
//! cargo run --release --example statistical_sta [benchmark] [samples]
//! ```

use svt::core::{GateLengthModel, MonteCarloOptions, MonteCarloSta, SignoffFlow, SignoffOptions};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt::place::{place, PlacementOptions};
use svt::stdcell::{expand_library, ExpandOptions, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c432".into());
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    let library = Library::svt90();
    let sim = Process::nm90().simulator();
    let expanded = expand_library(&library, &sim, &ExpandOptions::default())?;
    let profile = BenchmarkProfile::iscas85(&name).ok_or("unknown benchmark")?;
    let netlist = generate_benchmark(&profile);
    let mapped = technology_map(&netlist, &library)?;
    let placement = place(&mapped, &library, &PlacementOptions::default())?;

    // Corner reference.
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let corners = flow.run(&mapped, &placement)?;

    // Monte-Carlo under both models.
    let mc = MonteCarloSta::new(
        &library,
        &expanded,
        MonteCarloOptions {
            samples,
            ..MonteCarloOptions::default()
        },
    );
    println!("sampling {samples} dies of {name} under two gate-length models…");
    let gaussian = mc.sample(&mapped, &placement, GateLengthModel::SimplisticGaussian)?;
    let aware = mc.sample(&mapped, &placement, GateLengthModel::SystematicAware)?;

    println!(
        "\n{:<26} {:>9} {:>9} {:>9} {:>9}",
        "model", "mean", "sigma", "q0.1%", "q99.9%"
    );
    for d in [&gaussian, &aware] {
        println!(
            "{:<26} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            format!("{:?}", d.model),
            d.mean_ns(),
            d.std_ns(),
            d.quantile_ns(0.001),
            d.quantile_ns(0.999)
        );
    }
    println!(
        "\ncorner spreads: traditional {:.4} ns, aware {:.4} ns",
        corners.traditional.spread_ns(),
        corners.aware.spread_ns()
    );
    println!(
        "statistical spreads (0.1%→99.9%): Gaussian {:.4} ns, aware {:.4} ns",
        gaussian.spread_ns(),
        aware.spread_ns()
    );
    println!(
        "\nThe independent Gaussian averages out along paths (optimistic); the aware\n\
         model keeps die-shared focus/dose correlations yet stays far inside the\n\
         corner spread — corner analysis invents {:.0}% extra uncertainty.",
        100.0 * (1.0 - aware.spread_ns() / corners.traditional.spread_ns())
    );
    Ok(())
}
