//! A production-flavoured sign-off session: placement-extracted wire
//! parasitics, in-context corner analysis, a classic critical-path report,
//! and statistical timing yield at the chosen clock.
//!
//! ```text
//! cargo run --release --example signoff_report [benchmark] [clock_ns]
//! ```

use svt::core::{
    hpwl_wire_caps, GateLengthModel, MonteCarloOptions, MonteCarloSta, SignoffFlow, SignoffOptions,
    DEFAULT_CAP_PER_NM_PF,
};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, verilog, BenchmarkProfile};
use svt::place::{def, place, PlacementOptions};
use svt::sta::{analyze_with_wire_caps, format_path_report, CellBinding, TimingOptions};
use svt::stdcell::{expand_library, ExpandOptions, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c880".into());
    let clock_ns: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8.0);

    let library = Library::svt90();
    let sim = Process::nm90().simulator();
    let profile = BenchmarkProfile::iscas85(&name).ok_or("unknown benchmark")?;
    let netlist = generate_benchmark(&profile);
    let mapped = technology_map(&netlist, &library)?;
    let placement = place(&mapped, &library, &PlacementOptions::default())?;
    println!(
        "{name}: {} instances in {} rows; Verilog {} lines, DEF {} lines",
        mapped.instances().len(),
        placement.rows().len(),
        verilog::write(&mapped, &library).lines().count(),
        def::write(&placement, &mapped).lines().count(),
    );

    // Placement-extracted wire parasitics feed the timer.
    let wire_caps = hpwl_wire_caps(&mapped, &placement, &library, DEFAULT_CAP_PER_NM_PF)?;
    let total_wire: f64 = wire_caps.values().sum();
    println!(
        "extracted {} nets, total wire cap {:.3} pF",
        wire_caps.len(),
        total_wire
    );

    let binding = CellBinding::nominal(&mapped, &library)?;
    let opts = TimingOptions {
        clock_period_ns: Some(clock_ns),
        ..TimingOptions::default()
    };
    let report = analyze_with_wire_caps(&mapped, &binding, &opts, &wire_caps)?;
    println!("\n{}", format_path_report(&report, &mapped, &binding));

    // Corner sign-off and statistical yield.
    let expanded = expand_library(&library, &sim, &ExpandOptions::fast())?;
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let corners = flow.run(&mapped, &placement)?;
    println!(
        "corners: traditional WC {:.3} ns, aware WC {:.3} ns ({:.1}% less spread)",
        corners.traditional.wc_ns,
        corners.aware.wc_ns,
        corners.uncertainty_reduction_pct()
    );

    let mc = MonteCarloSta::new(
        &library,
        &expanded,
        MonteCarloOptions {
            samples: 120,
            ..MonteCarloOptions::default()
        },
    );
    let dist = mc.sample(&mapped, &placement, GateLengthModel::SystematicAware)?;
    println!(
        "statistical: mean {:.3} ns, σ {:.4} ns, yield at {clock_ns} ns clock: {:.1}%",
        dist.mean_ns(),
        dist.std_ns(),
        100.0 * dist.yield_at(clock_ns)
    );
    Ok(())
}
