//! Multi-benchmark corner sign-off: traditional vs systematic-variation
//! aware STA, including the paper's §5 simplified (context-free) variant.
//!
//! ```text
//! cargo run --release --example timing_signoff [benchmark ...]
//! ```

use svt::core::{SignoffFlow, SignoffOptions};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt::place::{place, PlacementOptions};
use svt::stdcell::{expand_library, ExpandOptions, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks: Vec<String> = if args.is_empty() {
        vec!["c432".into(), "c880".into(), "c1355".into()]
    } else {
        args
    };

    let library = Library::svt90();
    let sim = Process::nm90().simulator();
    let expanded = expand_library(&library, &sim, &ExpandOptions::default())?;

    let full = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let simplified = SignoffFlow::new(
        &library,
        &expanded,
        SignoffOptions {
            use_context_library: false,
            ..SignoffOptions::default()
        },
    );

    println!(
        "{:<8} {:>6}  {:>22}  {:>22}  {:>7}  {:>9}",
        "case", "gates", "traditional nom/bc/wc", "aware nom/bc/wc", "reduct.", "simplified"
    );
    for name in &benchmarks {
        let Some(profile) = BenchmarkProfile::iscas85(name) else {
            eprintln!("unknown benchmark `{name}` (know: c432..c7552)");
            continue;
        };
        let netlist = generate_benchmark(&profile);
        let mapped = technology_map(&netlist, &library)?;
        let placement = place(&mapped, &library, &PlacementOptions::default())?;
        let cmp = full.run(&mapped, &placement)?;
        let cmp_simple = simplified.run(&mapped, &placement)?;
        println!(
            "{:<8} {:>6}  {:>6.3}/{:>6.3}/{:>6.3}  {:>6.3}/{:>6.3}/{:>6.3}  {:>6.1}%  {:>8.1}%",
            cmp.testcase,
            cmp.gates,
            cmp.traditional.nom_ns,
            cmp.traditional.bc_ns,
            cmp.traditional.wc_ns,
            cmp.aware.nom_ns,
            cmp.aware.bc_ns,
            cmp.aware.wc_ns,
            cmp.uncertainty_reduction_pct(),
            cmp_simple.uncertainty_reduction_pct(),
        );
    }
    Ok(())
}
