//! Library-based OPC of standard-cell masters in a dummy-poly environment
//! (paper Fig. 3) plus SRAF insertion for an isolated gate.
//!
//! ```text
//! cargo run --release --example opc_cell_correction
//! ```

use svt::litho::Process;
use svt::opc::{
    audit_pattern, insert_srafs, srafs_print, CutlinePattern, EpeStats, LibraryOpc, ModelOpc,
    OpcLine, OpcOptions, SrafOptions,
};
use svt::stdcell::{Library, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Process::nm90().simulator();
    let library = Library::svt90();

    // Library-based OPC: correct each master once in the emulated
    // placement environment of paper Fig. 3.
    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let lib_opc = LibraryOpc::new(opc, 150.0, 90.0);
    println!("library-based OPC (dummy environment, production model):");
    for name in ["INVX1", "NAND2X1", "NAND4X1", "AOI21X1"] {
        let cell = library.cell(name).expect("library cell");
        let layout = cell.layout();
        for region in [Region::P, Region::N] {
            let gates: Vec<(f64, f64)> = layout
                .row_spans(region)
                .iter()
                .map(|&(_, (lo, hi))| ((lo + hi) / 2.0, hi - lo))
                .collect();
            let corrected = lib_opc.correct_cell(&gates, 0.0, layout.width_nm())?;
            let cds: Vec<String> = corrected
                .printed_cd_nm
                .iter()
                .map(|cd| format!("{cd:.2}"))
                .collect();
            println!(
                "  {name:<8} {region:?} row: {} gates, printed CDs [{}] nm, {} sweeps",
                corrected.gates.len(),
                cds.join(", "),
                corrected.report.sweeps
            );
        }
    }

    // SRAF insertion for an isolated gate: the assists pull the isolated
    // feature toward dense-like focus behaviour without printing.
    println!("\nSRAF insertion for an isolated 90 nm gate:");
    let mut bare = CutlinePattern::new(-2048.0, 4096.0);
    bare.push(OpcLine::gate(0.0, 90.0));
    let mut assisted = bare.clone();
    let added = insert_srafs(&mut assisted, SrafOptions::default());
    println!("  inserted {added} assist bars");
    for z in [0.0, 150.0, 300.0] {
        let cd = |p: &CutlinePattern| {
            sim.print_device_cd(p.x0(), p.length(), &p.chrome(), 0.0, z, 1.0)
                .map(|cd| format!("{cd:.1}"))
                .unwrap_or_else(|_| "washed".into())
        };
        println!(
            "  defocus {z:>3} nm: bare CD {} nm, assisted CD {} nm, srafs print: {}",
            cd(&bare),
            cd(&assisted),
            srafs_print(&sim, &assisted, z, 1.0)?
        );
    }

    // Post-OPC audit of a mixed-context pattern.
    println!("\nsign-off audit of a corrected mixed-pitch pattern:");
    let mut pattern = CutlinePattern::new(-2048.0, 4096.0);
    for c in [-450.0, -150.0, 90.0, 800.0] {
        pattern.push(OpcLine::gate(c, 90.0));
    }
    let engine = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let report = engine.correct(&mut pattern)?;
    let audits = audit_pattern(&sim, &pattern, 0.0, 1.0)?;
    let stats = EpeStats::from_audits(&audits);
    println!(
        "  {} gates corrected in {} sweeps; residual: mean {:+.2} nm, rms {:.2} nm, max |{:.2}| nm",
        stats.count, report.sweeps, stats.mean_nm, stats.rms_nm, stats.max_abs_nm
    );
    Ok(())
}
